"""Integration tests for the scheduling daemon.

An in-process daemon (dedicated thread + event loop, ephemeral port) is
exercised through the blocking ``repro.server.client`` — the same
protocol round-trip an external scheduler client would make: submit,
poll, backpressure, drain, and snapshot refresh.
"""

import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.schedulers import CbesScheduler
from repro.server import BackpressureError, DaemonThread, JobFailed, JobState, ServerError
from repro.workloads import SyntheticBenchmark


def make_service() -> tuple[CBES, str]:
    """A calibrated 6-node service with one profiled application."""
    service = CBES(single_switch("mini", 6))
    service.calibrate(seed=2)
    app = SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)
    service.profile_application(app, 3, seed=1)
    return service, app.name


@pytest.fixture(scope="module")
def service_and_app():
    return make_service()


@pytest.fixture(scope="module")
def server(service_and_app):
    service, _ = service_and_app
    with DaemonThread(service, workers=2, queue_limit=8) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return server.client()


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_limit"] == 8
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}
        assert health["monitoring"] is False

    def test_profiles(self, client, service_and_app):
        _, app_name = service_and_app
        assert client.profiles() == [app_name]

    def test_snapshot_matches_service(self, client, service_and_app):
        service, _ = service_and_app
        snapshot = client.snapshot()
        assert snapshot["fingerprint"] == service.snapshot().fingerprint()
        assert set(snapshot["nodes"]) == set(service.cluster.node_ids())

    def test_unknown_route_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/v2/nothing")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/healthz", {"x": 1})
        assert excinfo.value.status == 405


class TestValidation:
    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"kind": "juggle"}, "kind"),
            ({"kind": "schedule", "app": "ghost"}, "no stored profile"),
            ({"kind": "schedule", "app": "APP", "scheduler": "magic"}, "unknown scheduler"),
            ({"kind": "schedule", "app": "APP", "pool": []}, "non-empty"),
            ({"kind": "schedule", "app": "APP", "pool": ["mars-1"]}, "unknown node"),
            ({"kind": "schedule", "app": "APP", "pool": ["mini-n00"], "arch": "x"}, "not both"),
            ({"kind": "schedule", "app": "APP", "arch": "warp-drive"}, "architecture"),
            ({"kind": "schedule", "app": "APP", "seed": "seven"}, "seed"),
            ({"kind": "schedule", "app": "APP", "options": {"warp": True}}, "option"),
            ({"kind": "schedule", "app": "APP", "options": {"communication": 3}}, "boolean"),
            ({"kind": "predict", "app": "APP"}, "nodes"),
            ({"kind": "predict", "app": "APP", "nodes": ["mars-1"]}, "unknown node"),
            ({"kind": "compare", "app": "APP", "mappings": []}, "non-empty"),
            ({"kind": "schedule", "app": "APP", "frobnicate": 1}, "unknown payload field"),
        ],
    )
    def test_bad_submissions_rejected_400(self, client, service_and_app, payload, fragment):
        _, app_name = service_and_app
        if payload.get("app") == "APP":
            payload = {**payload, "app": app_name}
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/jobs", payload)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    def test_malformed_json_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request("POST", "/v1/jobs", b"{nope", {"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_app_name_resolves_case_insensitively(self, client, service_and_app):
        _, app_name = service_and_app
        job = client.submit("predict", app=app_name.upper(), nodes=["mini-n00", "mini-n01", "mini-n02"])
        done = client.wait(job["id"], timeout_s=30)
        assert done["result"]["execution_time"] > 0


class TestJobRoundTrip:
    def test_schedule_matches_direct_call(self, client, service_and_app):
        """Acceptance: remote CS job == CBES.schedule() with the same seed."""
        service, app_name = service_and_app
        pool = service.cluster.node_ids()
        direct = service.schedule(app_name, CbesScheduler(), pool, seed=5)
        remote = client.schedule(app_name, scheduler="cs", pool=pool, seed=5)
        assert remote["mapping"] == list(direct.mapping.as_tuple())
        assert remote["predicted_time"] == pytest.approx(direct.predicted_time, abs=1e-12)
        assert remote["scheduler"] == "CS"
        assert remote["evaluations"] > 0

    def test_predict_matches_direct_call(self, client, service_and_app):
        service, app_name = service_and_app
        nodes = service.cluster.node_ids()[:3]
        direct = service.evaluator(app_name).predict(TaskMapping(nodes))
        remote = client.predict(app_name, nodes)
        assert remote["execution_time"] == pytest.approx(direct.execution_time, abs=1e-12)
        assert remote["critical_rank"] == direct.critical_rank
        assert [p["node"] for p in remote["processes"]] == nodes

    def test_compare_ranks_fastest_first(self, client, service_and_app):
        service, app_name = service_and_app
        ids = service.cluster.node_ids()
        ranked = client.compare(app_name, [ids[:3], ids[3:6]])
        assert len(ranked) == 2
        assert ranked[0]["execution_time"] <= ranked[1]["execution_time"]

    def test_job_document_lifecycle_fields(self, client, service_and_app):
        service, app_name = service_and_app
        job = client.submit("predict", app=app_name, nodes=service.cluster.node_ids()[:3])
        assert job["state"] in ("queued", "running")
        assert job["request_id"]
        done = client.wait(job["id"], timeout_s=30)
        assert done["started_at"] >= done["created_at"]
        assert done["finished_at"] >= done["started_at"]
        assert done["id"] in {j["id"] for j in client.jobs()}

    def test_runtime_failure_becomes_failed_job(self, client, service_and_app):
        """A pool too small for the profile fails the job, not the daemon."""
        service, app_name = service_and_app
        job = client.submit("schedule", app=app_name, pool=service.cluster.node_ids()[:2])
        with pytest.raises(JobFailed, match="cannot host"):
            client.wait(job["id"], timeout_s=30)
        health = client.healthz()
        assert health["status"] == "ok"  # daemon survived

    def test_schedule_context_is_cached_and_reused(self, server, client, service_and_app):
        service, app_name = service_and_app
        client.schedule(app_name, scheduler="cs", seed=1)
        daemon = server.daemon
        with daemon._ctx_lock:
            contexts = dict(daemon._contexts)
        assert contexts, "schedule job should cache an EvaluationContext"
        fingerprint = service.snapshot().fingerprint()
        assert all(ctx.snapshot_fingerprint == fingerprint for ctx in contexts.values())


class TestBackpressure:
    def test_full_queue_gets_429_with_retry_after(self):
        service, app_name = make_service()
        release = threading.Event()
        running = threading.Event()

        def blocked_execute(job):
            running.set()
            if not release.wait(timeout=30):
                raise RuntimeError("test never released the worker")
            return {"ok": True}

        srv = DaemonThread(service, workers=1, queue_limit=1)
        srv.daemon._execute = blocked_execute
        try:
            with srv:
                client = srv.client()
                nodes = service.cluster.node_ids()[:3]
                first = client.submit("predict", app=app_name, nodes=nodes)
                assert running.wait(timeout=10), "worker never picked up the first job"
                second = client.submit("predict", app=app_name, nodes=nodes)  # fills the queue
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit("predict", app=app_name, nodes=nodes)
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after_s > 0
                # The rejected submission left nothing behind.
                assert {j["id"] for j in client.jobs()} == {first["id"], second["id"]}
                release.set()
                assert client.wait(first["id"], timeout_s=30)["result"] == {"ok": True}
                assert client.wait(second["id"], timeout_s=30)["result"] == {"ok": True}
        finally:
            release.set()


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_jobs(self):
        """request_shutdown (what SIGTERM triggers) finishes accepted work."""
        service, app_name = make_service()

        def slow_execute(job):
            time.sleep(0.2)
            return {"ok": True}

        srv = DaemonThread(service, workers=1, queue_limit=4)
        srv.daemon._execute = slow_execute
        with srv:
            client = srv.client()
            nodes = service.cluster.node_ids()[:3]
            first = client.submit("predict", app=app_name, nodes=nodes)
            second = client.submit("predict", app=app_name, nodes=nodes)
            srv.shutdown()  # request + drain + join, like SIGTERM
            store = srv.daemon.store
            assert store.get(first["id"]).state is JobState.DONE
            assert store.get(second["id"]).state is JobState.DONE
            with pytest.raises(OSError):
                client.healthz()  # listener is gone


class TestSnapshotRefresh:
    def test_refresh_sees_load_and_invalidates_contexts(self):
        service, app_name = make_service()
        service.start_monitoring(forecaster="last-value", sensor_noise=0.0, seed=0)
        loaded_node = service.cluster.node_ids()[0]
        try:
            with DaemonThread(service, workers=1, queue_limit=8, refresh_interval_s=0.05) as srv:
                client = srv.client()
                first = client.schedule(app_name, scheduler="cs", seed=3)
                service.cluster.node(loaded_node).set_background_load(1.5)
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    snapshot = client.snapshot()
                    if snapshot["nodes"][loaded_node]["background_load"] > 1.0:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("refresh loop never picked up the injected load")
                assert client.healthz()["snapshot_refreshes"] >= 1
                # Contexts built against the pre-load snapshot are gone.
                daemon = srv.daemon
                with daemon._ctx_lock:
                    stale = [
                        ctx
                        for ctx in daemon._contexts.values()
                        if ctx.snapshot_fingerprint == first["snapshot_fingerprint"]
                    ]
                assert not stale
                # New work is served against the fresher snapshot.
                second = client.schedule(app_name, scheduler="cs", seed=3)
                assert second["snapshot_fingerprint"] != first["snapshot_fingerprint"]
        finally:
            service.cluster.node(loaded_node).set_background_load(0.0)

    def test_monitor_restarted_after_refresh_failure(self):
        service, _ = make_service()
        monitor_kwargs = {"forecaster": "last-value", "sensor_noise": 0.0, "seed": 0}
        original = service.start_monitoring(**monitor_kwargs)
        srv = DaemonThread(
            service,
            workers=1,
            queue_limit=2,
            refresh_interval_s=0.05,
            monitor_kwargs=monitor_kwargs,
        )

        def broken_poll():
            raise RuntimeError("sensor exploded")

        srv.daemon._poll_snapshot = broken_poll
        with srv:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and service.monitor is original:
                time.sleep(0.05)
            assert service.is_monitoring
            assert service.monitor is not original, "monitor was not restarted"


class TestServeSubprocess:
    """The real thing: `repro serve` in a subprocess, killed with SIGTERM."""

    @pytest.fixture(scope="class")
    def db_dir(self, tmp_path_factory):
        from repro.cli import main

        db = str(tmp_path_factory.mktemp("cbes-serve-db"))
        assert main(["--db", db, "calibrate"]) == 0
        assert main(["--db", db, "profile", "lu.S", "--nprocs", "4"]) == 0
        return db

    def test_serve_submit_sigterm_roundtrip(self, db_dir):
        from repro.cli import main

        repo_root = Path(__file__).resolve().parent.parent
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "--db", db_dir,
                "serve", "--port", "0", "--workers", "1", "--log-level", "warning",
            ],
            cwd=repo_root,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on http://"), (banner, proc.stderr.read() if proc.poll() is not None else "")
            port = int(banner.rstrip().rsplit(":", 1)[1])
            rc = main(
                ["submit", "lu.S", "--port", str(port), "--scheduler", "cs", "--arch", "alpha-533"]
            )
            assert rc == 0
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
