"""Tests for per-architecture speed-ratio measurement."""

import pytest

from repro.cluster.node import ALPHA_533, INTEL_PII_400, SPARC_500
from repro.profiling.speeds import measure_speed_ratios

ARCHS = [ALPHA_533, INTEL_PII_400, SPARC_500]


class TestMeasureSpeedRatios:
    def test_noise_free_equals_truth(self):
        ratios = measure_speed_ratios(ARCHS, noise=0.0)
        assert ratios == {a.name: a.base_speed for a in ARCHS}

    def test_affinity_applied(self):
        ratios = measure_speed_ratios(
            ARCHS, affinity=lambda name: 2.0 if name == "alpha-533" else 1.0, noise=0.0
        )
        assert ratios["alpha-533"] == pytest.approx(2 * ALPHA_533.base_speed)
        assert ratios["pii-400"] == pytest.approx(INTEL_PII_400.base_speed)

    def test_noisy_measurement_close(self):
        ratios = measure_speed_ratios(ARCHS, noise=0.005, seed=1, repetitions=5)
        for arch in ARCHS:
            assert ratios[arch.name] == pytest.approx(arch.base_speed, rel=0.03)

    def test_deterministic_per_seed_and_app(self):
        a = measure_speed_ratios(ARCHS, seed=3, app_name="lu.A")
        b = measure_speed_ratios(ARCHS, seed=3, app_name="lu.A")
        c = measure_speed_ratios(ARCHS, seed=3, app_name="mg.A")
        assert a == b
        assert a != c  # different app -> different measurement noise

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_speed_ratios(ARCHS, noise=-1.0)
        with pytest.raises(ValueError):
            measure_speed_ratios(ARCHS, repetitions=0)
        with pytest.raises(ValueError):
            measure_speed_ratios(ARCHS, affinity=lambda name: 0.0)
