"""Fleet tests: rendezvous hashing, the router, and failure handling.

The router fronts two in-process :class:`DaemonThread` replicas built
from identically-seeded services, so a job scheduled through the fleet
must produce byte-identical results to direct submission — the
correctness bar for transparent scale-out.
"""

import json
import urllib.request

import pytest

from repro.cluster import single_switch
from repro.core import CBES
from repro.fleet import RouterThread, pick_backend, rendezvous_rank
from repro.server import DaemonThread
from repro.server.client import ServerError
from repro.workloads import SyntheticBenchmark


def make_service() -> tuple[CBES, str]:
    service = CBES(single_switch("mini", 6))
    service.calibrate(seed=2)
    app = SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)
    service.profile_application(app, 3, seed=1)
    return service, app.name


NODES = ["mini-n00", "mini-n01", "mini-n02"]


class TestRendezvousHashing:
    BACKENDS = ["10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"]

    def test_stable_under_permutation(self):
        keys = [f"job-{i}" for i in range(200)]
        reversed_backends = list(reversed(self.BACKENDS))
        shuffled = [self.BACKENDS[2], self.BACKENDS[0], self.BACKENDS[3], self.BACKENDS[1]]
        for key in keys:
            rank = rendezvous_rank(key, self.BACKENDS)
            assert rendezvous_rank(key, reversed_backends) == rank
            assert rendezvous_rank(key, shuffled) == rank

    def test_rank_is_a_total_order_over_the_set(self):
        rank = rendezvous_rank("some-key", self.BACKENDS)
        assert sorted(rank) == sorted(self.BACKENDS)

    def test_minimal_disruption_on_replica_loss(self):
        """Removing one backend only re-routes the keys it owned."""
        keys = [f"job-{i}" for i in range(300)]
        before = {k: pick_backend(k, self.BACKENDS) for k in keys}
        lost = self.BACKENDS[1]
        survivors = [b for b in self.BACKENDS if b != lost]
        for key in keys:
            after = pick_backend(key, survivors)
            if before[key] != lost:
                assert after == before[key], f"{key} moved needlessly"
            else:
                assert after == rendezvous_rank(key, self.BACKENDS)[1]

    def test_keys_spread_over_backends(self):
        owners = {pick_backend(f"job-{i}", self.BACKENDS) for i in range(200)}
        assert owners == set(self.BACKENDS)

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_rank("key", [])


@pytest.fixture(scope="module")
def fleet():
    """Two identically-built replicas behind a router."""
    s1, app = make_service()
    s2, _ = make_service()
    with DaemonThread(s1, workers=1, queue_limit=32, replica_id="r0") as d1:
        with DaemonThread(s2, workers=1, queue_limit=32, replica_id="r1") as d2:
            backends = [f"{d1.host}:{d1.port}", f"{d2.host}:{d2.port}"]
            with RouterThread(backends) as router:
                yield router, (d1, d2), app


class TestFleetRouter:
    def test_healthz_aggregates_replicas(self, fleet):
        router, _, _ = fleet
        health = router.client().healthz()
        assert health["status"] == "ok"
        assert health["role"] == "fleet-router"
        assert health["replicas_total"] == 2
        assert health["replicas_healthy"] == 2
        assert {r["replica"] for r in health["replicas"]} == {"r0", "r1"}
        assert health["workers"] == 2  # 1 per replica, summed
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}

    def test_schedule_through_fleet_equals_direct(self, fleet):
        router, (d1, _), app = fleet
        via_fleet = router.client()
        job_id = via_fleet.submit("schedule", app=app, scheduler="cs")["id"]
        fleet_result = via_fleet.wait(job_id, timeout_s=120)["result"]
        direct = d1.client()
        direct_result = direct.wait(
            direct.submit("schedule", app=app, scheduler="cs")["id"], timeout_s=120
        )["result"]
        assert fleet_result["mapping"] == direct_result["mapping"]
        assert fleet_result["predicted_time"] == direct_result["predicted_time"]

    def test_batch_merges_in_submission_order(self, fleet):
        router, _, app = fleet
        client = router.client()
        entries = [{"kind": "predict", "app": app, "nodes": NODES} for _ in range(8)]
        jobs = client.submit_batch(entries)
        assert len(jobs) == 8
        ids = [j["id"] for j in jobs]
        assert len(set(ids)) == 8, "router must mint unique ids"
        results = [client.wait(i, timeout_s=120) for i in ids]
        assert all(r["state"] == "done" for r in results)
        # Identical submissions on identically-built replicas: every
        # result agrees no matter which replica served it.
        times = {r["result"]["execution_time"] for r in results}
        assert len(times) == 1

    def test_lookup_routes_by_id(self, fleet):
        router, (d1, d2), app = fleet
        client = router.client()
        job_id = client.submit("predict", app=app, nodes=NODES)["id"]
        client.wait(job_id, timeout_s=120)
        # The job lives on exactly one replica (shared-nothing) and the
        # router finds it there.
        owners = 0
        for replica in (d1, d2):
            try:
                replica.client().job(job_id)
                owners += 1
            except ServerError as err:
                assert err.status == 404
        assert owners == 1
        assert client.job(job_id)["state"] == "done"

    def test_unknown_job_is_404_fleet_wide(self, fleet):
        router, _, _ = fleet
        with pytest.raises(ServerError) as err:
            router.client().job("no-such-job")
        assert err.value.status == 404

    def test_duplicate_id_rejected_fleet_wide(self, fleet):
        router, _, app = fleet
        client = router.client()
        client.submit("predict", id="dup-1", app=app, nodes=NODES)
        with pytest.raises(ServerError) as err:
            client.submit("predict", id="dup-1", app=app, nodes=NODES)
        assert err.value.status == 409

    def test_listing_merges_and_pages(self, fleet):
        router, _, app = fleet
        client = router.client()
        ids = [client.submit("predict", app=app, nodes=NODES)["id"] for _ in range(4)]
        for job_id in ids:
            client.wait(job_id, timeout_s=120)
        done = client.jobs(state="done")
        listed = {j["id"] for j in done}
        assert set(ids) <= listed
        page = client.jobs(limit=3)
        assert len(page) == 3
        after = client.jobs(after=page[0]["id"])
        assert page[0]["id"] not in {j["id"] for j in after}
        with pytest.raises(ServerError) as err:
            client.jobs(after="nonexistent")
        assert err.value.status == 400

    def test_metrics_merge_replica_counters(self, fleet):
        router, _, _ = fleet
        client = router.client()
        text = client.metrics_text()
        assert "cbes_fleet_requests_total" in text
        assert "cbes_fleet_replicas 2" in text
        assert "cbes_fleet_replicas_healthy 2" in text
        for line in text.splitlines():
            if line.startswith("cbes_connections_total"):
                # Both replicas' accepted connections, summed.
                assert float(line.split()[-1]) >= 2
                break
        else:
            pytest.fail("cbes_connections_total missing from merged scrape")
        doc = client._request("GET", "/v1/metrics?format=json")
        assert "cbes_fleet_requests_total" in doc["metrics"]

    def test_reads_forwarded(self, fleet):
        router, _, app = fleet
        client = router.client()
        assert app in client.profiles()
        assert "snapshot" in client._request("GET", "/v1/snapshot")

    def test_remap_endpoints_not_proxied(self, fleet):
        router, _, _ = fleet
        with pytest.raises(ServerError) as err:
            router.client()._request("GET", "/v1/remap/watches")
        assert err.value.status == 501

    def test_schedule_best_races_replicas(self, fleet):
        router, _, app = fleet
        url = f"http://{router.host}:{router.port}/v1/schedule:best"
        body = json.dumps({"kind": "schedule", "app": app, "scheduler": "cs"}).encode()
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}, method="POST"
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            doc = json.loads(response.read())
        assert doc["replicas_raced"] == 2
        assert doc["best"]["predicted_time"] == min(
            r["predicted_time"] for r in doc["results"]
        )

    def test_router_restart_keeps_finding_jobs(self, fleet):
        """Routing is a pure function: a fresh router resolves old ids."""
        router, (d1, d2), app = fleet
        client = router.client()
        job_id = client.submit("predict", app=app, nodes=NODES)["id"]
        client.wait(job_id, timeout_s=120)
        backends = [f"{d1.host}:{d1.port}", f"{d2.host}:{d2.port}"]
        with RouterThread(backends) as second_router:
            assert second_router.client().job(job_id)["state"] == "done"


class TestFleetDegradation:
    def test_replica_loss_degrades_but_keeps_serving(self):
        s1, app = make_service()
        s2, _ = make_service()
        d1 = DaemonThread(s1, workers=1, queue_limit=32, replica_id="r0")
        d2 = DaemonThread(s2, workers=1, queue_limit=32, replica_id="r1")
        d1.__enter__()
        d2.__enter__()
        try:
            backends = [f"{d1.host}:{d1.port}", f"{d2.host}:{d2.port}"]
            with RouterThread(backends, unhealthy_after=1, probe_interval_s=0.1) as router:
                client = router.client()
                ids = [client.submit("predict", app=app, nodes=NODES)["id"] for _ in range(4)]
                for job_id in ids:
                    client.wait(job_id, timeout_s=120)
                d2.shutdown()
                health = client.healthz()
                assert health["status"] == "degraded"
                assert health["replicas_healthy"] == 1
                # New submissions route to the survivor.
                job_id = client.submit("predict", app=app, nodes=NODES)["id"]
                assert client.wait(job_id, timeout_s=120)["state"] == "done"
                # Listing serves what the survivors hold.
                assert client.jobs(state="done")
                assert "cbes_fleet_backend_unhealthy_total" in client.metrics_text()
        finally:
            d1.shutdown()
            if d2._thread.is_alive():
                d2.shutdown()

    def test_all_replicas_down_is_503(self):
        s1, app = make_service()
        d1 = DaemonThread(s1, workers=1, replica_id="r0")
        d1.__enter__()
        backends = [f"{d1.host}:{d1.port}"]
        try:
            with RouterThread(backends, unhealthy_after=1, probe_interval_s=0.1) as router:
                client = router.client()
                d1.shutdown()
                with pytest.raises(ServerError) as err:
                    client.submit("predict", app=app, nodes=NODES)
                assert err.value.status == 503
                assert client.healthz()["status"] == "degraded"
        finally:
            if d1._thread.is_alive():
                d1.shutdown()
