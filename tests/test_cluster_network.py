"""Tests for repro.cluster.network."""

import pytest

from repro.cluster.network import LinkSpec, NetworkFabric, SwitchSpec


def star(n=3):
    fabric = NetworkFabric()
    fabric.add_switch(SwitchSpec("sw", nports=n + 2))
    for i in range(n):
        fabric.add_host(f"h{i}")
        fabric.connect(f"h{i}", "sw")
    return fabric


class TestSpecs:
    def test_switch_validation(self):
        with pytest.raises(ValueError):
            SwitchSpec("", 8)
        with pytest.raises(ValueError):
            SwitchSpec("sw", 0)
        with pytest.raises(ValueError):
            SwitchSpec("sw", 8, forward_latency_s=0.0)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1.0)


class TestConstruction:
    def test_duplicate_switch_rejected(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("sw", 8))
        with pytest.raises(ValueError):
            fabric.add_switch(SwitchSpec("sw", 8))

    def test_duplicate_host_rejected(self):
        fabric = NetworkFabric()
        fabric.add_host("h")
        with pytest.raises(ValueError):
            fabric.add_host("h")

    def test_host_switch_namespace_shared(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("x", 8))
        with pytest.raises(ValueError):
            fabric.add_host("x")

    def test_connect_unknown_element(self):
        fabric = NetworkFabric()
        fabric.add_host("h")
        with pytest.raises(KeyError):
            fabric.connect("h", "nope")

    def test_self_connect_rejected(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("sw", 8))
        with pytest.raises(ValueError):
            fabric.connect("sw", "sw")

    def test_port_exhaustion(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("sw", nports=2))
        for i in range(2):
            fabric.add_host(f"h{i}")
            fabric.connect(f"h{i}", "sw")
        fabric.add_host("h2")
        with pytest.raises(ValueError, match="free ports"):
            fabric.connect("h2", "sw")


class TestValidate:
    def test_star_is_valid(self):
        star().validate()

    def test_empty_fabric_invalid(self):
        with pytest.raises(ValueError, match="no hosts"):
            NetworkFabric().validate()

    def test_disconnected_invalid(self):
        fabric = star(2)
        fabric.add_switch(SwitchSpec("island", 4))
        with pytest.raises(ValueError, match="not connected"):
            fabric.validate()

    def test_host_with_two_uplinks_invalid(self):
        fabric = star(2)
        fabric.add_switch(SwitchSpec("sw2", 4))
        fabric.connect("sw2", "sw")
        fabric.connect("h0", "sw2")
        with pytest.raises(ValueError, match="exactly one uplink"):
            fabric.validate()

    def test_host_to_host_wiring_invalid(self):
        fabric = NetworkFabric()
        fabric.add_host("a")
        fabric.add_host("b")
        fabric.connect("a", "b")
        with pytest.raises(ValueError, match="switch"):
            fabric.validate()


class TestPaths:
    def test_same_switch_path(self):
        fabric = star()
        assert fabric.path("h0", "h1") == ("h0", "sw", "h1")
        assert fabric.hop_count("h0", "h1") == 2

    def test_two_level_path(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("s0", 8))
        fabric.add_switch(SwitchSpec("s1", 8))
        fabric.connect("s0", "s1", LinkSpec(bandwidth_bps=50e6))
        for i, sw in enumerate(["s0", "s1"]):
            fabric.add_host(f"h{i}")
            fabric.connect(f"h{i}", sw)
        assert fabric.path("h0", "h1") == ("h0", "s0", "s1", "h1")
        assert fabric.bottleneck_bandwidth("h0", "h1") == 50e6
        assert len(fabric.path_switches("h0", "h1")) == 2

    def test_path_requires_hosts(self):
        fabric = star()
        with pytest.raises(KeyError):
            fabric.path("sw", "h0")

    def test_bottleneck_same_host_rejected(self):
        fabric = star()
        with pytest.raises(ValueError):
            fabric.bottleneck_bandwidth("h0", "h0")

    def test_switch_of(self):
        fabric = star()
        assert fabric.switch_of("h0") == "sw"
        with pytest.raises(KeyError):
            fabric.switch_of("sw")

    def test_ports_used(self):
        fabric = star(3)
        assert fabric.ports_used("sw") == 3
        assert fabric.ports_used("h0") == 1
