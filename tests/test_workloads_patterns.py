"""Tests for the communication pattern builders (collective decompositions)."""

import math

import pytest

from repro.simulate.program import Compute, Exchange, Recv, Send, SendRecv
from repro.workloads.patterns import ProgramBuilder, grid_dims


class TestGridDims:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1)), (4, (2, 2)), (8, (4, 2)), (12, (4, 3)), (16, (4, 4)), (7, (7, 1)), (121, (11, 11))],
    )
    def test_2d(self, n, expected):
        assert grid_dims(n, 2) == expected

    @pytest.mark.parametrize("n", [8, 27, 64, 30])
    def test_3d_product(self, n):
        dims = grid_dims(n, 3)
        assert math.prod(dims) == n
        assert list(dims) == sorted(dims, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_dims(0)
        with pytest.raises(ValueError):
            grid_dims(4, 0)


def count_messages(program):
    """Point-to-point message count from the op streams."""
    count = 0
    for stream in program.ops:
        for op in stream:
            if isinstance(op, (Send, SendRecv)):
                count += 1
            elif isinstance(op, Exchange):
                count += 1
    return count


def total_recv_bytes(program, rank):
    total = 0.0
    for op in program.ops[rank]:
        if isinstance(op, Recv):
            total += op.size_bytes
        elif isinstance(op, Exchange):
            total += op.recv_bytes
        elif isinstance(op, SendRecv):
            total += op.recv_bytes
    return total


class TestCollectives:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast_reaches_everyone(self, n, root):
        if root >= n:
            pytest.skip("root outside group")
        b = ProgramBuilder("p", n)
        b.bcast(range(n), root, 1000.0)
        prog = b.build()  # validate() checks send/recv balance
        # Every non-root rank receives the payload exactly once.
        for r in range(n):
            expected = 0.0 if r == root else 1000.0
            assert total_recv_bytes(prog, r) == expected
        # Binomial tree: exactly n-1 messages.
        assert count_messages(prog) == n - 1

    @pytest.mark.parametrize("n", [2, 4, 6, 9])
    def test_reduce_message_count(self, n):
        b = ProgramBuilder("p", n)
        b.reduce(range(n), 0, 500.0)
        assert count_messages(b.build()) == n - 1

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 12])
    def test_allreduce_everyone_participates(self, n):
        b = ProgramBuilder("p", n)
        b.allreduce(range(n), 100.0)
        prog = b.build()
        for r in range(n):
            assert total_recv_bytes(prog, r) > 0

    def test_allreduce_power_of_two_message_count(self):
        # Pure recursive doubling: n/2 * log2(n) pairwise exchanges.
        b = ProgramBuilder("p", 8)
        b.allreduce(range(8), 100.0)
        assert count_messages(b.build()) == 8 // 2 * 3 * 2  # Exchange per rank per stage

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_alltoall_counts(self, n):
        b = ProgramBuilder("p", n)
        b.alltoall(range(n), 10.0)
        prog = b.build()
        # Everyone sends to everyone else exactly once.
        assert count_messages(prog) == n * (n - 1)
        for r in range(n):
            assert total_recv_bytes(prog, r) == 10.0 * (n - 1)

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_gather_root_receives_everything(self, n):
        b = ProgramBuilder("p", n)
        b.gather(range(n), 0, 100.0)
        prog = b.build()
        assert total_recv_bytes(prog, 0) == 100.0 * (n - 1)

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_scatter_leaves_receive_share(self, n):
        b = ProgramBuilder("p", n)
        b.scatter(range(n), 0, 100.0)
        prog = b.build()
        for r in range(1, n):
            assert total_recv_bytes(prog, r) >= 100.0

    def test_collective_on_subgroup(self):
        b = ProgramBuilder("p", 6)
        b.bcast([1, 3, 5], 3, 100.0)
        prog = b.build()
        assert prog.ops[0] == [] and prog.ops[2] == [] and prog.ops[4] == []

    def test_root_not_in_group(self):
        b = ProgramBuilder("p", 4)
        with pytest.raises(ValueError):
            b.bcast([0, 1], 3, 10.0)

    def test_singleton_group_noop(self):
        b = ProgramBuilder("p", 2)
        b.bcast([0], 0, 10.0)
        b.allreduce([1], 10.0)
        b.alltoall([0], 10.0)
        assert b.build().total_messages == 0

    def test_barrier_is_tiny_allreduce(self):
        b = ProgramBuilder("p", 4)
        b.barrier(range(4))
        prog = b.build()
        assert count_messages(prog) > 0
        assert all(
            op.send_bytes == 4.0
            for stream in prog.ops
            for op in stream
            if isinstance(op, Exchange)
        )


class TestShifts:
    def test_ring_shift_everyone_sendrecvs(self):
        b = ProgramBuilder("p", 5)
        b.ring_shift(range(5), 64.0)
        prog = b.build()
        assert all(len(s) == 1 and isinstance(s[0], SendRecv) for s in prog.ops)

    def test_nonperiodic_shift_edges(self):
        b = ProgramBuilder("p", 4)
        b.shift(range(4), 64.0, step=1)
        prog = b.build()
        assert isinstance(prog.ops[0][0], Send)  # head only sends
        assert isinstance(prog.ops[3][0], Recv)  # tail only receives
        assert isinstance(prog.ops[1][0], SendRecv)

    def test_shift_negative_step(self):
        b = ProgramBuilder("p", 3)
        b.shift(range(3), 64.0, step=-1)
        prog = b.build()
        assert isinstance(prog.ops[0][0], Recv)
        assert isinstance(prog.ops[2][0], Send)

    def test_zero_size_noop(self):
        b = ProgramBuilder("p", 4)
        b.shift(range(4), 0.0)
        b.ring_shift(range(4), 0.0)
        assert b.build().total_messages == 0


class TestHaloGrid:
    def test_mismatched_dims_rejected(self):
        b = ProgramBuilder("p", 6)
        with pytest.raises(ValueError):
            b.halo_exchange_grid((2, 2), [10.0, 10.0])
        with pytest.raises(ValueError):
            b.halo_exchange_grid((3, 2), [10.0])

    def test_interior_rank_touches_all_neighbours(self):
        b = ProgramBuilder("p", 9)
        b.halo_exchange_grid((3, 3), [10.0, 20.0])
        prog = b.build()
        center = 4  # (1,1) in a 3x3 grid
        peers = set()
        for op in prog.ops[center]:
            if isinstance(op, SendRecv):
                peers.add(op.dst)
                peers.add(op.src)
        assert peers == {1, 3, 5, 7}

    def test_1d_grid_dimension_skipped(self):
        b = ProgramBuilder("p", 4)
        b.halo_exchange_grid((4, 1), [10.0, 99.0])
        prog = b.build()
        # Only the length-4 axis communicates.
        assert prog.total_messages == 2 * 3  # +shift and -shift, 3 pairs each


class TestBuilderBasics:
    def test_compute_all_callable(self):
        b = ProgramBuilder("p", 3)
        b.compute_all(lambda r: float(r))
        prog = b.build()
        assert prog.ops[0] == []  # zero work dropped
        assert prog.ops[2][0] == Compute(2.0)

    def test_rank_bounds(self):
        b = ProgramBuilder("p", 2)
        with pytest.raises(ValueError):
            b.compute(5, 1.0)

    def test_marker_all(self):
        b = ProgramBuilder("p", 2)
        b.marker_all("phase")
        prog = b.build()
        assert all(len(s) == 1 for s in prog.ops)
