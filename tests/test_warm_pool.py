"""Tests for the persistent warm worker pool (repro.search.pool).

Four contracts:

* **Fingerprints** — ``SearchSpec.fingerprint()`` is stable for one
  spec, equal for equivalent specs, and changes whenever any search
  input (pool, options, snapshot) changes — including a monitoring
  snapshot refresh, which is what invalidates stale worker caches.
* **Worker-side LRU** — the fingerprint-keyed TaskRunner cache hits,
  misses, evicts at capacity, and answers ``missing_spec`` when a task
  arrives by key only; cache events surface as telemetry counters.
* **Pool lifecycle** — lazy spawn, reuse across runs, growth by
  replacement, explicit shutdown, and the module-level singleton.
* **Identity** — warm, cold, and serial schedules are byte-identical
  across parallel degrees and across repeated warm calls.
"""

import dataclasses
import sys
from pathlib import Path

import pytest

from repro.core import TaskMapping
from repro.schedulers import make_scheduler
from repro.search import SearchSpec, get_pool, shutdown_pool
from repro.search import pool as pool_mod
from repro.search.pool import PoolTask, WorkerPool
from repro.search.worker import ScanTask
from repro.telemetry import MetricsRegistry, use_registry


def result_key(result):
    return (result.mapping.as_tuple(), result.predicted_time, result.evaluations)


@pytest.fixture(scope="module")
def evaluator_and_pool():
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
    from bench_incremental_eval import build_workload

    return build_workload(12, 6)


@pytest.fixture()
def spec(evaluator_and_pool):
    evaluator, pool = evaluator_and_pool
    return SearchSpec.from_evaluator(evaluator.with_snapshot(evaluator.snapshot), pool)


def scan_task(pool, *, index=0, width=6):
    return ScanTask(index=index, mappings=(TaskMapping(pool[:width]),))


def counter_samples(registry: MetricsRegistry, name: str) -> dict:
    family = registry.snapshot().get(name, {"samples": []})
    return {tuple(sorted(s["labels"].items())): s["value"] for s in family["samples"]}


class TestFingerprint:
    def test_stable_and_memoized(self, spec):
        assert spec.fingerprint() == spec.fingerprint()
        assert len(spec.fingerprint()) == 32  # blake2b-16 hex

    def test_equivalent_specs_share_a_fingerprint(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        a = SearchSpec.from_evaluator(evaluator.with_snapshot(evaluator.snapshot), pool)
        b = SearchSpec.from_evaluator(evaluator.with_snapshot(evaluator.snapshot), pool)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_pool_change_changes_fingerprint(self, evaluator_and_pool, spec):
        evaluator, pool = evaluator_and_pool
        other = SearchSpec.from_evaluator(evaluator, pool[: len(pool) - 1])
        assert other.fingerprint() != spec.fingerprint()

    def test_snapshot_refresh_changes_fingerprint(self, evaluator_and_pool, spec):
        """A monitoring refresh must invalidate cached worker contexts."""
        evaluator, pool = evaluator_and_pool
        snapshot = evaluator.snapshot
        nid = next(iter(snapshot.states))
        refreshed = dataclasses.replace(
            snapshot,
            timestamp=snapshot.timestamp + 5.0,
            states={
                **dict(snapshot.states),
                nid: dataclasses.replace(snapshot.states[nid], background_load=0.75),
            },
        )
        stale = SearchSpec.from_evaluator(evaluator.with_snapshot(refreshed), pool)
        assert stale.fingerprint() != spec.fingerprint()

    def test_fingerprint_survives_pickling(self, spec):
        import pickle

        clone = pickle.loads(pickle.dumps(spec))
        assert clone.fingerprint() == spec.fingerprint()


class TestWorkerCacheLru:
    """Drive the worker-side cache in-process (no executor needed)."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_CACHE", "2")
        pool_mod._initialize_pool_worker()
        yield
        pool_mod._initialize_pool_worker()

    def envelope(self, spec, pool, *, with_spec=True, width=6):
        return PoolTask(
            key=spec.fingerprint(),
            kind="scan",
            task=scan_task(pool, width=width),
            spec=spec if with_spec else None,
        )

    def test_miss_then_hit(self, evaluator_and_pool, spec):
        _, pool = evaluator_and_pool
        first = pool_mod._run_pool_task(self.envelope(spec, pool))
        assert (first.misses, first.hits) == (1, 0)
        assert first.outcome is not None
        second = pool_mod._run_pool_task(self.envelope(spec, pool, with_spec=False))
        assert (second.misses, second.hits) == (0, 1)
        assert second.outcome.energies == first.outcome.energies

    def test_key_only_without_cached_runner_asks_for_spec(self, evaluator_and_pool, spec):
        _, pool = evaluator_and_pool
        reply = pool_mod._run_pool_task(self.envelope(spec, pool, with_spec=False))
        assert reply.missing_spec
        assert reply.outcome is None

    def test_eviction_at_capacity(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        specs = [
            SearchSpec.from_evaluator(evaluator, pool[: len(pool) - i]) for i in range(3)
        ]
        assert len({s.fingerprint() for s in specs}) == 3
        replies = [pool_mod._run_pool_task(self.envelope(s, pool)) for s in specs]
        assert [r.misses for r in replies] == [1, 1, 1]
        # Capacity 2: inserting the third evicted the least-recent (first).
        assert [r.evictions for r in replies] == [0, 0, 1]
        evicted = pool_mod._run_pool_task(self.envelope(specs[0], pool, with_spec=False))
        assert evicted.missing_spec
        kept = pool_mod._run_pool_task(self.envelope(specs[2], pool, with_spec=False))
        assert kept.hits == 1


class TestPoolLifecycle:
    def test_lazy_spawn_and_reuse(self, evaluator_and_pool, spec):
        _, pool = evaluator_and_pool
        wp = WorkerPool(idle_timeout_s=None)
        try:
            assert wp.workers == 0 and wp.spawns == 0
            first = wp.run(spec, "scan", [scan_task(pool)], workers=1)
            second = wp.run(spec, "scan", [scan_task(pool)], workers=1)
            assert wp.spawns == 1  # same executor served both runs
            assert wp.workers == 1
            assert first[0].energies == second[0].energies
        finally:
            wp.shutdown()

    def test_grows_by_replacement(self, evaluator_and_pool, spec):
        _, pool = evaluator_and_pool
        wp = WorkerPool(idle_timeout_s=None)
        try:
            wp.run(spec, "scan", [scan_task(pool)], workers=1)
            tasks = [scan_task(pool, index=i) for i in range(4)]
            outcomes = wp.run(spec, "scan", tasks, workers=2)
            assert wp.spawns == 2 and wp.workers == 2
            assert [o.index for o in outcomes] == [0, 1, 2, 3]
        finally:
            wp.shutdown()

    def test_shutdown_goes_cold_then_respawns(self, evaluator_and_pool, spec):
        _, pool = evaluator_and_pool
        wp = WorkerPool(idle_timeout_s=None)
        try:
            wp.run(spec, "scan", [scan_task(pool)], workers=1)
            wp.shutdown()
            assert wp.workers == 0
            outcomes = wp.run(spec, "scan", [scan_task(pool)], workers=1)
            assert outcomes[0].energies
            assert wp.spawns == 2
        finally:
            wp.shutdown()

    def test_singleton_identity_and_teardown(self):
        shutdown_pool()
        a = get_pool()
        b = get_pool()
        assert a is b
        shutdown_pool()
        c = get_pool()
        assert c is not a
        shutdown_pool()

    def test_cache_event_counters(self, evaluator_and_pool, spec):
        _, pool = evaluator_and_pool
        registry = MetricsRegistry()
        wp = WorkerPool(idle_timeout_s=None)
        try:
            with use_registry(registry):
                wp.run(spec, "scan", [scan_task(pool)], workers=1)
                wp.run(spec, "scan", [scan_task(pool)], workers=1)
            events = counter_samples(registry, "cbes_worker_cache_events_total")
            assert events[(("event", "miss"),)] == 1
            assert events[(("event", "hit"),)] == 1
            spawns = counter_samples(registry, "cbes_pool_spawns_total")
            assert spawns[()] == 1
        finally:
            wp.shutdown()

    def test_stale_fingerprint_misses_after_snapshot_refresh(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        snapshot = evaluator.snapshot
        spec_a = SearchSpec.from_evaluator(evaluator.with_snapshot(snapshot), pool)
        refreshed = dataclasses.replace(snapshot, timestamp=snapshot.timestamp + 9.0)
        spec_b = SearchSpec.from_evaluator(evaluator.with_snapshot(refreshed), pool)
        assert spec_a.fingerprint() != spec_b.fingerprint()
        registry = MetricsRegistry()
        wp = WorkerPool(idle_timeout_s=None)
        try:
            with use_registry(registry):
                wp.run(spec_a, "scan", [scan_task(pool)], workers=1)
                wp.run(spec_b, "scan", [scan_task(pool)], workers=1)
            events = counter_samples(registry, "cbes_worker_cache_events_total")
            # Two distinct fingerprints: the refresh cannot hit the stale
            # cached context.
            assert events[(("event", "miss"),)] == 2
            assert (("event", "hit"),) not in events
        finally:
            wp.shutdown()


class TestWarmColdIdentity:
    @pytest.fixture(autouse=True)
    def clean_singleton(self):
        shutdown_pool()
        yield
        shutdown_pool()

    def run(self, evaluator_and_pool, *, parallel, reuse_pool):
        evaluator, pool = evaluator_and_pool
        scheduler = make_scheduler(
            "cs", restarts=3, parallel=parallel, reuse_pool=reuse_pool
        )
        ev = evaluator.with_snapshot(evaluator.snapshot)
        return result_key(scheduler.schedule(ev, pool, seed=29))

    def test_warm_equals_cold_equals_serial(self, evaluator_and_pool):
        serial = self.run(evaluator_and_pool, parallel=1, reuse_pool=False)
        cold = self.run(evaluator_and_pool, parallel=2, reuse_pool=False)
        warm_first = self.run(evaluator_and_pool, parallel=2, reuse_pool=True)
        warm_second = self.run(evaluator_and_pool, parallel=2, reuse_pool=True)
        assert serial == cold == warm_first == warm_second

    def test_identical_across_parallel_degrees_on_one_pool(self, evaluator_and_pool):
        degrees = {
            parallel: self.run(evaluator_and_pool, parallel=parallel, reuse_pool=True)
            for parallel in (1, 2, 4)
        }
        assert degrees[1] == degrees[2] == degrees[4]

    def test_env_kill_switch_disables_pool(self, evaluator_and_pool, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_POOL", "0")
        baseline = get_pool().spawns
        result = self.run(evaluator_and_pool, parallel=2, reuse_pool=None)
        assert result is not None
        assert get_pool().spawns == baseline  # legacy per-call executor path
