"""Unit tests for the daemon's job store (lifecycle + TTL eviction)."""

import pytest

from repro.server.jobs import JobState, JobStateError, JobStore


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(clock):
    return JobStore(ttl_s=10.0, clock=clock)


class TestLifecycle:
    def test_create_assigns_unique_ids(self, store):
        a = store.create("schedule", {"app": "lu.A"})
        b = store.create("predict", {"app": "lu.A"})
        assert a.id != b.id
        assert a.state is JobState.QUEUED
        assert store.get(a.id) is a
        assert [j.id for j in store.list()] == [a.id, b.id]

    def test_happy_path_transitions(self, store, clock):
        job = store.create("schedule", {})
        clock.advance(1.0)
        store.mark_running(job.id)
        assert job.state is JobState.RUNNING
        assert job.started_at == 1.0
        clock.advance(2.0)
        store.mark_done(job.id, {"predicted_time": 4.2})
        assert job.state is JobState.DONE
        assert job.finished_at == 3.0
        assert job.result == {"predicted_time": 4.2}

    def test_failure_records_error(self, store):
        job = store.create("schedule", {})
        store.mark_running(job.id)
        store.mark_failed(job.id, "boom")
        assert job.state is JobState.FAILED
        assert job.error == "boom"
        assert "error" in job.to_dict()

    def test_queued_job_may_fail_directly(self, store):
        # A drain deadline can expire before a worker picks the job up.
        job = store.create("schedule", {})
        store.mark_failed(job.id, "daemon shut down")
        assert job.state is JobState.FAILED

    @pytest.mark.parametrize(
        "sequence",
        [
            ["done"],                      # queued -> done skips running
            ["running", "running"],        # double start
            ["running", "done", "done"],   # double finish
            ["running", "done", "failed"], # finish then fail
            ["running", "failed", "running"],
        ],
    )
    def test_illegal_transitions_raise(self, store, sequence):
        job = store.create("schedule", {})
        marks = {
            "running": store.mark_running,
            "done": lambda jid: store.mark_done(jid, {}),
            "failed": lambda jid: store.mark_failed(jid, "x"),
        }
        with pytest.raises(JobStateError):
            for step in sequence:
                marks[step](job.id)

    def test_unknown_job_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get("j999999")
        with pytest.raises(KeyError):
            store.mark_running("j999999")

    def test_discard_forgets_job(self, store):
        job = store.create("schedule", {})
        store.discard(job.id)
        with pytest.raises(KeyError):
            store.get(job.id)
        store.discard(job.id)  # idempotent

    def test_counts(self, store):
        a = store.create("schedule", {})
        store.create("schedule", {})
        store.mark_running(a.id)
        assert store.counts() == {"queued": 1, "running": 1, "done": 0, "failed": 0}


class TestTtlEviction:
    def test_finished_jobs_expire(self, store, clock):
        job = store.create("schedule", {})
        store.mark_running(job.id)
        store.mark_done(job.id, {})
        clock.advance(9.9)
        assert store.evict_expired() == 0
        assert len(store) == 1
        clock.advance(0.2)
        assert store.evict_expired() == 1
        with pytest.raises(KeyError):
            store.get(job.id)

    def test_pending_jobs_never_expire(self, store, clock):
        queued = store.create("schedule", {})
        running = store.create("schedule", {})
        store.mark_running(running.id)
        clock.advance(1e6)
        assert store.evict_expired() == 0
        assert store.get(queued.id) is queued
        assert store.get(running.id) is running

    def test_failed_jobs_expire_too(self, store, clock):
        job = store.create("schedule", {})
        store.mark_failed(job.id, "x")
        clock.advance(11.0)
        assert store.evict_expired() == 1

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            JobStore(ttl_s=0.0)

    def test_eviction_reports_each_job_through_on_evict(self, clock):
        """Satellite fix: evictions are observable, not silent."""
        seen: list[tuple[str, float]] = []
        store = JobStore(
            ttl_s=10.0, clock=clock, on_evict=lambda job, age: seen.append((job.id, age))
        )
        a = store.create("schedule", {})
        b = store.create("predict", {})
        store.mark_running(a.id)
        store.mark_done(a.id, {})
        store.mark_failed(b.id, "x")
        clock.advance(25.0)
        assert store.evict_expired() == 2
        assert {jid for jid, _ in seen} == {a.id, b.id}
        assert all(age == 25.0 for _, age in seen)

    def test_eviction_logs_job_id_and_age_at_debug(self, store, clock, caplog):
        job = store.create("schedule", {})
        store.mark_running(job.id)
        store.mark_done(job.id, {})
        clock.advance(12.5)
        with caplog.at_level("DEBUG", logger="repro.server.jobs"):
            assert store.evict_expired() == 1
        messages = [r.getMessage() for r in caplog.records]
        assert any(job.id in m and "12.5" in m for m in messages)
