"""Tests for the parallel portfolio search engine (repro.search).

The engine's contract has three legs, each covered here:

* **Picklability** — specs, snapshots, contexts and mappings survive the
  trip into worker processes (and drop process-local caches on the way).
* **Determinism** — ``parallel=1`` and ``parallel=N`` return identical
  mappings, predictions and evaluation counts for one master seed, for
  both the SA restart portfolio and the GA island model; restart seed
  substreams make each restart independent of the restart count.
* **Cancellation** — an expired ``time_budget`` returns the best-so-far
  instead of raising.

Daemon integration (workers / time_budget job fields) is covered at the
HTTP level.
"""

import pickle

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.schedulers import make_scheduler
from repro.schedulers.annealing import AnnealingSchedule
from repro.schedulers.genetic import GeneticParams
from repro.search import (
    LocalBound,
    ParallelPortfolio,
    SaTask,
    SearchSpec,
    TaskRunner,
    run_island_ga,
)
from repro.server import DaemonThread, ServerError
from repro.workloads import SyntheticBenchmark


def result_key(result):
    return (result.mapping.as_tuple(), result.predicted_time, result.evaluations)


@pytest.fixture(scope="module")
def evaluator_and_pool():
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
    from bench_incremental_eval import build_workload

    return build_workload(12, 6)


@pytest.fixture()
def fresh_evaluator(evaluator_and_pool):
    evaluator, pool = evaluator_and_pool
    # with_snapshot clones the evaluator (and resets nothing else), so
    # per-test evaluation counters don't leak between tests.
    return evaluator.with_snapshot(evaluator.snapshot), pool


class TestPicklability:
    def test_snapshot_round_trip(self, fresh_evaluator):
        evaluator, _ = fresh_evaluator
        snapshot = evaluator.snapshot
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.fingerprint() == snapshot.fingerprint()
        assert dict(clone.ncpus) == dict(snapshot.ncpus)

    def test_mapping_round_trip_recomputes_hash(self, fresh_evaluator):
        _, pool = fresh_evaluator
        mapping = TaskMapping(pool[:4])
        clone = pickle.loads(pickle.dumps(mapping))
        assert clone == mapping
        # The hash cache is salted per process; equality of hashes here
        # proves it was recomputed, not shipped.
        assert hash(clone) == hash(mapping)

    def test_context_round_trip_drops_memo(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        context = evaluator.fast_context()
        # Warm the no-load memo, then check it does not travel.
        context.execution_time(TaskMapping(pool[:6]))
        clone = pickle.loads(pickle.dumps(context))
        assert clone._noload_cache == {}
        assert clone.snapshot_fingerprint == context.snapshot_fingerprint
        m = TaskMapping(pool[:6])
        assert clone.execution_time(m) == pytest.approx(context.execution_time(m), abs=1e-12)

    def test_spec_round_trip_evaluates_identically(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        spec = SearchSpec.from_evaluator(evaluator, pool)
        spec.ensure_picklable()
        clone = pickle.loads(pickle.dumps(spec))
        m = TaskMapping(pool[:6])
        assert clone.build_evaluator().execution_time(m) == pytest.approx(
            evaluator.execution_time(m), abs=1e-12
        )

    def test_unpicklable_constraint_fails_fast(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        bound_pool = set(pool[:8])
        spec = SearchSpec.from_evaluator(
            evaluator, pool, constraint=lambda m: set(m.nodes_used()) <= bound_pool
        )
        with pytest.raises(ValueError, match="module-level"):
            spec.ensure_picklable()


class TestSaDeterminism:
    @pytest.mark.parametrize("scheduler_name", ["cs", "ncs"])
    def test_parallel_degrees_agree(self, evaluator_and_pool, scheduler_name):
        """Acceptance: parallel in {1, 2, 4} => byte-identical results."""
        evaluator, pool = evaluator_and_pool
        results = {}
        for parallel in (1, 2, 4):
            scheduler = make_scheduler(scheduler_name, restarts=3, parallel=parallel)
            ev = evaluator.with_snapshot(evaluator.snapshot)
            results[parallel] = result_key(scheduler.schedule(ev, pool, seed=11))
        assert results[1] == results[2] == results[4]

    def test_maximize_direction_agrees_too(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        results = {}
        for parallel in (1, 2):
            scheduler = make_scheduler(
                "cs", restarts=2, direction="maximize", parallel=parallel
            )
            ev = evaluator.with_snapshot(evaluator.snapshot)
            results[parallel] = result_key(scheduler.schedule(ev, pool, seed=3))
        assert results[1] == results[2]

    def test_restart_substreams_are_independent(self, fresh_evaluator):
        """Satellite 2: restart i's outcome does not depend on how many
        other restarts run beside it (the old shared-RNG coupling)."""
        evaluator, pool = fresh_evaluator
        spec = SearchSpec.from_evaluator(evaluator, pool)

        def tasks(n):
            return [
                SaTask(index=i, seed=5, rng_parts=("t", "restart", i)) for i in range(n)
            ]

        portfolio = ParallelPortfolio(1)
        two = portfolio.run_sa(spec, tasks(2)).outcomes
        four = portfolio.run_sa(spec, tasks(4)).outcomes
        for a, b in zip(two, four, strict=False):
            assert a.mapping == b.mapping
            assert a.energy == b.energy
            assert a.history == b.history

    def test_tie_break_prefers_lowest_index(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        spec = SearchSpec.from_evaluator(evaluator, pool)
        # Identical rng_parts => identical outcomes => the reduction must
        # pick index 0 deterministically.
        tasks = [SaTask(index=i, seed=9, rng_parts=("same",)) for i in range(3)]
        result = ParallelPortfolio(1).run_sa(spec, tasks)
        best = min(result.outcomes, key=lambda o: (o.energy, o.index))
        assert best.index == 0
        assert result.mapping == best.mapping

    def test_shared_bound_still_returns_valid_result(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        ev = evaluator.with_snapshot(evaluator.snapshot)
        scheduler = make_scheduler("cs", restarts=3, parallel=2, share_bound=True)
        result = scheduler.schedule(ev, pool, seed=1)
        assert result.mapping.nprocs == ev.profile.nprocs
        assert result.predicted_time > 0

    def test_local_bound_prunes_hopeless_cost(self):
        bound = LocalBound(margin=0.1)
        bound.update(10.0)
        assert not bound.should_prune(10.5)  # within 10%
        assert bound.should_prune(11.5)  # > 10% behind
        bound.update(5.0)
        assert bound.should_prune(10.0)


class TestGaIslands:
    def test_parallel_degrees_agree(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        results = {}
        for parallel in (1, 2):
            scheduler = make_scheduler("ga", islands=3, parallel=parallel)
            ev = evaluator.with_snapshot(evaluator.snapshot)
            results[parallel] = result_key(scheduler.schedule(ev, pool, seed=21))
        assert results[1] == results[2]

    def test_migration_spreads_elites(self, fresh_evaluator):
        """With migration every generation, every island's final best
        can be no worse than the globally best initial individual."""
        evaluator, pool = fresh_evaluator
        spec = SearchSpec.from_evaluator(evaluator, pool)
        params = GeneticParams(population=8, generations=6)
        result = run_island_ga(
            spec,
            params,
            islands=3,
            migration_interval=1,
            migrants=2,
            seed=4,
            rng_parts=("mig",),
        )
        assert len(result.islands) == 3
        # The best initial individual (history[0]) migrates ring-wide, so
        # no island can end worse than the worst initial best.
        worst_initial = max(island.history[0] for island in result.islands)
        for island in result.islands:
            assert min(island.fitness) <= worst_initial
        assert result.energy == min(min(i.fitness) for i in result.islands)

    def test_islands_param_validation(self):
        with pytest.raises(ValueError):
            make_scheduler("ga", islands=0)
        with pytest.raises(ValueError):
            make_scheduler("ga", islands=2, migrants=0)
        with pytest.raises(ValueError):
            make_scheduler("ga", islands=2, migration_interval=0)


class TestCancellation:
    def test_expired_budget_returns_best_so_far(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        # A budget far smaller than one temperature step: the annealer
        # must still return a finished result, never raise.
        scheduler = make_scheduler(
            "cs",
            restarts=2,
            time_budget=1e-6,
            schedule=AnnealingSchedule(moves_per_temperature=200, steps=50, patience=50),
        )
        result = scheduler.schedule(evaluator, pool, seed=2)
        assert result.mapping.nprocs == evaluator.profile.nprocs
        assert result.predicted_time > 0

    def test_expired_budget_parallel_ga(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        scheduler = make_scheduler("ga", islands=2, parallel=2, time_budget=1e-6)
        result = scheduler.schedule(evaluator, pool, seed=2)
        assert result.mapping.nprocs == evaluator.profile.nprocs

    def test_execution_option_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            make_scheduler("cs", parallel=0)
        with pytest.raises(ValueError, match="parallel"):
            make_scheduler("cs", parallel=True)
        with pytest.raises(ValueError, match="time_budget"):
            make_scheduler("cs", time_budget=-1)
        with pytest.raises(ValueError, match="time_budget"):
            make_scheduler("cs", time_budget=0)

    def test_schedulers_without_search_accept_execution_options(self, fresh_evaluator):
        evaluator, pool = fresh_evaluator
        for name in ("rs", "greedy"):
            scheduler = make_scheduler(name, parallel=4, time_budget=60.0)
            result = scheduler.schedule(evaluator, pool, seed=0)
            assert result.mapping.nprocs == evaluator.profile.nprocs


class TestServiceWiring:
    @pytest.fixture(scope="class")
    def service_and_app(self):
        service = CBES(single_switch("mini", 6))
        service.calibrate(seed=2)
        app = SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)
        service.profile_application(app, 3, seed=1)
        return service, app.name

    def test_service_schedule_parallel_kwarg(self, service_and_app):
        service, app_name = service_and_app
        pool = service.cluster.node_ids()
        serial = service.schedule(app_name, make_scheduler("cs"), pool, seed=6)
        fanned = service.schedule(
            app_name, make_scheduler("cs"), pool, seed=6, parallel=2
        )
        assert fanned.mapping == serial.mapping
        assert fanned.predicted_time == pytest.approx(serial.predicted_time, abs=1e-12)

    def test_service_schedule_rejects_plain_callables(self, service_and_app):
        service, app_name = service_and_app

        class Bare:
            def schedule(self, evaluator, pool, *, seed=0):  # pragma: no cover
                raise AssertionError("should not run")

        with pytest.raises(TypeError, match="execution options"):
            service.schedule(app_name, Bare(), service.cluster.node_ids(), parallel=2)

    def test_daemon_validates_workers_and_budget(self, service_and_app):
        service, app_name = service_and_app
        with DaemonThread(service, workers=1, queue_limit=8) as server:
            client = server.client()
            for payload, fragment in [
                ({"workers": 0}, "workers"),
                ({"workers": True}, "workers"),
                ({"workers": "four"}, "workers"),
                ({"time_budget": -1}, "time_budget"),
                ({"time_budget": 0}, "time_budget"),
            ]:
                with pytest.raises(ServerError) as excinfo:
                    client.submit("schedule", app=app_name, **payload)
                assert excinfo.value.status == 400
                assert fragment in str(excinfo.value)
            # workers is a schedule-job field only.
            with pytest.raises(ServerError) as excinfo:
                client.submit(
                    "predict",
                    app=app_name,
                    nodes=service.cluster.node_ids()[:3],
                    workers=2,
                )
            assert excinfo.value.status == 400
            assert "only valid for schedule jobs" in str(excinfo.value)

    def test_daemon_parallel_job_matches_direct_run(self, service_and_app):
        """Acceptance: a workers=2 daemon job == a direct parallel run."""
        service, app_name = service_and_app
        pool = service.cluster.node_ids()
        direct = service.schedule(app_name, make_scheduler("cs"), pool, seed=8)
        with DaemonThread(service, workers=1, queue_limit=8) as server:
            client = server.client()
            remote = client.schedule(app_name, scheduler="cs", pool=pool, seed=8, workers=2)
        assert remote["mapping"] == list(direct.mapping.as_tuple())
        assert remote["predicted_time"] == pytest.approx(direct.predicted_time, abs=1e-12)


class TestInlineFastPathParity:
    def test_inline_context_reuse_matches_worker_built_context(self, fresh_evaluator):
        """The inline path hands the evaluator's cached context to the
        runner; a runner that builds its own context from the spec must
        produce the same outcome."""
        evaluator, pool = fresh_evaluator
        spec = SearchSpec.from_evaluator(evaluator, pool)
        task = SaTask(index=0, seed=13, rng_parts=("parity",))
        with_cache = TaskRunner(spec, context=evaluator.fast_context()).run_sa(task)
        self_built = TaskRunner(spec).run_sa(task)
        assert with_cache.mapping == self_built.mapping
        assert with_cache.energy == self_built.energy
        assert with_cache.evaluations == self_built.evaluations

    def test_no_fast_path_still_deterministic(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        spec = SearchSpec.from_evaluator(evaluator, pool, use_fast_path=False)
        task = SaTask(index=0, seed=13, rng_parts=("ref",))
        a = TaskRunner(spec).run_sa(task)
        b = TaskRunner(spec).run_sa(task)
        assert a.mapping == b.mapping and a.energy == b.energy
