"""Smoke tests for the runnable examples.

The two fastest examples run end-to-end as subprocesses (they are the
README's first contact with the library); the rest are imported and
checked for a ``main`` entry point so a syntax or import regression in
any example fails the suite without paying its full runtime.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


class TestExampleInventory:
    def test_expected_examples_present(self):
        expected = {
            "quickstart.py",
            "orange_grove_scheduling.py",
            "prediction_accuracy.py",
            "load_aware_remapping.py",
            "custom_cluster.py",
            "segment_scheduling.py",
            "multi_tenant.py",
            "service_daemon.py",
        }
        assert expected <= set(ALL_EXAMPLES)

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_defines_main(self, name):
        spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", EXAMPLES / name)
        module = importlib.util.module_from_spec(spec)
        # Import only: main() stays behind the __main__ guard.
        spec.loader.exec_module(module)
        assert callable(getattr(module, "main", None)), name

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_has_docstring(self, name):
        text = (EXAMPLES / name).read_text()
        assert text.lstrip().startswith('"""'), name


class TestExampleExecution:
    @pytest.mark.parametrize("name", ["quickstart.py", "custom_cluster.py"])
    def test_runs_cleanly(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip()

    def test_quickstart_reports_speedup(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "speedup" in proc.stdout
