"""Tests for the remapping cost/benefit advisor."""

import pytest

from repro.cluster import single_switch
from repro.core import CBES, RemapAdvisor, RemapCostModel, TaskMapping
from repro.monitoring.load import LoadEvent, LoadGenerator
from repro.workloads import SyntheticBenchmark


class TestRemapCostModel:
    def test_no_move_no_cost(self):
        costs = RemapCostModel(fixed_s=1.0, per_task_s=0.5)
        m = TaskMapping(["a", "b"])
        assert costs.cost(m, m) == 0.0

    def test_cost_counts_moved_tasks(self):
        costs = RemapCostModel(fixed_s=1.0, per_task_s=0.5)
        assert costs.cost(TaskMapping(["a", "b", "c"]), TaskMapping(["a", "x", "y"])) == 2.0

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RemapCostModel().cost(TaskMapping(["a"]), TaskMapping(["a", "b"]))

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            RemapCostModel(fixed_s=-1.0)


class TestRemapAdvisor:
    @pytest.fixture
    def setup(self):
        cluster = single_switch("mini", 6)
        service = CBES(cluster)
        service.calibrate(seed=2)
        app = SyntheticBenchmark(comm_fraction=0.1, duration_s=60.0, steps=6)
        service.profile_application(app, 2, seed=0)
        return cluster, service, app

    def test_recommends_escape_from_loaded_node(self, setup):
        cluster, service, app = setup
        nodes = cluster.node_ids()
        current = TaskMapping(nodes[:2])
        candidate = TaskMapping(nodes[2:4])
        LoadGenerator(cluster).apply([LoadEvent(nodes[0], cpu_load=1.0)])
        decision = RemapAdvisor(RemapCostModel(fixed_s=0.5, per_task_s=0.25)).evaluate(
            service.evaluator(app.name), current, candidate, fraction_remaining=1.0
        )
        assert decision.remap
        assert decision.benefit_s > 0

    def test_rejects_when_little_work_remains(self, setup):
        cluster, service, app = setup
        nodes = cluster.node_ids()
        current = TaskMapping(nodes[:2])
        candidate = TaskMapping(nodes[2:4])
        LoadGenerator(cluster).apply([LoadEvent(nodes[0], cpu_load=1.0)])
        # Huge migration cost vs 1% of remaining work: stay put.
        decision = RemapAdvisor(RemapCostModel(fixed_s=100.0, per_task_s=10.0)).evaluate(
            service.evaluator(app.name), current, candidate, fraction_remaining=0.01
        )
        assert not decision.remap

    def test_identical_candidate_never_remaps(self, setup):
        cluster, service, app = setup
        current = TaskMapping(cluster.node_ids()[:2])
        decision = RemapAdvisor().evaluate(
            service.evaluator(app.name), current, current, fraction_remaining=0.5
        )
        assert not decision.remap
        assert decision.migration_cost_s == 0.0
        assert decision.benefit_s == pytest.approx(0.0)

    def test_fraction_validation(self, setup):
        cluster, service, app = setup
        current = TaskMapping(cluster.node_ids()[:2])
        with pytest.raises(ValueError):
            RemapAdvisor().evaluate(
                service.evaluator(app.name), current, current, fraction_remaining=0.0
            )
        with pytest.raises(ValueError):
            RemapAdvisor().evaluate(
                service.evaluator(app.name), current, current, fraction_remaining=1.2
            )
