"""Tests for the NPB / HPL / ASCI / synthetic workload models.

Every model must produce a valid, deadlock-free program that actually
runs on the simulator, with the communication structure its benchmark
is known for.
"""


import pytest

from repro.simulate import ClusterSimulator, Compute, SimulationConfig
from repro.workloads import (
    BT,
    CG,
    EP,
    HPL,
    IS,
    LU,
    MG,
    SAMRAI,
    SMG2000,
    SP,
    Aztec,
    Sweep3D,
    SyntheticBenchmark,
    Towhee,
)
from tests.conftest import make_tiny_cluster

ALL_MODELS = [
    LU("S"),
    BT("S"),
    SP("S"),
    MG("A"),
    CG("A"),
    IS("A"),
    EP("A"),
    HPL(500, nb=125),
    Sweep3D(niter=2),
    SMG2000(12, niter=2),
    SAMRAI(niter=2),
    Towhee(work=4.0),
    Aztec(64, niter=3),
]


@pytest.fixture(scope="module")
def sim():
    cluster = make_tiny_cluster(4)
    cluster.use_exact_latency_model()
    return ClusterSimulator(cluster, SimulationConfig(jitter=0.0)), cluster


class TestAllModelsRun:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_program_validates(self, model):
        model.program(4).validate()

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_runs_to_completion(self, model, sim):
        simulator, cluster = sim
        ids = cluster.node_ids()
        res = simulator.run(
            model.program(4), {r: ids[r] for r in range(4)}, arch_affinity=model.arch_affinity
        )
        assert res.total_time > 0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_single_process_supported_or_rejected(self, model):
        if model.valid_nprocs(1):
            model.program(1).validate()
        else:
            with pytest.raises(ValueError):
                model.program(1)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_affinity_positive(self, model):
        for arch in ("alpha-533", "pii-400", "sparc-500", "unknown"):
            assert model.arch_affinity(arch) > 0


class TestNpbSpecifics:
    def test_class_validation(self):
        with pytest.raises(ValueError, match="class"):
            LU("Z")
        with pytest.raises(ValueError, match="class"):
            MG("S")  # MG has no S class here

    def test_class_b_heavier_than_a(self):
        a, b = LU("A"), LU("B")
        assert b.program(4).total_work > a.program(4).total_work

    def test_lu_work_splits_evenly(self):
        prog = LU("A").program(8)
        per_rank = [
            sum(op.work for op in stream if isinstance(op, Compute)) for stream in prog.ops
        ]
        assert max(per_rank) == pytest.approx(min(per_rank))

    def test_bt_requires_square_counts(self):
        bt = BT("S")
        assert bt.valid_nprocs(4) and bt.valid_nprocs(9) and bt.valid_nprocs(16)
        assert not bt.valid_nprocs(8)
        with pytest.raises(ValueError):
            bt.program(8)

    def test_sp_finer_messages_than_bt(self):
        def sizes(model):
            return [
                getattr(op, "send_bytes", 0.0) + getattr(op, "size_bytes", 0.0)
                for stream in model.program(4).ops
                for op in stream
                if not isinstance(op, Compute)
            ]

        assert max(sizes(SP("A"))) < max(sizes(BT("A")))

    def test_ep_is_almost_pure_compute(self):
        prog = EP("A").program(8)
        comm_bytes = sum(
            getattr(op, "send_bytes", 0.0) + getattr(op, "size_bytes", 0.0)
            for stream in prog.ops
            for op in stream
            if not isinstance(op, Compute)
        )
        assert comm_bytes < 1e4  # only tiny allreduces

    def test_is_dominated_by_alltoall(self):
        prog = IS("A").program(4)
        assert prog.total_messages >= 4 * 3 * 2 * 8  # 2 alltoalls x 8 iters

    def test_names_follow_convention(self):
        assert LU("A").name == "lu.A"
        assert SMG2000(50).name == "smg2000.50"
        assert HPL(10000).name == "hpl.10000"


class TestHplSpecifics:
    def test_flop_scaling(self):
        small, large = HPL(1000, nb=250), HPL(2000, nb=250)
        # 2/3 N^3 flops: doubling N -> ~8x work.
        ratio = large.program(4).total_work / small.program(4).total_work
        assert 6.0 < ratio < 10.0

    def test_max_steps_caps_events(self):
        few = HPL(10000, nb=10, max_steps=10)
        prog = few.program(4)
        assert len(prog.ops[0]) < 400

    def test_validation(self):
        with pytest.raises(ValueError):
            HPL(0)
        with pytest.raises(ValueError):
            HPL(100, nb=0)
        with pytest.raises(ValueError):
            HPL(100, max_steps=0)


class TestAsciSpecifics:
    def test_smg_size_scaling(self):
        t12 = SMG2000(12, niter=2).program(8).total_work
        t60 = SMG2000(60, niter=2).program(8).total_work
        assert t60 > 3 * t12

    def test_smg_size_validation(self):
        with pytest.raises(ValueError):
            SMG2000(2)

    def test_towhee_negligible_communication(self):
        prog = Towhee().program(8)
        assert prog.total_messages < 20

    def test_samrai_all_to_all(self):
        prog = SAMRAI(niter=1).program(5)
        # Regrid all-to-all: everyone messages everyone.
        assert prog.total_messages >= 5 * 4

    def test_aztec_validation(self):
        with pytest.raises(ValueError):
            Aztec(4)


class TestSynthetic:
    def test_parameter_validation(self):
        for bad in (
            dict(comm_fraction=1.0),
            dict(comm_fraction=-0.1),
            dict(overlap=2.0),
            dict(duration_s=0.0),
            dict(steps=0),
            dict(messages_per_step=0),
            dict(pattern="mesh"),
        ):
            with pytest.raises(ValueError):
                SyntheticBenchmark(**bad)

    def test_duration_controls_work(self):
        short = SyntheticBenchmark(duration_s=10.0).program(4).total_work
        long = SyntheticBenchmark(duration_s=40.0).program(4).total_work
        assert long == pytest.approx(4 * short, rel=0.01)

    def test_comm_fraction_controls_volume(self):
        def volume(cf):
            prog = SyntheticBenchmark(comm_fraction=cf, overlap=1.0).program(4)
            return sum(
                getattr(op, "send_bytes", 0.0)
                for stream in prog.ops
                for op in stream
            )

        assert volume(0.5) > 3 * volume(0.1)

    def test_overlap_zero_serializes(self, sim):
        simulator, cluster = sim
        ids = cluster.node_ids()
        mapping = {r: ids[r] for r in range(4)}
        seq = SyntheticBenchmark(comm_fraction=0.6, overlap=0.0, duration_s=2.0, steps=4)
        ovl = SyntheticBenchmark(comm_fraction=0.6, overlap=1.0, duration_s=2.0, steps=4)
        t_seq = simulator.run(seq.program(4), mapping).total_time
        t_ovl = simulator.run(ovl.program(4), mapping).total_time
        assert t_ovl < t_seq

    @pytest.mark.parametrize("pattern", ["ring", "halo", "alltoall"])
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_patterns_deadlock_free(self, pattern, n, sim):
        simulator, cluster = sim
        app = SyntheticBenchmark(
            comm_fraction=0.4, overlap=0.5, duration_s=1.0, steps=2, pattern=pattern
        )
        ids = (cluster.node_ids() * 2)[:n]
        res = simulator.run(app.program(n), {r: ids[r] for r in range(n)})
        assert res.total_time > 0

    def test_single_process_runs(self, sim):
        simulator, cluster = sim
        app = SyntheticBenchmark(duration_s=1.0, steps=2)
        res = simulator.run(app.program(1), {0: cluster.node_ids()[0]})
        assert res.total_time > 0

    def test_name_encodes_parameters(self):
        app = SyntheticBenchmark(comm_fraction=0.25, overlap=0.75, duration_s=30.0)
        assert "0.25" in app.name and "0.75" in app.name
