"""Tests for the trace analyzer (profile generation + eq. 7)."""

import pytest

from repro.cluster.latency import LatencyModel, PathComponents
from repro.profiling.analyzer import TraceAnalyzer
from repro.profiling.events import TimeCategory
from repro.profiling.trace import ExecutionTrace


@pytest.fixture
def latency_model():
    comps = PathComponents(10e-6, 10e-6, 5e-6, 1e-8)
    pairs = {}
    for a in ("na", "nb", "nc"):
        for b in ("na", "nb", "nc"):
            if a != b:
                pairs[(a, b)] = comps
    return LatencyModel(pairs)


def build_trace():
    trace = ExecutionTrace("app", 3, {0: "na", 1: "nb", 2: "nc"})
    trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 2.0)
    trace.record_time(0, TimeCategory.MPI_OVERHEAD, 2.0, 0.1)
    trace.record_time(0, TimeCategory.BLOCKED, 2.1, 0.5)
    trace.record_time(1, TimeCategory.OWN_CODE, 0.0, 1.0)
    trace.record_time(2, TimeCategory.OWN_CODE, 0.0, 3.0)
    # rank 0 sends two same-size messages to 1, one other-size to 2
    trace.record_message(0, 1, 1000, 2.1, 2.2)
    trace.record_message(0, 1, 1000, 2.3, 2.4)
    trace.record_message(0, 2, 500, 2.5, 2.6)
    trace.record_message(1, 0, 1000, 0.0, 0.2)
    trace.finish(3.0)
    return trace


class TestAnalyze:
    def test_requires_sealed_trace(self, latency_model):
        trace = ExecutionTrace("app", 1, {0: "na"})
        with pytest.raises(ValueError, match="finish"):
            TraceAnalyzer(latency_model).analyze(trace, profile_speeds={0: 1.0})

    def test_times_aggregated(self, latency_model):
        prof = TraceAnalyzer(latency_model).analyze(
            build_trace(), profile_speeds={0: 1.0, 1: 1.0, 2: 1.0}
        )
        p0 = prof.process(0)
        assert p0.own_time == pytest.approx(2.0)
        assert p0.overhead_time == pytest.approx(0.1)
        assert p0.blocked_time == pytest.approx(0.5)

    def test_message_groups_collapsed(self, latency_model):
        prof = TraceAnalyzer(latency_model).analyze(
            build_trace(), profile_speeds={0: 1.0, 1: 1.0, 2: 1.0}
        )
        p0 = prof.process(0)
        sends = {(g.peer, g.size_bytes): g.count for g in p0.sends}
        assert sends == {(1, 1000.0): 2, (2, 500.0): 1}
        recvs = {(g.peer, g.size_bytes): g.count for g in p0.recvs}
        assert recvs == {(1, 1000.0): 1}

    def test_lambda_matches_eq7(self, latency_model):
        trace = build_trace()
        prof = TraceAnalyzer(latency_model).analyze(
            trace, profile_speeds={0: 1.0, 1: 1.0, 2: 1.0}
        )
        p0 = prof.process(0)
        # Theta^profile for rank 0: 3 sends + 1 recv at the model's latency.
        theta_prof = (
            2 * latency_model.no_load("na", "nb", 1000)
            + latency_model.no_load("na", "nc", 500)
            + latency_model.no_load("nb", "na", 1000)
        )
        assert p0.lam == pytest.approx(0.5 / theta_prof)

    def test_lambda_defaults_to_one_without_comm(self, latency_model):
        trace = ExecutionTrace("app", 1, {0: "na"})
        trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 1.0)
        trace.finish(1.0)
        prof = TraceAnalyzer(latency_model).analyze(trace, profile_speeds={0: 1.0})
        assert prof.process(0).lam == 1.0

    def test_profile_mapping_copied(self, latency_model):
        prof = TraceAnalyzer(latency_model).analyze(
            build_trace(), profile_speeds={0: 1.0, 1: 1.0, 2: 1.0}
        )
        assert prof.profile_mapping == {0: "na", 1: "nb", 2: "nc"}

    def test_per_segment_profiles(self, latency_model):
        trace = ExecutionTrace("app", 2, {0: "na", 1: "nb"})
        trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 1.0, segment=0)
        trace.record_time(0, TimeCategory.OWN_CODE, 1.0, 5.0, segment=1)
        trace.record_time(1, TimeCategory.OWN_CODE, 0.0, 6.0, segment=1)
        trace.finish(6.0)
        prof = TraceAnalyzer(latency_model).analyze(
            trace, profile_speeds={0: 1.0, 1: 1.0}, per_segment=True
        )
        assert set(prof.segments) == {0, 1}
        assert prof.segments[0].process(0).own_time == 1.0
        assert prof.segments[1].process(0).own_time == 5.0
        # Top-level profile still aggregates everything.
        assert prof.process(0).own_time == 6.0

    def test_arch_ratios_attached(self, latency_model):
        prof = TraceAnalyzer(latency_model).analyze(
            build_trace(),
            profile_speeds={0: 1.0, 1: 1.0, 2: 1.0},
            arch_speed_ratios={"alpha-533": 1.5},
        )
        assert prof.arch_speed_ratios == {"alpha-533": 1.5}
