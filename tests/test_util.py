"""Tests for repro._util."""

import math

import pytest

from repro._util import (
    check_fraction,
    check_positive,
    mean_and_ci95,
    percent_error,
    spawn_rng,
    stable_hash,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-2.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.0001, "f")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_fraction(-0.1, "f")

    def test_open_low_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", closed_low=False)

    def test_open_low_accepts_small(self):
        assert check_fraction(1e-9, "f", closed_low=False) == 1e-9


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinct_inputs_distinct_hashes(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_nonnegative_63bit(self):
        h = stable_hash("anything", 42)
        assert 0 <= h < 2**63


class TestSpawnRng:
    def test_same_key_same_stream(self):
        a = spawn_rng(7, "x").normal(size=5)
        b = spawn_rng(7, "x").normal(size=5)
        assert a == b

    def test_different_keys_different_streams(self):
        a = spawn_rng(7, "x").normal(size=5)
        b = spawn_rng(7, "y").normal(size=5)
        assert a != b

    def test_different_seeds_different_streams(self):
        a = spawn_rng(7, "x").normal(size=5)
        b = spawn_rng(8, "x").normal(size=5)
        assert a != b


class TestMeanAndCi95:
    def test_single_sample_zero_ci(self):
        mean, ci = mean_and_ci95([3.0])
        assert mean == 3.0
        assert ci == 0.0

    def test_constant_samples_zero_ci(self):
        mean, ci = mean_and_ci95([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert ci == 0.0

    def test_known_values(self):
        # For n=5 samples of std 1, the 95% t half-width is
        # t(0.975, 4) * 1/sqrt(5) = 2.776 * 0.4472 = 1.2416...
        samples = [0.0, 1.0, 2.0, 3.0, 4.0]  # std (ddof=1) = sqrt(2.5)
        mean, ci = mean_and_ci95(samples)
        assert mean == 2.0
        expected = 2.7764451 * math.sqrt(2.5) / math.sqrt(5)
        assert ci == pytest.approx(expected, rel=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_ci95([])

    def test_mean_in_interval(self):
        rng = spawn_rng(0, "ci95")
        samples = rng.normal(10.0, 1.0, size=50)
        mean, ci = mean_and_ci95(samples)
        assert mean - ci < 10.0 < mean + ci  # true mean covered (usually)


class TestPercentError:
    def test_exact_is_zero(self):
        assert percent_error(5.0, 5.0) == 0.0

    def test_symmetric_in_magnitude(self):
        assert percent_error(11.0, 10.0) == pytest.approx(10.0)
        assert percent_error(9.0, 10.0) == pytest.approx(10.0)

    def test_zero_actual_raises(self):
        with pytest.raises(ValueError):
            percent_error(1.0, 0.0)
