"""Unit tests for the daemon's HTTP framing."""

import asyncio
import json

import pytest

from repro.server.protocol import ApiError, HttpRequest, read_request, render_response


def parse(raw: bytes) -> HttpRequest | None:
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


def parse_error(raw: bytes) -> ApiError:
    with pytest.raises(ApiError) as excinfo:
        parse(raw)
    return excinfo.value


class TestReadRequest:
    def test_get(self):
        req = parse(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_post_with_body(self):
        body = json.dumps({"kind": "schedule"}).encode()
        raw = (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = parse(raw)
        assert req.method == "POST"
        assert req.json() == {"kind": "schedule"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_is_400(self):
        assert parse_error(b"GET /v1/healthz HTTP/1.1\r\n").status == 400

    def test_malformed_request_line(self):
        assert parse_error(b"NONSENSE\r\n\r\n").status == 400

    def test_bad_content_length(self):
        err = parse_error(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.status == 400

    def test_body_shorter_than_content_length(self):
        err = parse_error(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
        assert err.status == 400

    def test_oversized_body_rejected(self):
        err = parse_error(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        assert err.status == 413
        assert err.code == "payload-too-large"

    def test_chunked_rejected(self):
        err = parse_error(b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert err.status == 400


class TestJsonBody:
    def test_non_object_body_rejected(self):
        req = HttpRequest("POST", "/v1/jobs", body=b"[1, 2]")
        with pytest.raises(ApiError, match="JSON object"):
            req.json()

    def test_malformed_json_rejected(self):
        req = HttpRequest("POST", "/v1/jobs", body=b"{nope")
        with pytest.raises(ApiError, match="malformed"):
            req.json()

    def test_empty_body_rejected(self):
        with pytest.raises(ApiError):
            HttpRequest("POST", "/v1/jobs").json()


class TestRenderResponse:
    def test_roundtrip_shape(self):
        raw = render_response(202, {"job": {"id": "j1"}}, headers={"X-Request-Id": "abc"})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 202 Accepted"
        assert "Connection: close" in lines
        assert "X-Request-Id: abc" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"job": {"id": "j1"}}

    def test_error_payload_shape(self):
        err = ApiError(429, "queue-full", "try later", headers={"Retry-After": "1"})
        assert err.to_payload() == {"error": {"code": "queue-full", "message": "try later"}}
        assert err.headers == {"Retry-After": "1"}
