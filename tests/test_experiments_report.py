"""Tests for the ASCII report renderers."""

import pytest

from repro.experiments.report import ascii_table, range_plot, text_histogram


class TestAsciiTable:
    def test_alignment(self):
        out = ascii_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_title(self):
        out = ascii_table(["h"], [["x"]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_table([], [])
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = ascii_table(["a"], [])
        assert "a" in out


class TestTextHistogram:
    def test_counts_preserved(self):
        values = [1.0] * 5 + [10.0] * 3
        out = text_histogram(values, bins=3)
        total = sum(int(line.rsplit(" ", 1)[-1]) for line in out.splitlines())
        assert total == 8

    def test_constant_values(self):
        out = text_histogram([2.0, 2.0], bins=4)
        assert "#" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            text_histogram([])
        with pytest.raises(ValueError):
            text_histogram([1.0], bins=0)

    def test_label(self):
        out = text_histogram([1.0, 2.0], label="CS")
        assert out.splitlines()[0] == "CS"


class TestRangePlot:
    def test_groups_rendered(self):
        out = range_plot([("high", 200.0, 220.0), ("low", 300.0, 330.0)])
        assert "high" in out and "low" in out
        assert "[" in out and "]" in out

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_plot([("bad", 5.0, 1.0)])

    def test_empty(self):
        with pytest.raises(ValueError):
            range_plot([])

    def test_degenerate_span(self):
        out = range_plot([("only", 5.0, 5.0)])
        assert "only" in out
