"""Tests for repro.cluster.calibration."""

import pytest

from repro.cluster.calibration import Calibrator, schedule_cliques
from repro.cluster.latency import LatencyModel
from tests.conftest import make_tiny_cluster


class TestScheduleCliques:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9])
    def test_covers_all_pairs_exactly_once(self, n):
        hosts = [f"h{i}" for i in range(n)]
        rounds = schedule_cliques(hosts)
        seen = [pair for rnd in rounds for pair in rnd]
        expected = {(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1 :]}
        assert set(seen) == expected
        assert len(seen) == len(expected)  # no duplicates

    @pytest.mark.parametrize("n", [2, 4, 7, 10])
    def test_no_host_twice_per_round(self, n):
        hosts = [f"h{i}" for i in range(n)]
        for rnd in schedule_cliques(hosts):
            flat = [h for pair in rnd for h in pair]
            assert len(flat) == len(set(flat))

    def test_linear_round_count(self):
        # n hosts -> n-1 rounds (n even): the O(N) property.
        assert len(schedule_cliques([f"h{i}" for i in range(10)])) == 9
        assert len(schedule_cliques([f"h{i}" for i in range(11)])) == 11

    def test_requires_two_hosts(self):
        with pytest.raises(ValueError):
            schedule_cliques(["only"])

    def test_duplicate_hosts_deduplicated(self):
        rounds = schedule_cliques(["a", "b", "a"])
        assert [pair for rnd in rounds for pair in rnd] == [("a", "b")]


class TestCalibrator:
    def test_noise_free_fit_is_exact(self):
        cluster = make_tiny_cluster(4)
        report = Calibrator(cluster.fabric, cluster.nodes, noise=0.0).calibrate()
        exact = LatencyModel.from_fabric(cluster.fabric, cluster.nodes)
        for src, dst in exact.pairs():
            for size in (64, 4096, 262144):
                assert report.model.no_load(src, dst, size) == pytest.approx(
                    exact.no_load(src, dst, size), rel=1e-6
                )

    def test_noisy_fit_close_to_truth(self):
        cluster = make_tiny_cluster(6, two_switches=True)
        report = Calibrator(cluster.fabric, cluster.nodes, noise=0.01, seed=3).calibrate()
        exact = LatencyModel.from_fabric(cluster.fabric, cluster.nodes)
        for src, dst in exact.pairs():
            for size in (64, 32768):
                assert report.model.no_load(src, dst, size) == pytest.approx(
                    exact.no_load(src, dst, size), rel=0.05
                )

    def test_deterministic_given_seed(self):
        cluster = make_tiny_cluster(4)
        r1 = Calibrator(cluster.fabric, cluster.nodes, seed=5).calibrate()
        r2 = Calibrator(cluster.fabric, cluster.nodes, seed=5).calibrate()
        assert r1.model.no_load("n00", "n01", 1024) == r2.model.no_load("n00", "n01", 1024)

    def test_report_accounting(self):
        cluster = make_tiny_cluster(4)
        report = Calibrator(cluster.fabric, cluster.nodes).calibrate()
        assert report.pair_benchmarks == 6  # C(4,2)
        assert report.rounds == 3
        assert report.parallel_speedup == pytest.approx(2.0)
        assert report.notes

    def test_reverse_direction_swaps_endpoints(self):
        cluster = make_tiny_cluster(4)
        report = Calibrator(cluster.fabric, cluster.nodes, noise=0.0).calibrate()
        fwd = report.model.components("n00", "n01")
        rev = report.model.components("n01", "n00")
        assert fwd.alpha_src == rev.alpha_dst
        assert fwd.alpha_dst == rev.alpha_src
        assert fwd.beta == rev.beta

    def test_parameter_validation(self):
        cluster = make_tiny_cluster(4)
        with pytest.raises(ValueError):
            Calibrator(cluster.fabric, cluster.nodes, noise=-0.1)
        with pytest.raises(ValueError):
            Calibrator(cluster.fabric, cluster.nodes, repetitions=0)
        with pytest.raises(ValueError):
            Calibrator(cluster.fabric, cluster.nodes).calibrate(sizes=[0])
