"""Shared fixtures for the test suite.

Expensive artefacts (built clusters, calibrated services, profiles) are
session-scoped; tests must not mutate them.  Tests that need mutable
state build their own small clusters via the factory fixtures.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ALPHA_533,
    INTEL_PII_400,
    Cluster,
    LinkSpec,
    NetworkFabric,
    Node,
    SwitchSpec,
    centurion,
    orange_grove,
    single_switch,
)
from repro.core import CBES, TaskMapping
from repro.simulate import ClusterSimulator
from repro.workloads import LU, SyntheticBenchmark


def make_tiny_cluster(n: int = 4, *, two_switches: bool = False) -> Cluster:
    """A small mutable cluster for tests: n PII nodes, 1 or 2 switches."""
    fabric = NetworkFabric()
    fabric.add_switch(SwitchSpec("sw0", nports=16))
    switches = ["sw0"]
    if two_switches:
        fabric.add_switch(SwitchSpec("sw1", nports=16, forward_latency_s=12e-6))
        fabric.connect("sw0", "sw1", LinkSpec(bandwidth_bps=50e6, latency_s=5e-6))
        switches.append("sw1")
    nodes = []
    for i in range(n):
        node = Node(f"n{i:02d}", INTEL_PII_400 if i % 2 == 0 else ALPHA_533)
        fabric.add_host(node.node_id)
        fabric.connect(node.node_id, switches[i % len(switches)])
        nodes.append(node)
    return Cluster("tiny", nodes, fabric)


@pytest.fixture
def tiny_cluster() -> Cluster:
    return make_tiny_cluster()


@pytest.fixture
def tiny_cluster2() -> Cluster:
    return make_tiny_cluster(6, two_switches=True)


@pytest.fixture(scope="session")
def og_cluster() -> Cluster:
    cluster = orange_grove()
    cluster.calibrate(seed=1)
    return cluster


@pytest.fixture(scope="session")
def centurion_cluster() -> Cluster:
    cluster = centurion()
    cluster.use_exact_latency_model()
    return cluster


@pytest.fixture(scope="session")
def og_service(og_cluster) -> CBES:
    """A calibrated service on Orange Grove with LU-A profiled.

    Session-scoped and shared: do not mutate loads through it.
    """
    service = CBES(og_cluster)
    app = LU("A")
    service.profile_application(
        app, 8, mapping=TaskMapping(og_cluster.nodes_by_arch("alpha-533")), seed=0
    )
    return service


@pytest.fixture(scope="session")
def lu_app() -> LU:
    return LU("A")


@pytest.fixture
def small_service() -> CBES:
    """A fresh, mutable service on a single-switch 6-node cluster."""
    cluster = single_switch("mini", 6)
    service = CBES(cluster)
    service.calibrate(seed=2)
    return service


@pytest.fixture
def tiny_app() -> SyntheticBenchmark:
    return SyntheticBenchmark(comm_fraction=0.2, overlap=0.5, duration_s=2.0, steps=4)


@pytest.fixture
def simulator(tiny_cluster) -> ClusterSimulator:
    tiny_cluster.use_exact_latency_model()
    return ClusterSimulator(tiny_cluster)
