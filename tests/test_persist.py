"""Unit tests for the write-ahead journal and the durable job store.

The properties pinned here are the ones crash recovery rests on: torn
tails are tolerated (truncated, replay stops at the last complete
record), checksum mismatches are *refused*, and replaying
``snapshot + journal-tail`` after a compaction reconstructs exactly the
state replaying the whole pre-compaction journal would.
"""

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.persist import (
    DurableJobStore,
    Journal,
    JournalCorruptError,
    recover_state,
    replay_journal,
)
from repro.persist.journal import HEADER_BYTES
from repro.server.jobs import DuplicateJobError, JobState
from repro.telemetry import MetricsRegistry


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "j.wal"
        records = [{"op": "create", "id": f"j{i}", "n": i} for i in range(20)]
        with Journal(path, fsync="never") as journal:
            for record in records:
                journal.append(record)
            assert journal.records == 20
        assert list(replay_journal(path)) == records

    def test_missing_file_replays_empty(self, tmp_path):
        assert list(replay_journal(tmp_path / "absent.wal")) == []

    def test_torn_tail_tolerated_and_truncated(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync="never") as journal:
            journal.append({"op": "a"})
            journal.append({"op": "b"})
        # Simulate a crash mid-append: a header promising more bytes
        # than follow it.
        with open(path, "ab") as fh:
            fh.write(struct.pack(">II", 999, 0) + b"only-a-few")
        assert [r["op"] for r in replay_journal(path)] == ["a", "b"]
        # Re-opening for append drops the torn bytes...
        with Journal(path, fsync="never") as journal:
            assert journal.records == 2
            journal.append({"op": "c"})
        # ...so the new record extends a clean tail.
        assert [r["op"] for r in replay_journal(path)] == ["a", "b", "c"]

    def test_torn_header_tolerated(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync="never") as journal:
            journal.append({"op": "a"})
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00")  # less than a full header
        assert [r["op"] for r in replay_journal(path)] == ["a"]

    def test_checksum_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync="never") as journal:
            journal.append({"op": "a"})
            journal.append({"op": "b"})
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the *first* record: a complete record
        # that no longer matches its checksum is corruption, not a tear.
        data[HEADER_BYTES + 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            list(replay_journal(path))
        with pytest.raises(JournalCorruptError):
            Journal(path, fsync="never")

    def test_implausible_length_refused(self, tmp_path):
        path = tmp_path / "j.wal"
        payload = b'{"op":"a"}'
        frame = struct.pack(">II", 2**31, zlib.crc32(payload)) + payload
        path.write_bytes(frame)
        with pytest.raises(JournalCorruptError):
            list(replay_journal(path))

    def test_reset_empties_the_file(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal(path, fsync="never") as journal:
            journal.append({"op": "a"})
            journal.reset()
            assert journal.records == 0
            assert journal.size_bytes == 0
            journal.append({"op": "z"})
        assert [r["op"] for r in replay_journal(path)] == ["z"]

    def test_fsync_policies(self, tmp_path):
        clock = FakeClock()
        j = Journal(tmp_path / "a.wal", fsync="always", clock=clock)
        j.append({})
        j.append({})
        assert j.syncs == 2
        j.close()
        j = Journal(tmp_path / "i.wal", fsync="interval", fsync_interval_s=10.0, clock=clock)
        j.append({})  # within the interval: flushed, not fsynced
        assert j.syncs == 0
        clock.advance(11.0)
        j.append({})
        assert j.syncs == 1
        j.close()
        j = Journal(tmp_path / "n.wal", fsync="never", clock=clock)
        j.append({})
        assert j.syncs == 0
        j.close()

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            Journal(tmp_path / "j.wal", fsync="sometimes")


class TestRecoverState:
    def test_lifecycle_fold(self):
        records = [
            {"op": "create", "id": "j000001", "kind": "predict", "payload": {"x": 1}},
            {"op": "create", "id": "j000002", "kind": "schedule", "payload": {}},
            {"op": "running", "id": "j000001"},
            {"op": "done", "id": "j000001", "result": {"t": 2.5}},
            {"op": "running", "id": "j000002"},
        ]
        docs, next_seq = recover_state(None, records)
        assert next_seq == 3
        assert [d["id"] for d in docs] == ["j000001", "j000002"]
        assert docs[0]["state"] == "done" and docs[0]["result"] == {"t": 2.5}
        # Running at crash time: recovered as running (the store rewinds
        # it to queued when materializing the Job).
        assert docs[1]["state"] == "running"

    def test_evict_drops_the_job(self):
        records = [
            {"op": "create", "id": "j000001", "kind": "predict", "payload": {}},
            {"op": "done", "id": "j000001", "result": {}},
            {"op": "evict", "id": "j000001"},
        ]
        docs, next_seq = recover_state(None, records)
        assert docs == []
        assert next_seq == 2  # the id stays burned even after eviction

    def test_lenient_replay_skips_stale_records(self):
        records = [
            {"op": "running", "id": "ghost"},  # unknown job
            {"op": "create", "id": "j000001", "kind": "k", "payload": {}},
            {"op": "create", "id": "j000001", "kind": "other", "payload": {}},  # re-create
            {"op": "done", "id": "j000001", "result": {"v": 1}},
            {"op": "done", "id": "j000001", "result": {"v": 2}},  # already terminal
            {"op": "nonsense", "id": "j000001"},  # unknown op
        ]
        docs, _ = recover_state(None, records)
        assert len(docs) == 1
        assert docs[0]["kind"] == "k"
        assert docs[0]["result"] == {"v": 1}

    def test_snapshot_plus_tail_equals_full_journal(self):
        """The compaction-correctness property, as a pure fold."""
        full = [
            {"op": "create", "id": "j000001", "kind": "a", "payload": {"i": 1}},
            {"op": "create", "id": "j000002", "kind": "b", "payload": {"i": 2}},
            {"op": "running", "id": "j000001"},
            {"op": "done", "id": "j000001", "result": {"t": 1.0}},
            {"op": "create", "id": "j000003", "kind": "c", "payload": {"i": 3}},
            {"op": "running", "id": "j000002"},
            {"op": "failed", "id": "j000002", "error": "boom"},
            {"op": "evict", "id": "j000001"},
        ]
        for cut in range(len(full) + 1):
            prefix_docs, prefix_seq = recover_state(None, full[:cut])
            snapshot = {"version": 1, "next_seq": prefix_seq, "jobs": prefix_docs}
            resumed = recover_state(snapshot, full[cut:])
            assert resumed == recover_state(None, full), f"diverged at cut={cut}"

    def test_next_seq_resumes_past_snapshot_and_foreign_ids(self):
        snapshot = {"version": 1, "next_seq": 4, "jobs": []}
        records = [
            {"op": "create", "id": "router-minted-uuid", "kind": "k", "payload": {}},
            {"op": "create", "id": "j000009", "kind": "k", "payload": {}},
        ]
        _, next_seq = recover_state(snapshot, records)
        assert next_seq == 10


class TestDurableJobStore:
    def _store(self, tmp_path, **kwargs) -> DurableJobStore:
        kwargs.setdefault("fsync", "never")
        return DurableJobStore(tmp_path / "data", **kwargs)

    def test_crash_reopen_recovers_everything(self, tmp_path):
        store = self._store(tmp_path)
        done = store.create("predict", {"app": "lu.A"})
        store.mark_running(done.id)
        store.mark_done(done.id, {"execution_time": 3.5})
        pending = store.create("schedule", {"app": "cg.B"}, request_id="req-7")
        running = store.create("predict", {"app": "mg.C"})
        store.mark_running(running.id)
        # No close(): simulate a crash by abandoning the store. The
        # journal was flushed on every append, so a new store sees it.
        reopened = self._store(tmp_path)
        job = reopened.get(done.id)
        assert job.state is JobState.DONE
        assert job.result == {"execution_time": 3.5}
        recovered = reopened.take_recovered()
        assert [j.id for j in recovered] == [pending.id, running.id]
        assert all(j.state is JobState.QUEUED for j in recovered)
        assert recovered[0].request_id == "req-7"
        assert reopened.take_recovered() == []  # handed out exactly once
        # Recovery compacted: snapshot exists, journal restarted empty.
        assert reopened.snapshot_path.exists()
        assert reopened.journal.records == 0
        assert reopened.compactions == 1
        # Minted ids resume past every recovered id.
        fresh = reopened.create("predict", {})
        assert fresh.id not in {done.id, pending.id, running.id}
        assert int(fresh.id[1:]) > int(running.id[1:])

    def test_recovery_is_idempotent_across_generations(self, tmp_path):
        store = self._store(tmp_path)
        job = store.create("predict", {"app": "x"})
        store.mark_running(job.id)
        store.mark_done(job.id, {"v": 1})
        for _ in range(3):
            store = self._store(tmp_path)
            assert store.get(job.id).result == {"v": 1}
            assert store.take_recovered() == []

    def test_duplicate_client_id_rejected(self, tmp_path):
        store = self._store(tmp_path)
        store.create("predict", {}, job_id="mine")
        with pytest.raises(DuplicateJobError):
            store.create("predict", {}, job_id="mine")

    def test_compaction_triggered_by_journal_growth(self, tmp_path):
        store = self._store(tmp_path, compact_bytes=512)
        for i in range(32):
            job = store.create("predict", {"filler": "x" * 40, "i": i})
            store.mark_running(job.id)
            store.mark_done(job.id, {"i": i})
        assert store.compactions >= 1
        assert store.journal.size_bytes <= 512 + 200  # bounded, not ever-growing
        # Everything is still there after the folds.
        reopened = self._store(tmp_path, compact_bytes=512)
        assert len(reopened.list()) == 32

    def test_eviction_is_journaled(self, tmp_path):
        clock = FakeClock()
        evicted = []
        store = self._store(
            tmp_path, ttl_s=5.0, clock=clock, on_evict=lambda job, age: evicted.append(job.id)
        )
        job = store.create("predict", {})
        store.mark_running(job.id)
        store.mark_done(job.id, {})
        clock.advance(10.0)
        assert store.evict_expired() == 1
        assert evicted == [job.id]  # user callback still fires
        reopened = self._store(tmp_path, clock=clock)
        with pytest.raises(KeyError):
            reopened.get(job.id)

    def test_metrics_families_recorded(self, tmp_path):
        registry = MetricsRegistry()
        store = self._store(tmp_path, metrics=registry)
        job = store.create("predict", {})
        store.mark_running(job.id)
        store.mark_done(job.id, {})
        snapshot = registry.snapshot()
        appends = snapshot["cbes_journal_appends_total"]["samples"][0]["value"]
        assert appends == 3
        assert snapshot["cbes_journal_bytes_total"]["samples"][0]["value"] > 0
        registry2 = MetricsRegistry()
        reopened = self._store(tmp_path, metrics=registry2)
        snap2 = registry2.snapshot()
        recovered = {
            s["labels"]["disposition"]: s["value"]
            for s in snap2["cbes_jobs_recovered_total"]["samples"]
        }
        assert recovered == {"retained": 1}
        assert snap2["cbes_journal_compactions_total"]["samples"][0]["value"] == 1

    def test_corrupt_journal_refused_at_boot(self, tmp_path):
        store = self._store(tmp_path)
        store.create("predict", {})
        store.close()
        wal = Path(store.journal.path)
        data = bytearray(wal.read_bytes())
        data[-2] ^= 0xFF
        wal.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            self._store(tmp_path)

    def test_snapshot_document_shape(self, tmp_path):
        store = self._store(tmp_path)
        job = store.create("predict", {"app": "x"})
        store.mark_running(job.id)
        store.mark_done(job.id, {"t": 1.0})
        store.compact()
        doc = json.loads(store.snapshot_path.read_text("utf-8"))
        assert doc["version"] == 1
        assert doc["next_seq"] == 2
        assert doc["jobs"][0]["id"] == job.id
        assert doc["jobs"][0]["state"] == "done"
        assert doc["jobs"][0]["result"] == {"t": 1.0}
