"""Tests for repro.telemetry: metrics, tracing, exporters, and the wiring.

Four layers are covered:

* **Primitives** — registry declaration rules, thread-safe exact counting,
  histogram bucket boundaries, callback gauges, and the Null no-ops.
* **Exporters** — Prometheus text exposition (escaping, cumulative
  buckets) and the JSON dump agree with ``snapshot()``.
* **Aggregation** — ``MetricsDelta`` pickles, merges associatively, and
  keeps search-side counters identical between ``parallel=1`` and
  ``parallel=N`` runs (the PR 3 determinism contract, extended to
  telemetry).
* **Surface** — the daemon's ``/v1/metrics`` + ``/v1/traces`` endpoints,
  the access-log/metrics guarantee on error responses, and the
  ``repro metrics`` CLI.
"""

import math
import pickle
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.cluster import single_switch
from repro.core import CBES
from repro.schedulers import make_scheduler
from repro.server import DaemonThread, ServerError
from repro.telemetry import (
    MetricError,
    MetricsDelta,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Tracer,
    to_json,
    to_prometheus,
    use_registry,
)
from repro.workloads import SyntheticBenchmark

# ---------------------------------------------------------------------------
# registry primitives


class TestRegistry:
    def test_declaration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("cbes_things_total", help="things", labelnames=("kind",))
        again = registry.counter("cbes_things_total", help="ignored", labelnames=("kind",))
        assert first is again

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("cbes_things_total")
        with pytest.raises(MetricError, match="already declared as a counter"):
            registry.gauge("cbes_things_total")  # repro: disable=RPR106

    def test_labelname_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("cbes_things_total", labelnames=("kind",))
        with pytest.raises(MetricError, match="already declared with labels"):
            registry.counter("cbes_things_total", labelnames=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("CamelCase")  # repro: disable=RPR106
        with pytest.raises(MetricError):
            registry.counter("cbes_ok_total", labelnames=("Bad-Label",))

    def test_wrong_label_set_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("cbes_things_total", labelnames=("kind",))
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc(flavor="x")
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc()  # labels required but omitted

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="only increase"):
            registry.counter("cbes_things_total").labels().inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("cbes_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert registry.snapshot()["cbes_depth"]["samples"][0]["value"] == 3.0

    def test_callback_gauge_reads_live_and_survives_breakage(self):
        registry = MetricsRegistry()
        box = {"value": 1.0}
        registry.gauge("cbes_live", callback=lambda: box["value"])
        assert registry.snapshot()["cbes_live"]["samples"][0]["value"] == 1.0
        box["value"] = 7.5
        assert registry.snapshot()["cbes_live"]["samples"][0]["value"] == 7.5

        registry.gauge("cbes_broken", callback=lambda: 1 / 0)
        sample = registry.snapshot()["cbes_broken"]["samples"][0]
        assert math.isnan(sample["value"])  # a broken callback must not kill a scrape

    def test_callback_gauge_with_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="callback gauges"):
            registry.gauge("cbes_live", labelnames=("kind",), callback=lambda: 1.0)

    def test_concurrent_increments_count_exactly(self):
        """Acceptance: lock-striped updates lose nothing under contention."""
        registry = MetricsRegistry()
        counter = registry.counter("cbes_hits_total", labelnames=("worker",))
        histogram = registry.histogram("cbes_lat_seconds", buckets=(0.5, 1.0))
        threads, per_thread = 8, 2000

        def hammer(worker_id: int) -> None:
            for i in range(per_thread):
                counter.inc(worker=worker_id % 2)
                histogram.observe(0.25 if i % 2 else 0.75)

        pool = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        snap = registry.snapshot()
        totals = [s["value"] for s in snap["cbes_hits_total"]["samples"]]
        assert totals == [threads // 2 * per_thread, threads // 2 * per_thread]
        hist = snap["cbes_lat_seconds"]["samples"][0]
        assert hist["count"] == threads * per_thread
        assert hist["buckets"] == [
            [0.5, threads * per_thread // 2],
            [1.0, threads * per_thread],
        ]

    def test_histogram_bucket_boundaries_are_le_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("cbes_lat_seconds", buckets=(0.1, 1.0))
        child = histogram.labels()
        child.observe(0.1)  # exactly on a bound -> that bucket
        child.observe(0.1000001)  # just over -> next bucket
        child.observe(50.0)  # beyond the last bound -> +Inf only
        sample = registry.snapshot()["cbes_lat_seconds"]["samples"][0]
        assert sample["buckets"] == [[0.1, 1], [1.0, 2]]  # cumulative
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(50.2000001)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="at least one"):
            registry.histogram("cbes_a_seconds", buckets=())
        with pytest.raises(MetricError, match="ascending"):
            registry.histogram("cbes_b_seconds", buckets=(1.0, 0.5))

    def test_snapshot_is_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        counter = registry.counter("cbes_z_total", labelnames=("kind",))
        registry.counter("cbes_a_total").labels().inc()
        counter.inc(kind="zebra")
        counter.inc(kind="ant")
        snap = registry.snapshot()
        assert list(snap) == ["cbes_a_total", "cbes_z_total"]
        kinds = [s["labels"]["kind"] for s in snap["cbes_z_total"]["samples"]]
        assert kinds == ["ant", "zebra"]


class TestNullImplementations:
    def test_null_registry_is_api_compatible_noop(self):
        registry = NullRegistry()
        child = registry.counter("cbes_things_total", labelnames=("kind",))
        child.inc(kind="x")
        child.labels(kind="x").inc()
        registry.gauge("cbes_depth").set(4)
        registry.histogram("cbes_lat_seconds").observe(0.5)
        assert registry.snapshot() == {}
        assert registry.collect_delta().empty
        registry.apply_delta(MetricsDelta())  # dropped, no error

    def test_null_tracer_is_api_compatible_noop(self):
        tracer = NullTracer()
        with tracer.trace("anything", key="value") as span:
            span.set_attribute("more", 1)
        assert tracer.traces() == []
        assert tracer.current_span() is None

    def test_ambient_defaults_to_disabled(self):
        assert not telemetry.enabled()
        assert isinstance(telemetry.get_registry(), NullRegistry)

    def test_use_registry_enables_within_context_only(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert telemetry.enabled()
            assert telemetry.get_registry() is registry
        assert not telemetry.enabled()

    def test_set_registry_global_fallback_and_context_override(self):
        global_registry, local_registry = MetricsRegistry(), MetricsRegistry()
        telemetry.set_registry(global_registry)
        try:
            assert telemetry.get_registry() is global_registry
            with use_registry(local_registry):
                assert telemetry.get_registry() is local_registry
            assert telemetry.get_registry() is global_registry
        finally:
            telemetry.set_registry(None)
        assert not telemetry.enabled()


# ---------------------------------------------------------------------------
# exporters


class TestExporters:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        counter = registry.counter(
            "cbes_requests_total", help='requests "served"\nby route', labelnames=("route",)
        )
        counter.inc(route='/v1/"x"\\y\nz')
        registry.histogram("cbes_lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        registry.gauge("cbes_depth", help="queue depth").set(3)
        return registry

    def test_prometheus_text_structure(self):
        text = to_prometheus(self.make_registry())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE cbes_requests_total counter" in lines
        assert "# TYPE cbes_lat_seconds histogram" in lines
        assert "# TYPE cbes_depth gauge" in lines
        assert "cbes_depth 3" in lines
        # Cumulative buckets, the +Inf catch-all, and sum/count lines.
        assert 'cbes_lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'cbes_lat_seconds_bucket{le="1"} 1' in lines
        assert 'cbes_lat_seconds_bucket{le="+Inf"} 1' in lines
        assert "cbes_lat_seconds_sum 0.05" in lines
        assert "cbes_lat_seconds_count 1" in lines

    def test_prometheus_escaping(self):
        text = to_prometheus(self.make_registry())
        # Label values escape backslash, quote, and newline.
        assert '{route="/v1/\\"x\\"\\\\y\\nz"}' in text
        # Help text escapes backslash and newline but NOT quotes.
        assert '# HELP cbes_requests_total requests "served"\\nby route' in text

    def test_prometheus_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert to_prometheus(NullRegistry()) == ""

    def test_json_agrees_with_snapshot(self):
        import json

        registry = self.make_registry()
        tracer = Tracer()
        with tracer.trace("root"):
            pass
        doc = json.loads(to_json(registry, tracer))
        assert doc["metrics"] == registry.snapshot()
        assert [t["name"] for t in doc["traces"]] == ["root"]


# ---------------------------------------------------------------------------
# spans


class TestSpans:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.trace("root", app="lu.A") as root:
            assert tracer.current_span() is root
            with tracer.trace("child") as child:
                child.set_attribute("n", 3)
            with tracer.trace("sibling"):
                pass
        assert tracer.current_span() is None

        traces = tracer.traces()
        assert len(traces) == 1
        tree = traces[0]
        assert tree["name"] == "root"
        assert tree["attributes"] == {"app": "lu.A"}
        assert [c["name"] for c in tree["children"]] == ["child", "sibling"]
        assert tree["children"][0]["attributes"] == {"n": 3}
        # Children share the root's trace id but have their own span ids.
        ids = {tree["span_id"]} | {c["span_id"] for c in tree["children"]}
        assert len(ids) == 3
        assert all(c["trace_id"] == tree["trace_id"] for c in tree["children"])
        assert tree["duration_s"] >= max(c["duration_s"] for c in tree["children"])

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                with tracer.trace("inner"):
                    raise RuntimeError("boom")
        tree = tracer.traces()[0]
        assert tree["status"] == "error"
        assert tree["children"][0]["status"] == "error"

    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            with tracer.trace(f"t{i}"):
                pass
        assert [t["name"] for t in tracer.traces()] == ["t4", "t3", "t2"]
        assert [t["name"] for t in tracer.traces(limit=1)] == ["t4"]
        tracer.clear()
        assert tracer.traces() == []

    def test_threads_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(tag: str) -> None:
            with tracer.trace(f"root-{tag}"):
                barrier.wait(timeout=5)
                with tracer.trace(f"child-{tag}"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = {t["name"]: t for t in tracer.traces()}
        assert set(roots) == {"root-a", "root-b"}
        for tag in ("a", "b"):
            assert [c["name"] for c in roots[f"root-{tag}"]["children"]] == [f"child-{tag}"]


# ---------------------------------------------------------------------------
# cross-process aggregation


def observe_workload(registry: MetricsRegistry, items: range) -> None:
    counter = registry.counter("cbes_work_total", help="work", labelnames=("kind",))
    histogram = registry.histogram("cbes_work_seconds", buckets=(0.1, 1.0))
    for i in items:
        counter.inc(kind="even" if i % 2 == 0 else "odd")
        histogram.observe((i % 20) / 10.0)


class TestMetricsDelta:
    def test_collect_apply_round_trip(self):
        source = MetricsRegistry()
        observe_workload(source, range(50))
        source.gauge("cbes_depth").set(9)  # gauges never travel

        target = MetricsRegistry()
        target.apply_delta(source.collect_delta())
        expected = {k: v for k, v in source.snapshot().items() if k != "cbes_depth"}
        assert target.snapshot() == expected

    def test_delta_pickles(self):
        source = MetricsRegistry()
        observe_workload(source, range(10))
        delta = pickle.loads(pickle.dumps(source.collect_delta()))
        target = MetricsRegistry()
        target.apply_delta(delta)
        assert target.snapshot() == source.snapshot()

    def test_merge_is_independent_of_partitioning(self):
        """The aggregate must not depend on how work landed on workers."""

        def partitioned(cuts: list[int]) -> dict:
            bounds = [0, *cuts, 100]
            merged = MetricsDelta()
            for lo, hi in zip(bounds, bounds[1:], strict=False):
                worker = MetricsRegistry()
                observe_workload(worker, range(lo, hi))
                merged.merge(worker.collect_delta())
            target = MetricsRegistry()
            target.apply_delta(merged)
            return target.snapshot()

        serial = partitioned([])
        assert partitioned([50]) == serial
        assert partitioned([13, 50, 51, 90]) == serial

    def test_empty_property(self):
        assert MetricsDelta().empty
        registry = MetricsRegistry()
        registry.gauge("cbes_depth").set(1)
        assert registry.collect_delta().empty  # gauges alone -> still empty
        registry.counter("cbes_x_total").labels().inc()
        assert not registry.collect_delta().empty


class TestSearchDeterminism:
    """parallel=1 vs parallel=N: identical results AND identical counters."""

    @pytest.fixture(scope="class")
    def evaluator_and_pool(self):
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
        from bench_incremental_eval import build_workload

        return build_workload(10, 5)

    @staticmethod
    def run_with_metrics(evaluator, pool, name: str, parallel: int, **kwargs):
        registry = MetricsRegistry()
        scheduler = make_scheduler(name, parallel=parallel, **kwargs)
        ev = evaluator.with_snapshot(evaluator.snapshot)
        with use_registry(registry):
            result = scheduler.schedule(ev, pool, seed=13)
        snap = registry.snapshot()
        # Infrastructure counters are inherently degree-dependent: the
        # inline path rebuilds one context where N workers build N, and
        # only the pooled path spawns workers / fills worker caches.
        # The *search* counters are the determinism contract.
        infra = {
            "cbes_context_builds_total",
            "cbes_worker_cache_events_total",
            "cbes_pool_spawns_total",
            "cbes_pool_spec_resends_total",
        }
        counters = {
            metric: [(tuple(sorted(s["labels"].items())), s["value"]) for s in family["samples"]]
            for metric, family in snap.items()
            if family["type"] == "counter" and metric not in infra
        }
        key = (result.mapping.as_tuple(), result.predicted_time, result.evaluations)
        return key, counters

    def test_sa_portfolio_counters_agree_across_degrees(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        one = self.run_with_metrics(evaluator, pool, "cs", 1, restarts=2)
        two = self.run_with_metrics(evaluator, pool, "cs", 2, restarts=2)
        assert one == two
        _, counters = one
        assert counters["cbes_evaluations_total"][0][1] > 0
        assert "cbes_sa_moves_total" in counters
        assert "cbes_search_tasks_total" in counters

    def test_ga_islands_counters_agree_across_degrees(self, evaluator_and_pool):
        evaluator, pool = evaluator_and_pool
        one = self.run_with_metrics(evaluator, pool, "ga", 1, islands=2)
        two = self.run_with_metrics(evaluator, pool, "ga", 2, islands=2)
        assert one == two
        _, counters = one
        assert counters["cbes_ga_generations_total"][0][1] > 0


# ---------------------------------------------------------------------------
# the daemon surface


def make_service() -> tuple[CBES, str]:
    service = CBES(single_switch("mini", 6))
    service.calibrate(seed=2)
    app = SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)
    service.profile_application(app, 3, seed=1)
    return service, app.name


@pytest.fixture(scope="module")
def service_and_app():
    return make_service()


@pytest.fixture(scope="module")
def server(service_and_app):
    service, _ = service_and_app
    with DaemonThread(service, workers=2, queue_limit=8) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return server.client()


@pytest.fixture(scope="module")
def scheduled(client, service_and_app):
    """One completed schedule job, so job/search metrics are non-zero."""
    _, app_name = service_and_app
    return client.schedule(app_name, scheduler="cs", seed=7)


REQUIRED_METRICS = (
    "cbes_requests_total",
    "cbes_request_seconds",
    "cbes_queue_depth",
    "cbes_snapshot_age_seconds",
    "cbes_evaluations_total",
    "cbes_jobs_total",
    "cbes_uptime_seconds",
)


class TestDaemonSurface:
    def test_prometheus_endpoint_exposes_required_metrics(self, client, scheduled):
        text = client.metrics_text()
        for name in REQUIRED_METRICS:
            assert name in text, f"missing {name}"
        # Well-formed exposition: every non-comment line is `name[{labels}] value`.
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                sample, _, value = line.rpartition(" ")
                assert sample
                float(value)
        assert '{kind="schedule",state="done"}' in text

    def test_json_endpoint_matches_structure(self, client, scheduled):
        metrics = client.metrics()
        assert metrics["cbes_requests_total"]["type"] == "counter"
        assert metrics["cbes_request_seconds"]["type"] == "histogram"
        sample = metrics["cbes_request_seconds"]["samples"][0]
        assert sample["count"] >= 1 and sample["sum"] > 0

    def test_evaluations_counter_changes_across_jobs(self, client, service_and_app, scheduled):
        service, app_name = service_and_app

        def evaluations() -> float:
            samples = client.metrics()["cbes_evaluations_total"]["samples"]
            return sum(s["value"] for s in samples)

        before = evaluations()
        assert before > 0
        client.predict(app_name, list(service.cluster.node_ids())[:3])
        assert evaluations() > before

    def test_error_responses_are_counted_and_logged(self, client, caplog):
        """Satellite fix: the 404 path still produces metrics + access log."""
        with caplog.at_level("INFO", logger="repro.server.access"):
            with pytest.raises(ServerError):
                client.job("j999999")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if any("404" in r.getMessage() for r in caplog.records):
                    break
                time.sleep(0.01)
        assert any(
            "/v1/jobs/j999999" in r.getMessage() and "404" in r.getMessage()
            for r in caplog.records
        )
        text = client.metrics_text()
        assert 'cbes_requests_total{method="GET",route="/v1/jobs/{id}",status="404"}' in text

    def test_routes_are_templated_not_raw_paths(self, client, scheduled):
        metrics = client.metrics()
        routes = {s["labels"]["route"] for s in metrics["cbes_requests_total"]["samples"]}
        assert "/v1/jobs/{id}" in routes
        assert not any(route.startswith("/v1/jobs/j") for route in routes)

    def test_traces_endpoint_returns_job_trees(self, client, scheduled):
        traces = client.traces()
        jobs = [t for t in traces if t["name"] == "cbes.job"]
        assert jobs, f"no cbes.job roots in {[t['name'] for t in traces]}"
        job = jobs[-1]
        assert job["status"] == "ok"
        assert job["duration_s"] > 0
        assert job["attributes"]["kind"] == "schedule"
        assert job["attributes"]["evaluations"] > 0
        # The daemon drives the scheduler directly, so the search span
        # nests straight under the job span.
        runs = [c for c in job["children"] if c["name"] == "scheduler.run"]
        assert runs and runs[0]["attributes"]["evaluations"] > 0
        assert runs[0]["trace_id"] == job["trace_id"]

    def test_cbes_schedule_emits_root_span(self, service_and_app):
        """CBES.schedule is the service-level trace root for library users."""
        from repro.schedulers import CbesScheduler
        from repro.telemetry import use_tracer

        service, app_name = service_and_app
        tracer = Tracer()
        with use_tracer(tracer):
            service.schedule(app_name, CbesScheduler(), list(service.cluster.node_ids()), seed=3)
        roots = [t for t in tracer.traces() if t["name"] == "cbes.schedule"]
        assert roots
        assert roots[0]["attributes"]["app"] == app_name
        assert [c["name"] for c in roots[0]["children"]] == ["scheduler.run"]

    def test_traces_limit_validation(self, client):
        assert client.traces(limit=1) == client.traces()[:1]
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/v1/traces?limit=nope")
        assert excinfo.value.status == 400

    def test_metrics_cli_renders_table_and_raw(self, server, scheduled, capsys):
        from repro.cli import main

        endpoint = ["--host", server.host, "--port", str(server.port)]
        assert main(["metrics", *endpoint]) == 0
        out = capsys.readouterr().out
        assert "cbes_requests_total (counter)" in out
        assert "cbes_request_seconds (histogram)" in out

        assert main(["metrics", *endpoint, "--raw"]) == 0
        raw = capsys.readouterr().out
        assert "# TYPE cbes_requests_total counter" in raw
