"""Tests for the repro.analysis invariant checker suite.

Each rule gets positive (trips), negative (clean), suppressed, and
baselined fixtures; the engine, baseline store, and CLI are exercised
directly; and an end-to-end run over the repository's own sources
asserts the committed tree stays clean (the same gate CI applies).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    analyze_paths,
    analyze_source,
    apply_baseline,
    load_baseline,
    module_name_for,
    registered_checkers,
    write_baseline,
)
from repro.analysis.cli import run as cli_run

REPO = Path(__file__).resolve().parent.parent


def check(source: str, module: str | None = None, rules: set[str] | None = None) -> list[Finding]:
    """Run the suite over one dedented snippet."""
    return analyze_source(textwrap.dedent(source), path="snippet.py", module=module, rules=rules)


def rule_ids(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# engine mechanics


def test_registry_contains_full_rule_pack():
    assert {"RPR100", "RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106"} <= set(
        registered_checkers()
    )


def test_syntax_error_becomes_rpr000_finding():
    findings = check("def broken(:\n    pass\n")
    assert rule_ids(findings) == {"RPR000"}


def test_module_name_for_maps_src_layout():
    assert module_name_for(REPO / "src/repro/schedulers/base.py") == "repro.schedulers.base"
    assert module_name_for(REPO / "src/repro/core/__init__.py") == "repro.core"
    assert module_name_for(REPO / "tests/test_analysis.py") is None


def test_scoped_rules_skip_out_of_scope_modules():
    source = "import time\n\ndef f():\n    time.time()\n"
    in_scope = check(source, module="repro.schedulers.custom")
    out_of_scope = check(source, module="repro.workloads.custom")
    assert "RPR101" in rule_ids(in_scope)
    assert "RPR101" not in rule_ids(out_of_scope)


def test_inline_suppression_silences_only_that_line_and_rule():
    source = """\
        import time

        def f():
            time.time()  # repro: disable=RPR101
            return time.time()
        """
    findings = [f for f in check(source, module="repro.core.x") if f.rule == "RPR101"]
    assert len(findings) == 1
    assert findings[0].line == 5


def test_disable_all_suppression():
    source = "import time\n\ndef f():\n    return time.time()  # repro: disable=all\n"
    assert "RPR101" not in rule_ids(check(source, module="repro.core.x"))


def test_rules_filter_limits_active_checkers():
    source = "import os\n\ndef f():\n    return os.urandom(4)\n"
    only_imports = check(source, module="repro.core.x", rules={"RPR100"})
    assert rule_ids(only_imports) == set()  # os *is* used; nothing else ran


# ---------------------------------------------------------------------------
# RPR100 unused imports (and the lint.py false-negative regression)


def test_rpr100_flags_unused_import():
    findings = check("import os\nimport sys\n\nprint(sys.argv)\n")
    assert [f for f in findings if f.rule == "RPR100" and "'os'" in f.message]


def test_rpr100_string_constant_no_longer_masks_unused_import():
    # Regression: the old tools/lint.py counted EVERY string constant as
    # a use, so this docstring mention of "os" hid the dead import.
    source = '"""Helpers for os-level work."""\nimport os\n\nX = "os"\n'
    findings = check(source)
    assert [f for f in findings if f.rule == "RPR100" and "'os'" in f.message]


def test_rpr100_dunder_all_still_counts_as_use():
    source = "from repro.core import mapping\n\n__all__ = ['mapping']\n"
    assert "RPR100" not in rule_ids(check(source))


def test_rpr100_string_annotations_count_as_use():
    source = """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from collections import OrderedDict

        def f(x: "OrderedDict") -> "OrderedDict":
            return x
        """
    assert "RPR100" not in rule_ids(check(source))


def test_rpr100_skips_init_files():
    findings = analyze_source("import os\n", path="pkg/__init__.py", module="pkg")
    assert "RPR100" not in rule_ids(findings)


def test_rpr100_applies_outside_src_scopes():
    findings = analyze_source("import json\n", path="tests/helper.py", module=None)
    assert "RPR100" in rule_ids(findings)


# ---------------------------------------------------------------------------
# RPR101 determinism


@pytest.mark.parametrize(
    "call",
    ["time.time()", "os.urandom(8)", "random.random()", "np.random.default_rng()"],
)
def test_rpr101_flags_entropy_sources(call):
    source = f"import time, os, random\nimport numpy as np\n\ndef f():\n    return {call}\n"
    assert "RPR101" in rule_ids(check(source, module="repro.schedulers.custom"))


def test_rpr101_allows_monotonic_clocks_and_threaded_rng():
    source = """\
        import time

        def f(rng):
            start = time.perf_counter()
            deadline = time.monotonic() + 5.0
            return rng.random(), start, deadline
        """
    assert "RPR101" not in rule_ids(check(source, module="repro.search.custom"))


def test_rpr101_flags_min_max_over_set():
    source = "def f(xs):\n    return max({x for x in xs})\n"
    assert "RPR101" in rule_ids(check(source, module="repro.core.custom"))
    source2 = "def f(xs):\n    return min(set(xs))\n"
    assert "RPR101" in rule_ids(check(source2, module="repro.core.custom"))


def test_rpr101_allows_min_max_over_sorted():
    source = "def f(xs):\n    return max(sorted(set(xs)))\n"
    assert "RPR101" not in rule_ids(check(source, module="repro.core.custom"))


# ---------------------------------------------------------------------------
# RPR102 picklability


def test_rpr102_flags_lambda_into_submit():
    source = "def f(executor, m):\n    return executor.submit(lambda: m + 1)\n"
    assert "RPR102" in rule_ids(check(source, module="repro.search.custom"))


def test_rpr102_flags_nested_function_into_submit():
    source = """\
        def f(executor):
            def task():
                return 1
            return executor.submit(task)
        """
    assert "RPR102" in rule_ids(check(source, module="repro.search.custom"))


def test_rpr102_flags_bound_method_into_submit():
    source = """\
        class S:
            def go(self, executor):
                return executor.submit(self.work)
        """
    assert "RPR102" in rule_ids(check(source, module="repro.schedulers.custom"))


def test_rpr102_flags_lambda_searchspec_constraint():
    source = """\
        def f(evaluator, pool):
            return SearchSpec.from_evaluator(evaluator, pool, constraint=lambda m: True)
        """
    assert "RPR102" in rule_ids(check(source, module="repro.schedulers.custom"))


def test_rpr102_allows_module_level_function_and_data_fields():
    source = """\
        def feasible(m):
            return True

        class S:
            def go(self, executor, evaluator, pool):
                spec = SearchSpec.from_evaluator(
                    evaluator, pool, constraint=feasible, use_fast_path=self.use_fast_path
                )
                return executor.submit(feasible), spec
        """
    assert "RPR102" not in rule_ids(check(source, module="repro.search.custom"))


# ---------------------------------------------------------------------------
# RPR103 async-safety


@pytest.mark.parametrize(
    "call",
    ["time.sleep(1)", "subprocess.run(['ls'])", "open('x')", "os.system('ls')"],
)
def test_rpr103_flags_blocking_calls_in_async_def(call):
    source = f"import time, os, subprocess\n\nasync def handler():\n    {call}\n"
    assert "RPR103" in rule_ids(check(source, module="repro.server.custom"))


def test_rpr103_allows_blocking_calls_in_sync_helpers():
    source = "import time\n\ndef poll():\n    time.sleep(0.1)\n"
    assert "RPR103" not in rule_ids(check(source, module="repro.server.custom"))


def test_rpr103_nested_sync_def_resets_async_context():
    source = """\
        import time

        async def handler():
            def blocking_helper():
                time.sleep(0.1)
            return blocking_helper
        """
    assert "RPR103" not in rule_ids(check(source, module="repro.server.custom"))


def test_rpr103_only_applies_to_server_package():
    source = "import time\n\nasync def f():\n    time.sleep(1)\n"
    assert "RPR103" not in rule_ids(check(source, module="repro.experiments.custom"))


# ---------------------------------------------------------------------------
# RPR104 float equality


def test_rpr104_flags_energy_equality():
    source = "def f(a, b):\n    return a.energy == b.energy\n"
    assert "RPR104" in rule_ids(check(source, module="repro.core.custom"))


def test_rpr104_flags_float_literal_comparison():
    source = "def f(predicted_time):\n    return predicted_time == 3.25\n"
    assert "RPR104" in rule_ids(check(source, module="repro.schedulers.custom"))


def test_rpr104_allows_exact_sentinels_and_isclose():
    source = """\
        import math

        def f(noise, delta, cost):
            if noise == 0.0:
                return True
            return math.isclose(delta, cost)
        """
    assert "RPR104" not in rule_ids(check(source, module="repro.core.custom"))


def test_rpr104_ignores_non_float_comparisons():
    source = "def f(name, count):\n    return name == 'lu.S' and count == 3\n"
    assert "RPR104" not in rule_ids(check(source, module="repro.core.custom"))


# ---------------------------------------------------------------------------
# RPR105 API hygiene


def test_rpr105_flags_missing_docstring_on_public_function():
    source = "def schedule(pool):\n    return pool[0]\n"
    assert "RPR105" in rule_ids(check(source, module="repro.core.custom"))


def test_rpr105_allows_private_and_nested_functions():
    source = """\
        def _helper(pool):
            return pool

        def schedule(pool):
            \"\"\"Pick a node.\"\"\"
            def inner():
                return pool[0]
            return inner()
        """
    assert "RPR105" not in rule_ids(check(source, module="repro.core.custom"))


def test_rpr105_flags_mutable_default():
    source = 'def schedule(pool=[]):\n    """Pick."""\n    return pool\n'
    findings = check(source, module="repro.schedulers.custom")
    assert [f for f in findings if f.rule == "RPR105" and "mutable default" in f.message]


def test_rpr105_out_of_scope_module_is_exempt():
    source = "def schedule(pool):\n    return pool[0]\n"
    assert "RPR105" not in rule_ids(check(source, module="repro.monitoring.custom"))


# ---------------------------------------------------------------------------
# RPR106 telemetry hygiene


def test_rpr106_flags_counter_without_total_suffix():
    source = 'registry.counter("cbes_things", help="things seen")\n'
    findings = check(source, module="repro.server.custom")
    assert [f for f in findings if f.rule == "RPR106" and "_total" in f.message]


def test_rpr106_flags_histogram_without_unit_suffix():
    source = 'registry.histogram("cbes_latency", help="latency")\n'
    findings = check(source, module="repro.server.custom")
    assert [f for f in findings if f.rule == "RPR106" and "unit" in f.message]


def test_rpr106_flags_gauge_ending_in_total():
    source = 'registry.gauge("cbes_depth_total", help="queue depth")\n'
    findings = check(source, module="repro.server.custom")
    assert [f for f in findings if f.rule == "RPR106" and "instantaneous" in f.message]


def test_rpr106_flags_non_snake_case_name():
    source = 'registry.counter("cbesRequests_total")\n'
    findings = check(source)
    assert [f for f in findings if f.rule == "RPR106" and "snake_case" in f.message]


def test_rpr106_flags_dynamic_label_values():
    source = """\
        def record(counter, hist, path, jid):
            counter.inc(route=f"/v1/jobs/{jid}")
            hist.observe(0.2, route="/v1/jobs/{}".format(jid))
        """
    findings = [f for f in check(source, module="repro.server.custom") if f.rule == "RPR106"]
    assert len(findings) == 2
    assert all("label" in f.message for f in findings)


def test_rpr106_accepts_conforming_instrumentation():
    source = """\
        def instrument(registry, route):
            requests = registry.counter("cbes_requests_total", labelnames=("route",))
            registry.gauge("cbes_queue_depth", help="jobs waiting")
            seconds = registry.histogram("cbes_request_seconds")
            requests.inc(route=route)
            seconds.observe(0.01, route=route)
        """
    assert "RPR106" not in rule_ids(check(source, module="repro.server.custom"))


def test_rpr106_ignores_dynamic_metric_names_and_unrelated_calls():
    # A name the checker cannot resolve statically is left alone, as are
    # unrelated attribute calls that happen to share a method name.
    source = """\
        def f(registry, options, name):
            registry.counter(name)
            options.set(retries=3)
        """
    assert "RPR106" not in rule_ids(check(source, module="repro.server.custom"))


def test_rpr106_inline_suppression():
    source = 'registry.counter("cbes_things")  # repro: disable=RPR106\n'
    assert "RPR106" not in rule_ids(check(source, module="repro.server.custom"))


# ---------------------------------------------------------------------------
# baseline workflow


def _finding(rule="RPR105", path="src/repro/core/x.py", line=3, msg="m") -> Finding:
    return Finding(path=path, line=line, col=1, rule=rule, message=msg)


def test_baseline_roundtrip_and_matching(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    grandfathered = [_finding(msg="old finding"), _finding(msg="old finding", line=9)]
    write_baseline(grandfathered, baseline_path)
    counts = load_baseline(baseline_path)
    assert counts[grandfathered[0].fingerprint()] == 2

    # Same fingerprints at shifted lines still match; a new finding does not.
    now = [_finding(msg="old finding", line=30), _finding(msg="brand new")]
    report = apply_baseline(now, counts, checked_files=1)
    assert [f.message for f in report.findings] == ["brand new"]
    assert len(report.baselined) == 1
    # Only one of the two allowed counts matched: the leftover is
    # reported stale so the committed count gets shrunk to 1.
    assert report.stale_baseline == [grandfathered[0].fingerprint()]
    assert report.exit_code == 1


def test_baseline_reports_fully_stale_entries(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline([_finding(msg="fixed long ago")], baseline_path)
    report = apply_baseline([], load_baseline(baseline_path))
    assert report.stale_baseline == [_finding(msg="fixed long ago").fingerprint()]
    assert report.exit_code == 0


def test_missing_baseline_is_empty():
    assert load_baseline(None) == {}
    assert load_baseline(Path("/nonexistent/baseline.json")) == {}


def test_baselined_fixture_passes_then_new_violation_fails(tmp_path):
    """The CI contract: baselined findings pass, new determinism ones fail."""
    pkg = tmp_path / "src" / "repro" / "schedulers"
    pkg.mkdir(parents=True)
    bad = pkg / "legacy.py"
    bad.write_text("import time\n\n\ndef jitter():\n    \"\"\"Doc.\"\"\"\n    return time.time()\n")
    findings, checked = analyze_paths([bad], root=tmp_path)
    assert checked == 1 and rule_ids(findings) == {"RPR101"}

    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    clean = apply_baseline(findings, load_baseline(baseline_path))
    assert clean.exit_code == 0

    bad.write_text(bad.read_text() + "\n\ndef more():\n    \"\"\"Doc.\"\"\"\n    return time.time()\n")
    findings2, _ = analyze_paths([bad], root=tmp_path)
    dirty = apply_baseline(findings2, load_baseline(baseline_path))
    assert dirty.exit_code == 1
    assert len(dirty.findings) == 1


# ---------------------------------------------------------------------------
# CLI


def test_cli_text_and_json_formats(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import os\n")
    assert cli_run([str(target), "--no-baseline"]) == 1
    text_out = capsys.readouterr().out
    assert "RPR100" in text_out

    assert cli_run([str(target), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "RPR100"


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text('"""Doc."""\n')
    assert cli_run([str(clean), "--no-baseline"]) == 0
    capsys.readouterr()
    assert cli_run([str(tmp_path / "missing.py")]) == 2
    assert cli_run([str(clean), "--rules", "RPR9999"]) == 2


def test_cli_fix_baseline_then_clean(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import os\n")
    baseline = tmp_path / "baseline.json"
    assert cli_run([str(target), "--baseline", str(baseline), "--fix-baseline"]) == 0
    capsys.readouterr()
    assert cli_run([str(target), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert cli_run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RPR100", "RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106"):
        assert rule in out


# ---------------------------------------------------------------------------
# end-to-end over the repository itself


def test_repo_sources_are_clean_with_committed_baseline():
    """The committed tree passes the suite — the exact gate CI runs."""
    roots = [REPO / r for r in ("src", "tests", "benchmarks", "tools", "examples")]
    findings, checked = analyze_paths([r for r in roots if r.is_dir()], root=REPO)
    baseline = load_baseline(REPO / "tools" / "analysis_baseline.json")
    report = apply_baseline(findings, baseline, checked_files=checked)
    assert checked > 100
    assert report.findings == [], "\n".join(f.format_text() for f in report.findings)
    assert report.stale_baseline == []


def test_module_entry_point_runs_clean():
    """``python -m repro.analysis`` from the repo root exits 0."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--format", "json", "src"],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["summary"]["findings"] == 0


def test_lint_entry_point_runs_clean():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint.py")],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
