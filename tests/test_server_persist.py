"""Daemon-level persistence tests: restart, crash, and the new API knobs.

Two layers:

* in-process :class:`DaemonThread` restarts over a shared ``data_dir``
  (graceful shutdown → results survive; plus the satellite API changes:
  client-supplied ids, 409 on duplicates, recoverable 413, paging);
* the real thing — ``repro serve --data-dir`` in a subprocess killed
  with SIGKILL mid-queue, restarted on the same directory, which must
  re-enqueue and finish the jobs it had accepted.
"""

import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import single_switch
from repro.core import CBES
from repro.server import DaemonThread
from repro.server.client import CbesClient, ServerError
from repro.workloads import SyntheticBenchmark


def make_service() -> tuple[CBES, str]:
    service = CBES(single_switch("mini", 6))
    service.calibrate(seed=2)
    app = SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)
    service.profile_application(app, 3, seed=1)
    return service, app.name


@pytest.fixture(scope="module")
def service_and_app():
    return make_service()


NODES = ["mini-n00", "mini-n01", "mini-n02"]


class TestDurableDaemon:
    def test_results_survive_daemon_restart(self, service_and_app, tmp_path):
        service, app = service_and_app
        data_dir = tmp_path / "data"
        with DaemonThread(service, workers=1, data_dir=data_dir, fsync="never") as srv:
            client = srv.client()
            job_id = client.submit("predict", app=app, nodes=NODES)["id"]
            result = client.wait(job_id, timeout_s=60)["result"]
            health = client.healthz()
            assert health["persistence"]["data_dir"] == str(data_dir)
        # Same directory, new daemon: the finished job is still pollable
        # with an identical result document.
        with DaemonThread(service, workers=1, data_dir=data_dir, fsync="never") as srv:
            client = srv.client()
            job = client.job(job_id)
            assert job["state"] == "done"
            assert job["result"] == result
            assert client.healthz()["persistence"]["recovered_terminal"] == 1
            # Ids minted after recovery never collide with recovered ones.
            fresh = client.submit("predict", app=app, nodes=NODES)["id"]
            assert fresh != job_id
            client.wait(fresh, timeout_s=60)

    def test_client_supplied_id_and_409_on_duplicate(self, service_and_app, tmp_path):
        service, app = service_and_app
        with DaemonThread(service, workers=1, data_dir=tmp_path / "data") as srv:
            client = srv.client()
            job = client.submit("predict", id="fleet-abc123", app=app, nodes=NODES)
            assert job["id"] == "fleet-abc123"
            client.wait("fleet-abc123", timeout_s=60)
            with pytest.raises(ServerError) as err:
                client.submit("predict", id="fleet-abc123", app=app, nodes=NODES)
            assert err.value.status == 409
            assert err.value.code == "duplicate-job"

    def test_oversized_body_413_keeps_connection_alive(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, max_body_bytes=1024) as srv:
            body = b"{" + b" " * 4096 + b"}"
            request = (
                f"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}\r\n"
                f"Content-Type: application/json\r\n\r\n"
            ).encode() + body
            follow_up = b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
                sock.sendall(request)
                first = _read_one_response(sock)
                assert b"413" in first.split(b"\r\n", 1)[0]
                assert b"keep-alive" in first.lower()
                # The same socket must still serve the next request.
                sock.sendall(follow_up)
                second = _read_one_response(sock)
                assert b"200" in second.split(b"\r\n", 1)[0]

    def test_jobs_listing_filters_and_paging(self, service_and_app, tmp_path):
        service, app = service_and_app
        with DaemonThread(service, workers=1, data_dir=tmp_path / "data") as srv:
            client = srv.client()
            ids = [client.submit("predict", app=app, nodes=NODES)["id"] for _ in range(5)]
            for job_id in ids:
                client.wait(job_id, timeout_s=60)
            done = client.jobs(state="done")
            assert [j["id"] for j in done] == ids
            assert client.jobs(state="failed") == []
            page = client.jobs(limit=2)
            assert [j["id"] for j in page] == ids[:2]
            rest = client.jobs(after=ids[1])
            assert [j["id"] for j in rest] == ids[2:]
            combo = client.jobs(state="done", after=ids[0], limit=2)
            assert [j["id"] for j in combo] == ids[1:3]
            with pytest.raises(ServerError) as err:
                client.jobs(after="no-such-job")
            assert err.value.status == 400
            with pytest.raises(ServerError):
                client.jobs(state="bogus")


def _read_one_response(sock: socket.socket) -> bytes:
    """Read exactly one Content-Length-framed HTTP response."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


class TestCrashRecoverySubprocess:
    """SIGKILL a durable daemon mid-queue; the restart must finish its jobs."""

    @pytest.fixture(scope="class")
    def db_dir(self, tmp_path_factory):
        from repro.cli import main

        db = str(tmp_path_factory.mktemp("cbes-crash-db"))
        assert main(["--db", db, "calibrate"]) == 0
        assert main(["--db", db, "profile", "lu.S", "--nprocs", "4"]) == 0
        return db

    def _serve(self, db_dir: str, data_dir: str) -> tuple[subprocess.Popen, int]:
        repo_root = Path(__file__).resolve().parent.parent
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "--db", db_dir,
                "serve", "--port", "0", "--workers", "1", "--log-level", "warning",
                "--data-dir", data_dir, "--fsync", "always",
            ],
            cwd=repo_root,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = proc.stdout.readline()
        assert banner.startswith("serving on http://"), (
            banner,
            proc.stderr.read() if proc.poll() is not None else "",
        )
        return proc, int(banner.rstrip().rsplit(":", 1)[1])

    def test_sigkill_and_recover(self, db_dir, tmp_path):
        data_dir = str(tmp_path / "data")
        proc, port = self._serve(db_dir, data_dir)
        try:
            client = CbesClient("127.0.0.1", port)
            # One job finished before the crash...
            first = client.submit("schedule", app="lu.S", scheduler="cs")["id"]
            finished = client.wait(first, timeout_s=120)
            # ...and several accepted but (with one worker) still queued
            # or just started when the crash hits.
            queued = [
                client.submit("schedule", app="lu.S", scheduler="cs")["id"] for _ in range(3)
            ]
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        proc, port = self._serve(db_dir, data_dir)
        try:
            client = CbesClient("127.0.0.1", port)
            # The pre-crash result came back verbatim.
            job = client.job(first)
            assert job["state"] == "done"
            assert job["result"] == finished["result"]
            # Every accepted job was re-enqueued and runs to completion.
            for job_id in queued:
                done = client.wait(job_id, timeout_s=120)
                assert done["state"] == "done"
            health = client.healthz()
            assert health["persistence"]["recovered_terminal"] >= 1
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
