"""Tests for the service fast path: keep-alive connections and batch jobs.

Covers the daemon side (HTTP/1.1 keep-alive request loop with its
request-count bound and idle timeout, ``POST /v1/jobs:batch`` with
atomic accept/reject) and the client side (pooled connection, transparent
reconnect after the server drops an idle socket).
"""

import socket
import time

import pytest

from repro.cluster import single_switch
from repro.core import CBES
from repro.server import BackpressureError, DaemonThread, ServerError
from repro.workloads import SyntheticBenchmark


def make_service() -> tuple[CBES, str]:
    service = CBES(single_switch("mini", 6))
    service.calibrate(seed=2)
    app = SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)
    service.profile_application(app, 3, seed=1)
    return service, app.name


@pytest.fixture(scope="module")
def service_and_app():
    return make_service()


def metric_value(client, name: str, labels: str = "") -> float:
    """Read one sample off the Prometheus text exposition."""
    needle = f"{name}{labels} " if labels else f"{name} "
    for line in client.metrics_text().splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


def raw_exchange(sock: socket.socket, request: bytes) -> bytes:
    """One request on an already-open socket; reads headers + body."""
    sock.sendall(request)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, body = data.split(b"\r\n\r\n", 1)
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, queue_limit=4) as srv:
            client = srv.client()
            for _ in range(5):
                assert client.healthz()["status"] == "ok"
            # 5 requests, 1 TCP connection, 4 of them keep-alive reuses
            # (the metrics scrape itself rides the same connection).
            assert metric_value(client, "cbes_connections_total") == 1.0
            assert metric_value(client, "cbes_keepalive_requests_total") >= 4.0

    def test_connection_close_header_honored(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, queue_limit=4) as srv:
            with socket.create_connection(("127.0.0.1", srv.port), timeout=10) as sock:
                reply = raw_exchange(
                    sock,
                    b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
                )
                assert b"200 OK" in reply
                assert b"Connection: close" in reply
                sock.settimeout(5)
                assert sock.recv(1) == b""  # server closed after responding

    def test_keepalive_responses_advertise_keepalive(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, queue_limit=4) as srv:
            with socket.create_connection(("127.0.0.1", srv.port), timeout=10) as sock:
                request = b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                first = raw_exchange(sock, request)
                second = raw_exchange(sock, request)
                assert b"Connection: keep-alive" in first
                assert b"200 OK" in second  # same socket, second answer

    def test_max_requests_per_connection(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, queue_limit=4, keepalive_max_requests=2) as srv:
            with socket.create_connection(("127.0.0.1", srv.port), timeout=10) as sock:
                request = b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                first = raw_exchange(sock, request)
                second = raw_exchange(sock, request)
                assert b"Connection: keep-alive" in first
                assert b"Connection: close" in second  # bound reached
                sock.settimeout(5)
                assert sock.recv(1) == b""
            # The pooled client rides through the bound transparently.
            client = srv.client()
            for _ in range(5):
                assert client.healthz()["status"] == "ok"

    def test_client_reconnects_after_idle_drop(self, service_and_app):
        """Satellite: stale pooled sockets retry once, transparently."""
        service, _ = service_and_app
        with DaemonThread(
            service, workers=1, queue_limit=4, keepalive_timeout_s=0.2
        ) as srv:
            client = srv.client()
            assert client.healthz()["status"] == "ok"
            time.sleep(0.6)  # idle timeout reaps the server side
            assert client.healthz()["status"] == "ok"  # transparent retry

    def test_client_keep_alive_off_uses_fresh_connections(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, queue_limit=4) as srv:
            client = srv.client()
            client.keep_alive = False
            for _ in range(3):
                assert client.healthz()["status"] == "ok"
            assert metric_value(client, "cbes_connections_total") >= 3.0


class TestBatchSubmission:
    def test_batch_matches_serial(self, service_and_app):
        service, app_name = service_and_app
        nodes = service.cluster.node_ids()
        docs = [
            {"kind": "predict", "app": app_name, "nodes": [nodes[i], nodes[i + 1], nodes[i + 2]]}
            for i in range(3)
        ]
        with DaemonThread(service, workers=2, queue_limit=16) as srv:
            client = srv.client()
            serial_ids = [client.submit(**doc)["id"] for doc in docs]
            serial = client.wait_many(serial_ids, timeout_s=60.0)

            batch_jobs = client.submit_batch(docs)
            assert len(batch_jobs) == 3
            assert len({job["id"] for job in batch_jobs}) == 3  # per-job ids
            assert all(job["state"] == "queued" for job in batch_jobs)
            batch = client.wait_many([job["id"] for job in batch_jobs], timeout_s=60.0)

            for a, b in zip(serial, batch, strict=True):
                assert a["result"]["execution_time"] == b["result"]["execution_time"]
            assert metric_value(client, "cbes_batch_submissions_total") == 1.0

    def test_invalid_entry_rejects_whole_batch(self, service_and_app):
        service, app_name = service_and_app
        nodes = service.cluster.node_ids()[:3]
        with DaemonThread(service, workers=1, queue_limit=8) as srv:
            client = srv.client()
            with pytest.raises(ServerError) as excinfo:
                client.submit_batch(
                    [
                        {"kind": "predict", "app": app_name, "nodes": nodes},
                        {"kind": "predict", "app": "no-such-app", "nodes": nodes},
                    ]
                )
            assert excinfo.value.status == 400
            assert "jobs[1]" in str(excinfo.value)
            assert client.jobs() == []  # atomic: nothing was queued

    def test_batch_over_capacity_queues_nothing(self, service_and_app):
        service, app_name = service_and_app
        nodes = service.cluster.node_ids()
        docs = [
            {"kind": "predict", "app": app_name, "nodes": [nodes[i], nodes[i + 1], nodes[i + 2]]}
            for i in range(4)
        ]
        release_batch = [
            {"kind": "predict", "app": app_name, "nodes": nodes[:3]},
        ]
        with DaemonThread(service, workers=1, queue_limit=2) as srv:
            client = srv.client()
            with pytest.raises(BackpressureError) as excinfo:
                client.submit_batch(docs)
            assert excinfo.value.retry_after_s > 0
            assert client.jobs() == []  # all-or-nothing
            # A batch that fits still goes through afterwards.
            jobs = client.submit_batch(release_batch)
            assert client.wait(jobs[0]["id"], timeout_s=60.0)["state"] == "done"

    def test_empty_and_malformed_batches(self, service_and_app):
        service, _ = service_and_app
        with DaemonThread(service, workers=1, queue_limit=4) as srv:
            client = srv.client()
            with pytest.raises(ServerError) as excinfo:
                client.submit_batch([])
            assert excinfo.value.status == 400
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/v1/jobs:batch", {"jobs": [1, 2]})
            assert "jobs[0]" in str(excinfo.value)
