"""Tests for the schedulers: moves, SA core, CS/NCS/RS/greedy/GA."""

import pytest

from repro._util import spawn_rng
from repro.core import TaskMapping
from repro.schedulers import (
    AnnealingSchedule,
    CbesScheduler,
    GeneticParams,
    GeneticScheduler,
    GreedyScheduler,
    MoveGenerator,
    NoCommScheduler,
    RandomScheduler,
    anneal,
    random_mapping,
)

POOL = [f"n{i}" for i in range(8)]


class TestMoveGenerator:
    def test_neighbour_preserves_one_per_node(self):
        rng = spawn_rng(1, "mv")
        moves = MoveGenerator(POOL)
        mapping = TaskMapping(POOL[:4])
        for _ in range(100):
            mapping = moves.neighbour(mapping, rng)
            assert mapping.is_one_per_node
            assert set(mapping.nodes_used()) <= set(POOL)

    def test_swap_only_when_pool_exhausted(self):
        rng = spawn_rng(1, "mv")
        moves = MoveGenerator(POOL[:4])
        mapping = TaskMapping(POOL[:4])
        for _ in range(20):
            neighbour = moves.neighbour(mapping, rng)
            assert neighbour.nodes_used() == mapping.nodes_used()  # swaps only

    def test_single_proc_uses_replace(self):
        rng = spawn_rng(1, "mv")
        moves = MoveGenerator(POOL)
        mapping = TaskMapping([POOL[0]])
        seen = {moves.neighbour(mapping, rng).node_of(0) for _ in range(50)}
        assert len(seen) > 1

    def test_degenerate_case_returns_same(self):
        rng = spawn_rng(1, "mv")
        moves = MoveGenerator(["only"])
        mapping = TaskMapping(["only"])
        assert moves.neighbour(mapping, rng) == mapping

    def test_neighbours_count(self):
        rng = spawn_rng(1, "mv")
        moves = MoveGenerator(POOL)
        assert len(moves.neighbours(TaskMapping(POOL[:3]), 7, rng)) == 7

    def test_swap_probability_validation(self):
        with pytest.raises(ValueError):
            MoveGenerator(POOL, swap_probability=1.5)


class TestAnnealCore:
    def energy_of(self, target):
        """Distance-to-target energy over mappings of POOL."""

        def energy(mapping: TaskMapping) -> float:
            return sum(1.0 for a, b in zip(mapping, target, strict=True) if a != b)

        return energy

    def test_finds_global_optimum_on_toy_landscape(self):
        rng = spawn_rng(2, "sa")
        target = tuple(POOL[:4])
        best, energy, _ = anneal(
            self.energy_of(target),
            random_mapping(POOL, 4, rng),
            MoveGenerator(POOL),
            rng,
            schedule=AnnealingSchedule(moves_per_temperature=80, steps=30),
        )
        assert energy == 0.0
        assert best.as_tuple() == target

    def test_maximize_direction(self):
        rng = spawn_rng(4, "sa")
        target = tuple(POOL[:4])
        _, energy, _ = anneal(
            self.energy_of(target),
            TaskMapping(POOL[:4]),
            MoveGenerator(POOL),
            rng,
            direction="maximize",
        )
        assert energy == 4.0  # every position moved off target

    def test_invalid_direction(self):
        rng = spawn_rng(1, "sa")
        with pytest.raises(ValueError):
            anneal(lambda m: 0.0, TaskMapping(POOL[:2]), MoveGenerator(POOL), rng, direction="up")

    def test_feasibility_respected(self):
        rng = spawn_rng(5, "sa")
        must_keep = POOL[0]

        def feasible(m: TaskMapping) -> bool:
            return must_keep in m.nodes_used()

        best, _, _ = anneal(
            lambda m: 1.0,
            TaskMapping(POOL[:3]),
            MoveGenerator(POOL),
            rng,
            feasible=feasible,
        )
        assert must_keep in best.nodes_used()

    def test_history_monotone_nonincreasing(self):
        rng = spawn_rng(6, "sa")
        _, _, history = anneal(
            self.energy_of(tuple(POOL[:4])),
            random_mapping(POOL, 4, rng),
            MoveGenerator(POOL),
            rng,
        )
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:], strict=False))

    def test_schedule_validation(self):
        for bad in (
            dict(moves_per_temperature=0),
            dict(cooling=1.0),
            dict(steps=0),
            dict(initial_acceptance=0.0),
            dict(patience=0),
        ):
            with pytest.raises(ValueError):
                AnnealingSchedule(**bad)


@pytest.fixture(scope="module")
def lu_setup(request):
    """Orange Grove service with LU profiled (module-scoped)."""
    from repro.cluster import orange_grove
    from repro.core import CBES
    from repro.workloads import LU

    cluster = orange_grove()
    service = CBES(cluster)
    service.calibrate(seed=1)
    app = LU("A")
    alphas = cluster.nodes_by_arch("alpha-533")
    service.profile_application(app, 8, mapping=TaskMapping(alphas), seed=0)
    return service, app, alphas


class TestSchedulersOnCbes:
    def test_pool_too_small_rejected(self, lu_setup):
        service, app, alphas = lu_setup
        with pytest.raises(ValueError, match="pool"):
            service.schedule(app.name, RandomScheduler(), alphas[:4])

    def test_rs_negligible_evaluations(self, lu_setup):
        service, app, alphas = lu_setup
        result = service.schedule(app.name, RandomScheduler(), alphas, seed=1)
        assert result.evaluations == 1  # only the reporting prediction
        assert result.scheduler == "RS"

    def test_cs_beats_rs_on_prediction(self, lu_setup):
        service, app, alphas = lu_setup
        cs = service.schedule(app.name, CbesScheduler(), alphas, seed=2)
        rs_times = [
            service.schedule(app.name, RandomScheduler(), alphas, seed=100 + k).predicted_time
            for k in range(5)
        ]
        assert cs.predicted_time <= min(rs_times) + 1e-9

    def test_ncs_ignores_communication(self, lu_setup):
        service, app, alphas = lu_setup
        # On a homogeneous unloaded pool, NCS sees a flat landscape, so
        # its pick is essentially random; CS's full prediction of the
        # NCS pick should (almost always) exceed CS's own.
        cs = service.schedule(app.name, CbesScheduler(), alphas, seed=3)
        ncs = service.schedule(app.name, NoCommScheduler(), alphas, seed=3)
        assert ncs.predicted_time >= cs.predicted_time

    def test_worst_case_direction(self, lu_setup):
        service, app, alphas = lu_setup
        best = service.schedule(app.name, CbesScheduler(), alphas, seed=4)
        worst = service.schedule(
            app.name, CbesScheduler(direction="maximize"), alphas, seed=4
        )
        assert worst.predicted_time > best.predicted_time

    def test_constraint_respected(self, lu_setup):
        service, app, alphas = lu_setup
        intels = service.cluster.nodes_by_arch("pii-400")
        pool = alphas + intels
        arch_of = {n: service.cluster.node(n).arch.name for n in pool}

        def needs_intel(m: TaskMapping) -> bool:
            return any(arch_of[n] == "pii-400" for n in m.nodes_used())

        result = service.schedule(
            app.name, CbesScheduler(constraint=needs_intel), pool, seed=5
        )
        assert needs_intel(result.mapping)

    def test_greedy_prefers_fast_nodes(self, lu_setup):
        service, app, alphas = lu_setup
        pool = alphas + service.cluster.nodes_by_arch("sparc-500")
        result = service.schedule(app.name, GreedyScheduler(), pool, seed=6)
        archs = {service.cluster.node(n).arch.name for n in result.mapping.nodes_used()}
        assert archs == {"alpha-533"}  # never picks the slow SPARCs

    def test_ga_competitive_with_cs(self, lu_setup):
        service, app, alphas = lu_setup
        cs = service.schedule(app.name, CbesScheduler(), alphas, seed=7)
        ga = service.schedule(
            app.name,
            GeneticScheduler(params=GeneticParams(population=24, generations=40)),
            alphas,
            seed=7,
        )
        assert ga.predicted_time <= cs.predicted_time * 1.08

    def test_schedule_result_bookkeeping(self, lu_setup):
        service, app, alphas = lu_setup
        result = service.schedule(app.name, CbesScheduler(), alphas, seed=8)
        assert result.evaluations > 100
        assert result.wall_time_s > 0
        assert result.history  # convergence trajectory recorded

    def test_deterministic_given_seed(self, lu_setup):
        service, app, alphas = lu_setup
        a = service.schedule(app.name, CbesScheduler(), alphas, seed=11)
        b = service.schedule(app.name, CbesScheduler(), alphas, seed=11)
        assert a.mapping == b.mapping
        assert a.predicted_time == b.predicted_time


class TestGeneticInternals:
    def test_params_validation(self):
        for bad in (
            dict(population=1),
            dict(generations=0),
            dict(tournament=1),
            dict(crossover_rate=1.5),
            dict(elite=99),
            dict(patience=0),
        ):
            with pytest.raises(ValueError):
                GeneticParams(**bad)

    def test_crossover_produces_valid_mapping(self):
        rng = spawn_rng(2, "ga")
        a = TaskMapping(POOL[:4])
        b = TaskMapping(POOL[4:8])
        for _ in range(50):
            child = GeneticScheduler._crossover(a, b, POOL, rng)
            assert child.nprocs == 4
            assert child.is_one_per_node
            assert set(child.nodes_used()) <= set(POOL)

    def test_crossover_inherits_genes(self):
        rng = spawn_rng(3, "ga")
        a = TaskMapping(POOL[:4])
        child = GeneticScheduler._crossover(a, a, POOL, rng)
        assert child == a
