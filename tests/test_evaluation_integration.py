"""Evaluator behaviour on the real testbed models (integration-flavoured)."""

import pytest

from repro.core import EvaluationOptions, TaskMapping
from repro.monitoring.snapshot import SystemSnapshot


@pytest.fixture(scope="module")
def evaluator(og_service):
    return og_service.evaluator("lu.A")


@pytest.fixture(scope="module")
def alphas(og_service):
    return og_service.cluster.nodes_by_arch("alpha-533")


class TestPredictionStructure:
    def test_all_ranks_predicted(self, evaluator, alphas):
        pred = evaluator.predict(TaskMapping(alphas))
        assert len(pred.processes) == 8
        assert all(p.computation > 0 for p in pred.processes)
        assert all(p.communication > 0 for p in pred.processes)

    def test_sparc_mapping_slower_than_alpha(self, og_service, evaluator, alphas):
        sparcs = og_service.cluster.nodes_by_arch("sparc-500")
        t_alpha = evaluator.execution_time(TaskMapping(alphas))
        t_sparc = evaluator.execution_time(TaskMapping(sparcs))
        assert t_sparc > 1.3 * t_alpha

    def test_cross_bottleneck_heavy_mapping_costlier(self, og_service, evaluator, alphas):
        """More federation-link crossings -> larger communication term."""
        cluster = og_service.cluster
        side1 = [n for n in alphas if cluster.node(n).switch in ("og-stack", "og-sw02")]
        side2 = [n for n in alphas if cluster.node(n).switch == "og-sw11"]
        assert len(side1) == 6 and len(side2) == 2
        # Grid is 4x2 (row-major): vertical neighbours are +-2 apart.
        # Packed: the two side-2 nodes adjacent in the grid; scattered:
        # they sit far apart so more edges cross the bottleneck.
        packed = TaskMapping(side1[:4] + side2 + side1[4:])
        scattered = TaskMapping([side2[0]] + side1[:4] + [side2[1]] + side1[4:])
        comm_of = lambda m: max(  # noqa: E731
            p.communication for p in evaluator.predict(m).processes
        )
        assert comm_of(packed) != comm_of(scattered)

    def test_mapping_with_repeated_node_costlier(self, evaluator, alphas):
        one_per_node = TaskMapping(alphas)
        doubled = TaskMapping([alphas[0]] * 2 + alphas[1:7])
        assert evaluator.execution_time(doubled) > evaluator.execution_time(one_per_node)


class TestOptionMonotonicity:
    def test_communication_term_only_adds(self, evaluator, alphas):
        m = TaskMapping(alphas)
        full = evaluator.execution_time(m)
        compute_only = evaluator.execution_time(
            m, options=EvaluationOptions(communication=False)
        )
        assert compute_only < full

    def test_load_adjustment_only_adds_under_load(self, og_service, alphas):
        snap = SystemSnapshot.unloaded(
            og_service.cluster.node_ids(),
            {nid: n.ncpus for nid, n in og_service.cluster.nodes.items()},
        ).with_load(alphas[0], 0.5, 0.4)
        ev = og_service.evaluator("lu.A", snapshot=snap)
        m = TaskMapping(alphas)
        adjusted = ev.execution_time(m)
        unadjusted = ev.execution_time(
            m, options=EvaluationOptions(load_adjusted_latency=False)
        )
        assert adjusted >= unadjusted

    def test_snapshot_load_raises_prediction_monotonically(self, og_service, alphas):
        m = TaskMapping(alphas)
        base = SystemSnapshot.unloaded(
            og_service.cluster.node_ids(),
            {nid: n.ncpus for nid, n in og_service.cluster.nodes.items()},
        )
        previous = 0.0
        for load in (0.0, 0.2, 0.5, 1.0):
            snap = base.with_load(alphas[0], load)
            value = og_service.evaluator("lu.A", snapshot=snap).execution_time(m)
            assert value >= previous
            previous = value


class TestPredictionTracksSimulation:
    def test_rank_correlation_over_mappings(self, og_service, alphas, lu_app):
        """Predicted vs measured ordering agrees on alpha permutations."""
        from repro._util import spawn_rng

        rng = spawn_rng(17, "eval-int")
        ev = og_service.evaluator("lu.A")
        program = lu_app.program(8)
        pairs = []
        for k in range(8):
            perm = rng.permutation(8)
            mapping = TaskMapping([alphas[int(i)] for i in perm])
            predicted = ev.execution_time(mapping)
            measured = og_service.simulator.run(
                program, mapping.as_dict(), seed=700 + k,
                arch_affinity=lu_app.arch_affinity, collect_trace=False,
            ).total_time
            pairs.append((predicted, measured))
        # Count concordant pairs (Kendall-style agreement).
        concordant = discordant = 0
        for i in range(len(pairs)):
            for j in range(i + 1, len(pairs)):
                dp = pairs[i][0] - pairs[j][0]
                dm = pairs[i][1] - pairs[j][1]
                if dp * dm > 0:
                    concordant += 1
                elif dp * dm < 0:
                    discordant += 1
        assert concordant > discordant
