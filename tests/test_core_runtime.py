"""Tests for runtime application monitoring and per-segment scheduling."""

import pytest

from repro.cluster import orange_grove
from repro.core import (
    CBES,
    CbesError,
    RemapAdvisor,
    RemapCostModel,
    RemapTrigger,
    RuntimeScheduler,
    SegmentScheduler,
    TaskMapping,
)
from repro.monitoring.load import LoadEvent, LoadGenerator
from repro.schedulers import AnnealingSchedule, CbesScheduler
from repro.workloads import LU, PhasedApplication

FAST_SA = AnnealingSchedule(moves_per_temperature=20, steps=12, patience=4)


@pytest.fixture(scope="module")
def setup():
    cluster = orange_grove()
    service = CBES(cluster)
    service.calibrate(seed=1)
    app = LU("A")
    service.profile_application(
        app, 8, mapping=TaskMapping(cluster.nodes_by_arch("alpha-533")), seed=0
    )
    return cluster, service, app


def make_runtime(service, pool, **kwargs):
    return RuntimeScheduler(
        service,
        CbesScheduler(schedule=FAST_SA, restarts=1),
        pool=pool,
        advisor=RemapAdvisor(RemapCostModel(fixed_s=0.5, per_task_s=0.2)),
        **kwargs,
    )


class TestRunningApplication:
    def test_progress_accumulates_and_caps(self, setup):
        cluster, service, app = setup
        runtime = make_runtime(service, cluster.nodes_by_arch("alpha-533"))
        running = runtime.launch(app.name, seed=1)
        running.advance(0.6)
        running.advance(0.6)
        assert running.progress == 1.0
        assert running.finished

    def test_advance_validation(self, setup):
        cluster, service, app = setup
        runtime = make_runtime(service, cluster.nodes_by_arch("alpha-533"))
        running = runtime.launch(app.name, seed=1)
        with pytest.raises(ValueError):
            running.advance(-0.1)

    def test_unknown_app_rejected(self, setup):
        cluster, service, _ = setup
        runtime = make_runtime(service, cluster.nodes_by_arch("alpha-533"))
        with pytest.raises(CbesError):
            runtime.running("ghost")


class TestRemapTriggers:
    def test_no_trigger_on_stable_system(self, setup):
        cluster, service, app = setup
        runtime = make_runtime(service, cluster.nodes_by_arch("alpha-533"))
        runtime.launch(app.name, seed=2)
        assert runtime.check(app.name, seed=3) is None

    def test_external_trigger_on_load(self, setup):
        cluster, service, app = setup
        pool = cluster.nodes_by_arch("alpha-533") + cluster.nodes_by_arch("pii-400")
        runtime = make_runtime(service, pool)
        running = runtime.launch(app.name, seed=4)
        running.advance(0.3)
        victim = running.mapping.node_of(0)
        generator = LoadGenerator(cluster)
        with generator.loaded([LoadEvent(victim, cpu_load=1.5)]):
            decision = runtime.check(app.name, seed=5)
        assert decision is not None
        assert decision.remap
        assert running.remap_count == 1
        assert victim not in running.mapping.nodes_used()

    def test_no_remap_when_nearly_done(self, setup):
        cluster, service, app = setup
        pool = cluster.nodes_by_arch("alpha-533") + cluster.nodes_by_arch("pii-400")
        runtime = make_runtime(service, pool)
        running = runtime.launch(app.name, seed=6)
        running.advance(0.995)
        victim = running.mapping.node_of(0)
        generator = LoadGenerator(cluster)
        with generator.loaded([LoadEvent(victim, cpu_load=1.5)]):
            decision = runtime.check(app.name, seed=7)
        assert decision is not None
        assert not decision.remap  # migration cost outweighs the tail

    def test_finished_app_never_checked(self, setup):
        cluster, service, app = setup
        runtime = make_runtime(service, cluster.nodes_by_arch("alpha-533"))
        running = runtime.launch(app.name, seed=8)
        running.advance(1.0)
        assert runtime.check(app.name) is None

    def test_trigger_thresholds_validated(self):
        with pytest.raises(ValueError):
            RemapTrigger(prediction_drift=0.0)
        with pytest.raises(ValueError):
            RemapTrigger(behaviour_drift=-1.0)

    def test_internal_trigger_on_segment_change(self, setup):
        cluster, service, _ = setup
        app = PhasedApplication()
        service.profile_application(
            app, 8, mapping=TaskMapping(cluster.nodes_by_arch("alpha-533")),
            seed=0, per_segment=True,
        )
        profile = service.profile(app.name)
        trigger = RemapTrigger(behaviour_drift=0.5)
        fired = [seg for seg in profile.segments if trigger.internal(profile, seg)]
        # The comm-heavy setup and the compute-only solve both deviate
        # from the whole-run mix.
        assert fired


class TestSegmentScheduler:
    @pytest.fixture(scope="class")
    def seg_setup(self):
        cluster = orange_grove()
        service = CBES(cluster)
        service.calibrate(seed=1)
        app = PhasedApplication()
        service.profile_application(
            app, 8, mapping=TaskMapping(cluster.nodes_by_arch("alpha-533")),
            seed=0, per_segment=True,
        )
        pool = cluster.nodes_by_arch("alpha-533") + cluster.nodes_by_arch("pii-400")
        return service, app, SegmentScheduler(
            service, CbesScheduler(schedule=FAST_SA, restarts=1), pool=pool
        )

    def test_schedules_every_segment(self, seg_setup):
        service, app, scheduler = seg_setup
        plans = scheduler.schedule_all(app.name, seed=1)
        assert set(plans) == set(service.profile(app.name).segments)
        for plan in plans.values():
            assert plan.predicted_time > 0
            assert plan.mapping.nprocs == 8

    def test_plans_cached(self, seg_setup):
        _, app, scheduler = seg_setup
        a = scheduler.schedule_segment(app.name, 0, seed=1)
        b = scheduler.schedule_segment(app.name, 0, seed=999)
        assert a is b

    def test_missing_segment_rejected(self, seg_setup):
        _, app, scheduler = seg_setup
        with pytest.raises(CbesError):
            scheduler.schedule_segment(app.name, 99)

    def test_unsegmented_profile_rejected(self, setup, seg_setup):
        _, service, app = setup
        _, _, scheduler_other = seg_setup
        scheduler = SegmentScheduler(
            service, CbesScheduler(schedule=FAST_SA, restarts=1),
            pool=service.cluster.nodes_by_arch("alpha-533"),
        )
        with pytest.raises(CbesError):
            scheduler.schedule_all(app.name)

    def test_amortization_accounting(self, seg_setup):
        _, app, scheduler = seg_setup
        plan = scheduler.schedule_segment(app.name, 2, seed=1)
        assert plan.amortized_overhead(100) == pytest.approx(plan.scheduler_time_s / 100)
        with pytest.raises(ValueError):
            plan.amortized_overhead(0)
        # A segment repeated many times pays for its scheduling as long
        # as the per-repetition gain is positive.
        assert plan.worthwhile(10_000, baseline_time=plan.predicted_time * 1.05)
        assert not plan.worthwhile(1, baseline_time=plan.predicted_time * 1.0001)
