"""Tests for the discrete-event execution engine."""

import pytest

from repro.profiling import TimeCategory
from repro.simulate import (
    ClusterSimulator,
    Compute,
    Exchange,
    Marker,
    Program,
    Recv,
    Send,
    SendRecv,
    SimulationConfig,
    SimulationDeadlock,
)
from tests.conftest import make_tiny_cluster

EXACT = SimulationConfig(jitter=0.0, contention=False)


@pytest.fixture
def cluster():
    c = make_tiny_cluster(4)
    c.use_exact_latency_model()
    return c


@pytest.fixture
def sim(cluster):
    return ClusterSimulator(cluster, EXACT)


def mapping(cluster, n):
    ids = cluster.node_ids()[:n]
    return {r: ids[r] for r in range(n)}


class TestConfig:
    def test_validation(self):
        for bad in (
            dict(jitter=-0.1),
            dict(mpi_overhead_s=-1.0),
            dict(eager_threshold_bytes=-1.0),
            dict(contention_gamma=-0.5),
        ):
            with pytest.raises(ValueError):
                SimulationConfig(**bad)


class TestComputeOnly:
    def test_duration_is_work_over_speed(self, cluster, sim):
        prog = Program("p", 1, [[Compute(2.0)]])
        node = cluster.node_ids()[0]
        res = sim.run(prog, {0: node})
        assert res.total_time == pytest.approx(2.0 / cluster.node(node).arch.base_speed)

    def test_affinity_scales_speed(self, cluster, sim):
        prog = Program("p", 1, [[Compute(2.0)]])
        node = cluster.node_ids()[0]
        base = sim.run(prog, {0: node}).total_time
        fast = sim.run(prog, {0: node}, arch_affinity=lambda a: 2.0).total_time
        assert fast == pytest.approx(base / 2.0)

    def test_background_load_slows(self, cluster):
        sim = ClusterSimulator(cluster, EXACT)
        prog = Program("p", 1, [[Compute(1.0)]])
        node = cluster.node_ids()[0]
        idle = sim.run(prog, {0: node}).total_time
        cluster.node(node).set_background_load(1.0)
        loaded = sim.run(prog, {0: node}).total_time
        assert loaded == pytest.approx(2.0 * idle)

    def test_co_mapped_procs_timeshare(self, cluster, sim):
        prog = Program("p", 2, [[Compute(1.0)], [Compute(1.0)]])
        node = cluster.node_ids()[0]
        res = sim.run(prog, {0: node, 1: node})
        solo = sim.run(Program("p", 1, [[Compute(1.0)]]), {0: node})
        assert res.total_time == pytest.approx(2.0 * solo.total_time)

    def test_jitter_varies_per_seed(self, cluster):
        sim = ClusterSimulator(cluster, SimulationConfig(jitter=0.05, contention=False))
        prog = Program("p", 1, [[Compute(1.0)]])
        node = cluster.node_ids()[0]
        t1 = sim.run(prog, {0: node}, seed=1).total_time
        t2 = sim.run(prog, {0: node}, seed=2).total_time
        assert t1 != t2

    def test_deterministic_per_seed(self, cluster):
        sim = ClusterSimulator(cluster, SimulationConfig(jitter=0.05))
        prog = Program("p", 2, [[Compute(1.0), Send(1, 1000)], [Recv(0, 1000)]])
        m = mapping(cluster, 2)
        assert sim.run(prog, m, seed=9).total_time == sim.run(prog, m, seed=9).total_time


class TestPointToPoint:
    def test_rendezvous_blocks_sender_until_delivery(self, cluster, sim):
        big = 10e6  # above eager threshold
        prog = Program("p", 2, [[Send(1, big)], [Compute(1.0), Recv(0, big)]])
        m = mapping(cluster, 2)
        res = sim.run(prog, m)
        # The sender can only finish after the receiver's compute plus
        # the transfer; both ranks end together.
        lat = cluster.latency_model.no_load(m[0], m[1], big)
        compute = 1.0 / cluster.node(m[1]).arch.base_speed
        assert res.rank_end_times[0] == pytest.approx(compute + lat, rel=1e-3)

    def test_eager_sender_does_not_wait_for_receiver(self, cluster, sim):
        small = 1000.0
        prog = Program("p", 2, [[Send(1, small)], [Compute(1.0), Recv(0, small)]])
        m = mapping(cluster, 2)
        res = sim.run(prog, m)
        compute = 1.0 / cluster.node(m[1]).arch.base_speed
        # Sender finishes long before the receiver even posts.
        assert res.rank_end_times[0] < 0.01
        assert res.rank_end_times[1] == pytest.approx(compute, rel=0.01)

    def test_eager_receiver_waits_for_arrival(self, cluster, sim):
        small = 1000.0
        prog = Program("p", 2, [[Compute(1.0), Send(1, small)], [Recv(0, small)]])
        m = mapping(cluster, 2)
        res = sim.run(prog, m)
        lat = cluster.latency_model.no_load(m[0], m[1], small)
        compute = 1.0 / cluster.node(m[0]).arch.base_speed
        assert res.rank_end_times[1] == pytest.approx(compute + lat, rel=0.05)

    def test_exchange_overlaps_directions(self, cluster, sim):
        size = 1e6  # rendezvous either way
        ex = Program("p", 2, [[Exchange(1, size, size)], [Exchange(0, size, size)]])
        serial = Program(
            "p", 2, [[Send(1, size), Recv(1, size)], [Recv(0, size), Send(0, size)]]
        )
        m = mapping(cluster, 2)
        t_ex = sim.run(ex, m).total_time
        t_serial = sim.run(serial, m).total_time
        assert t_ex < t_serial * 0.75

    def test_sendrecv_ring_no_deadlock(self, cluster, sim):
        prog = Program("p", 4)
        for r in range(4):
            prog.ops[r].append(SendRecv((r + 1) % 4, 5e5, (r - 1) % 4, 5e5))
        res = sim.run(prog, mapping(cluster, 4))
        assert res.messages_delivered == 4

    def test_message_order_preserved_per_channel(self, cluster, sim):
        # Two eager sends to the same peer match its recvs in order.
        prog = Program(
            "p", 2, [[Send(1, 100), Send(1, 200)], [Recv(0, 100), Recv(0, 200)]]
        )
        res = sim.run(prog, mapping(cluster, 2))
        sizes = [m.size_bytes for m in res.trace.messages]
        assert sizes == [100, 200]


class TestDeadlocks:
    def test_facing_rendezvous_sends_deadlock(self, cluster, sim):
        big = 1e6
        prog = Program("p", 2, [[Send(1, big), Recv(1, big)], [Send(0, big), Recv(0, big)]])
        with pytest.raises(SimulationDeadlock):
            sim.run(prog, mapping(cluster, 2))

    def test_facing_eager_sends_complete(self, cluster, sim):
        small = 100.0
        prog = Program(
            "p", 2, [[Send(1, small), Recv(1, small)], [Send(0, small), Recv(0, small)]]
        )
        res = sim.run(prog, mapping(cluster, 2))  # eager protocol saves it
        assert res.messages_delivered == 2

    def test_missing_sender_reported(self, cluster, sim):
        prog = Program("p", 2, [[], [Recv(0, 10)]])
        with pytest.raises(ValueError, match="unbalanced"):
            sim.run(prog, mapping(cluster, 2))


class TestValidationErrors:
    def test_incomplete_mapping(self, cluster, sim):
        prog = Program("p", 2, [[Compute(1.0)], [Compute(1.0)]])
        with pytest.raises(ValueError):
            sim.run(prog, {0: cluster.node_ids()[0]})

    def test_unknown_node(self, cluster, sim):
        prog = Program("p", 1, [[Compute(1.0)]])
        with pytest.raises(KeyError):
            sim.run(prog, {0: "ghost"})


class TestTraceAccounting:
    def test_categories_complete(self, cluster, sim):
        prog = Program(
            "p",
            2,
            [[Compute(0.5), Send(1, 1e6), Marker("end")], [Recv(0, 1e6), Compute(0.2)]],
        )
        res = sim.run(prog, mapping(cluster, 2))
        trace = res.trace
        for rank in range(2):
            total = sum(
                trace.time_in(rank, cat)
                for cat in (TimeCategory.OWN_CODE, TimeCategory.MPI_OVERHEAD, TimeCategory.BLOCKED)
            )
            # Accounted time never exceeds the rank's elapsed time.
            assert total <= res.rank_end_times[rank] + 1e-9

    def test_marker_advances_segment(self, cluster, sim):
        prog = Program("p", 1, [[Compute(0.1), Marker("phase2"), Compute(0.2)]])
        res = sim.run(prog, {0: cluster.node_ids()[0]})
        assert res.trace.segments == [0, 1]
        assert len(res.trace.markers) == 1

    def test_collect_trace_false(self, cluster, sim):
        prog = Program("p", 1, [[Compute(0.1)]])
        res = sim.run(prog, {0: cluster.node_ids()[0]}, collect_trace=False)
        assert res.trace is None
        assert res.total_time > 0

    def test_total_is_max_rank_time(self, cluster, sim):
        prog = Program("p", 2, [[Compute(2.0)], [Compute(0.1)]])
        res = sim.run(prog, mapping(cluster, 2))
        assert res.total_time == max(res.rank_end_times)


class TestContention:
    def test_shared_link_inflates_latency(self):
        cluster = make_tiny_cluster(6, two_switches=True)
        cluster.use_exact_latency_model()
        # Three simultaneous cross-switch rendezvous transfers.
        prog = Program("p", 6)
        size = 2e6
        for a, b in ((0, 1), (2, 3), (4, 5)):
            prog.ops[a].append(Send(b, size))
            prog.ops[b].append(Recv(a, size))
        ids = cluster.node_ids()
        # n00,n02,n04 on sw0; n01,n03,n05 on sw1 -> all cross the uplink.
        m = {r: ids[r] for r in range(6)}
        quiet = ClusterSimulator(cluster, SimulationConfig(jitter=0.0, contention=False))
        busy = ClusterSimulator(
            cluster, SimulationConfig(jitter=0.0, contention=True, contention_gamma=1.0)
        )
        assert busy.run(prog, m).total_time > quiet.run(prog, m).total_time

    def test_effective_speed_helper(self, cluster, sim):
        node = cluster.node_ids()[0]
        assert sim.effective_speed(node) == cluster.node(node).arch.base_speed
        assert sim.effective_speed(node, mapped_procs=2) == pytest.approx(
            cluster.node(node).arch.base_speed / 2
        )
