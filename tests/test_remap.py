"""Tests for the online-remapping subsystem (``repro.remap``).

Covers the three pieces and their composition: the topology-aware
migration cost model (scalar reference vs vectorized fast-eval diff
path), the hysteresis/cooldown drift watcher, the warm-started
remapper (including decision determinism across search parallelism),
and the closed-loop simulation experiment.
"""

import math

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.monitoring.load import LoadEvent, LoadGenerator
from repro.remap import DriftWatcher, MigrationCostModel, Remapper
from repro.simulate.closedloop import LoadPhase, run_closed_loop
from repro.workloads import LU, SyntheticBenchmark


NNODES = 8
NPROCS = 4


def make_service(duration_s: float = 120.0):
    """A calibrated 8-node service with one profiled synthetic app."""
    service = CBES(single_switch("rm", NNODES))
    service.calibrate(seed=2)
    app = SyntheticBenchmark(comm_fraction=0.25, duration_s=duration_s, steps=4)
    service.profile_application(app, NPROCS, seed=1)
    return service, app


@pytest.fixture(scope="module")
def service_and_app():
    return make_service()


@pytest.fixture(scope="module")
def profiled(service_and_app):
    service, app = service_and_app
    return service.profile(app.name)


class TestMigrationCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationCostModel(quiesce_s=-1.0)
        with pytest.raises(ValueError):
            MigrationCostModel(checkpoint_base_bytes=-1.0)
        with pytest.raises(ValueError):
            MigrationCostModel(checkpoint_traffic_fraction=-0.1)

    def test_checkpoint_bytes_track_profiled_traffic(self, profiled):
        model = MigrationCostModel(
            checkpoint_base_bytes=1024.0, checkpoint_traffic_fraction=0.5
        )
        sizes = model.checkpoint_bytes(profiled)
        assert len(sizes) == NPROCS
        for size, proc in zip(sizes, profiled.processes, strict=True):
            assert size == 1024.0 + 0.5 * proc.bytes_sent

    def test_zero_move_candidate_costs_exactly_zero(self, service_and_app, profiled):
        """The no-diff plan is free: no fixed cost, no transfers."""
        service, app = service_and_app
        evaluator = service.evaluator(app.name)
        mapping = TaskMapping(service.cluster.node_ids()[:NPROCS])
        model = MigrationCostModel()
        moves = model.moves(profiled, evaluator.latency_model, mapping, mapping)
        assert moves == ()
        assert model.total_cost(moves) == 0.0

    def test_all_ranks_move_charges_every_rank(self, service_and_app, profiled):
        service, app = service_and_app
        evaluator = service.evaluator(app.name)
        nodes = service.cluster.node_ids()
        current = TaskMapping(nodes[:NPROCS])
        candidate = TaskMapping(nodes[NPROCS : 2 * NPROCS])  # disjoint: all move
        model = MigrationCostModel()
        moves = model.moves(
            profiled, evaluator.latency_model, current, candidate,
            snapshot=evaluator.snapshot,
        )
        assert [m.rank for m in moves] == list(range(NPROCS))
        assert all(m.seconds > 0.0 for m in moves)
        total = model.total_cost(moves)
        assert total > model.fixed_s
        assert total == pytest.approx(model.fixed_s + sum(m.seconds for m in moves))

    def test_mismatched_mappings_rejected(self, service_and_app, profiled):
        service, app = service_and_app
        evaluator = service.evaluator(app.name)
        nodes = service.cluster.node_ids()
        with pytest.raises(ValueError):
            MigrationCostModel().moves(
                profiled,
                evaluator.latency_model,
                TaskMapping(nodes[:NPROCS]),
                TaskMapping(nodes[: NPROCS - 1]),
            )

    @pytest.mark.parametrize("load_adjusted", [True, False])
    def test_vectorized_diff_matches_scalar_reference(self, load_adjusted):
        """The fast-eval diff path reproduces per-move costs to 1e-9."""
        service, app = make_service()
        generator = LoadGenerator(service.cluster)
        nodes = service.cluster.node_ids()
        events = [
            LoadEvent(nodes[0], cpu_load=1.5, nic_load=0.3),
            LoadEvent(nodes[5], cpu_load=0.5),
        ]
        with generator.loaded(events):
            evaluator = service.evaluator(app.name)
            context = evaluator.fast_context(evaluator.options)
            model = MigrationCostModel(load_adjusted=load_adjusted)
            current = TaskMapping(nodes[:NPROCS])
            candidate = TaskMapping([nodes[5], nodes[1], nodes[6], nodes[7]])
            scalar = model.moves(
                service.profile(app.name),
                evaluator.latency_model,
                current,
                candidate,
                snapshot=evaluator.snapshot,
            )
            vector = model.moves_from_context(context, current, candidate)
        assert len(scalar) == len(vector) == 3  # rank 1 stays on nodes[1]
        for s, v in zip(scalar, vector, strict=True):
            assert (s.rank, s.source, s.destination) == (v.rank, v.source, v.destination)
            assert s.checkpoint_bytes == v.checkpoint_bytes
            # Float association differs (precomputed beta/(1-nic) slope
            # vs the scalar division), so bit-equality is not expected.
            assert math.isclose(s.seconds, v.seconds, rel_tol=1e-9)


class TestDriftWatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftWatcher(threshold=0.0)
        with pytest.raises(ValueError):
            DriftWatcher(hysteresis=1.5)
        with pytest.raises(ValueError):
            DriftWatcher(cooldown_s=-1.0)

    def test_flat_series_never_fires(self):
        watcher = DriftWatcher(threshold=0.10)
        for tick in range(50):
            assert watcher.observe(float(tick), 100.0, 100.0) is None
        assert watcher.events == 0
        assert watcher.armed

    def test_fires_once_then_rearms_below_low_water_mark(self):
        watcher = DriftWatcher(threshold=0.10, hysteresis=0.5)
        event = watcher.observe(1.0, 120.0, 100.0)  # +20% drift
        assert event is not None
        assert event.degradation == pytest.approx(0.20)
        # Still degraded: disarmed, no refire.
        assert watcher.observe(2.0, 125.0, 100.0) is None
        # Receded, but above threshold * hysteresis: still disarmed.
        assert watcher.observe(3.0, 108.0, 100.0) is None
        assert watcher.observe(4.0, 120.0, 100.0) is None
        # Below the low-water mark (5%): re-arm, then fire again.
        assert watcher.observe(5.0, 104.0, 100.0) is None
        assert watcher.observe(6.0, 120.0, 100.0) is not None
        assert watcher.events == 2

    def test_cooldown_suppresses_back_to_back_firings(self):
        watcher = DriftWatcher(threshold=0.10, hysteresis=0.5, cooldown_s=10.0)
        assert watcher.observe(1.0, 120.0, 100.0) is not None
        # Recede (re-arm) then cross again within the cooldown window.
        assert watcher.observe(2.0, 100.0, 100.0) is None
        assert watcher.observe(3.0, 130.0, 100.0) is None  # suppressed
        assert watcher.armed  # suppression does not consume the arm
        # Past the cooldown the same signal fires.
        assert watcher.observe(12.0, 130.0, 100.0) is not None
        assert watcher.events == 2

    def test_rebase_restarts_cooldown_and_history(self):
        watcher = DriftWatcher(threshold=0.10, cooldown_s=5.0)
        assert watcher.observe(1.0, 150.0, 100.0) is not None
        watcher.rebase(2.0)
        assert watcher.armed
        # Inside the post-remap cooldown: suppressed despite huge drift.
        assert watcher.observe(4.0, 200.0, 100.0) is None
        assert watcher.observe(8.0, 200.0, 100.0) is not None

    def test_invalid_observations_rejected(self):
        watcher = DriftWatcher()
        with pytest.raises(ValueError):
            watcher.observe(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            watcher.observe(0.0, -1.0, 10.0)


class TestRemapper:
    def test_stays_put_without_drift(self, service_and_app):
        """On an unloaded cluster the incumbent is (near) optimal: stay."""
        service, app = service_and_app
        evaluator = service.evaluator(app.name)
        current = TaskMapping(service.cluster.node_ids()[:NPROCS])
        plan = Remapper(restarts=2, seed_scan=4).propose(evaluator, current, seed=3)
        assert plan.remap is False
        assert plan.current == current

    def test_remaps_off_loaded_nodes_deterministically(self):
        """Load the mapped nodes; the plan escapes them, and the decision
        is byte-identical across search parallelism."""
        service, app = make_service()
        nodes = service.cluster.node_ids()
        current = TaskMapping(nodes[:NPROCS])
        generator = LoadGenerator(service.cluster)
        events = [LoadEvent(n, cpu_load=1.5) for n in nodes[:NPROCS]]
        with generator.loaded(events):
            evaluator = service.evaluator(app.name)
            plans = [
                Remapper(restarts=2, seed_scan=4, parallel=parallel).propose(
                    evaluator, current, seed=11
                )
                for parallel in (1, 2)
            ]
        serial, parallel = plans
        assert serial.to_dict() == parallel.to_dict()
        assert serial.remap is True
        loaded = set(nodes[:NPROCS])
        assert not loaded & set(serial.candidate.as_tuple())
        assert serial.savings_s > serial.migration_cost_s * serial.safety_factor
        assert serial.migration_cost_s > 0.0
        assert serial.evaluations > 0

    def test_bad_inputs_rejected(self, service_and_app):
        service, app = service_and_app
        evaluator = service.evaluator(app.name)
        current = TaskMapping(service.cluster.node_ids()[:NPROCS])
        remapper = Remapper()
        with pytest.raises(ValueError):
            remapper.propose(evaluator, current, fraction_remaining=0.0)
        with pytest.raises(ValueError):
            remapper.propose(evaluator, current, pool=[])
        with pytest.raises(ValueError):
            Remapper(safety_factor=0.0)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def lu_service(self):
        service = CBES(single_switch("loop", NNODES))
        service.calibrate(seed=7)
        app = LU("A")
        service.profile_application(app, NPROCS, seed=3)
        return service, app

    def test_remap_beats_stay_under_drift(self, lu_service):
        service, app = lu_service
        nodes = service.cluster.node_ids()
        scenario = [
            LoadPhase(
                at_fraction=0.25,
                events=tuple(LoadEvent(n, cpu_load=1.5) for n in nodes[:NPROCS]),
            )
        ]
        stay = run_closed_loop(
            service, app, NPROCS, scenario=scenario, phases=6, policy="stay", seed=0
        )
        remap = run_closed_loop(
            service, app, NPROCS, scenario=scenario, phases=6, policy="remap", seed=0
        )
        assert remap.remaps == 1  # one switch, no thrash after rebase
        assert remap.drift_events >= 1
        assert remap.migration_s > 0.0
        assert remap.makespan_s < stay.makespan_s
        assert remap.makespan_s == pytest.approx(
            remap.compute_s + remap.migration_s
        )
        assert set(remap.final_mapping.as_tuple()).isdisjoint(nodes[:NPROCS])
        # Injected loads are restored even though the run remapped.
        assert all(service.cluster.node(n).background_load == 0.0 for n in nodes)

    def test_steady_scenario_never_remaps(self, lu_service):
        service, app = lu_service
        steady = run_closed_loop(
            service, app, NPROCS, scenario=(), phases=6, policy="remap", seed=0
        )
        assert steady.remaps == 0
        assert steady.drift_events == 0
        assert steady.decisions == ()
        assert steady.migration_s == 0.0

    def test_cooldown_rides_out_late_second_injection(self, lu_service):
        """A second drift inside the watcher cooldown is ridden out: the
        run still remaps exactly once (in-flight work is never preempted
        by a new event — ticks are strictly sequential)."""
        service, app = lu_service
        nodes = service.cluster.node_ids()
        scenario = [
            LoadPhase(
                at_fraction=0.2,
                events=tuple(LoadEvent(n, cpu_load=1.5) for n in nodes[:NPROCS]),
            ),
            LoadPhase(
                at_fraction=0.7,
                events=tuple(
                    LoadEvent(n, cpu_load=0.8) for n in nodes[NPROCS : 2 * NPROCS]
                ),
            ),
        ]
        result = run_closed_loop(
            service,
            app,
            NPROCS,
            scenario=scenario,
            phases=6,
            policy="remap",
            watcher=DriftWatcher(threshold=0.10, cooldown_s=1e9),
            seed=0,
        )
        assert result.drift_events == 1
        assert result.remaps == 1
        assert all(service.cluster.node(n).background_load == 0.0 for n in nodes)

    def test_invalid_arguments_rejected(self, lu_service):
        service, app = lu_service
        with pytest.raises(ValueError):
            run_closed_loop(service, app, NPROCS, policy="flip-flop")
        with pytest.raises(ValueError):
            run_closed_loop(service, app, NPROCS, phases=0)
        with pytest.raises(ValueError):
            LoadPhase(at_fraction=1.0, events=())
