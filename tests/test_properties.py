"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import spawn_rng, stable_hash
from repro.cluster.latency import PathComponents
from repro.core import TaskMapping
from repro.monitoring.forecasting import make_forecaster
from repro.profiling.profile import ApplicationProfile, MessageGroup, ProcessProfile, theta
from repro.schedulers.moves import MoveGenerator
from repro.simulate.contention import cpu_share
from repro.workloads.patterns import ProgramBuilder, grid_dims

node_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
)


class TestMappingProperties:
    @given(st.lists(node_names, min_size=1, max_size=12))
    def test_roundtrip_dict(self, nodes):
        m = TaskMapping(nodes)
        assert TaskMapping(m.as_dict()) == m

    @given(st.lists(node_names, min_size=2, max_size=12), st.data())
    def test_swap_involution(self, nodes, data):
        m = TaskMapping(nodes)
        a = data.draw(st.integers(0, len(nodes) - 1))
        b = data.draw(st.integers(0, len(nodes) - 1))
        assert m.with_swap(a, b).with_swap(a, b) == m

    @given(st.lists(node_names, min_size=1, max_size=12))
    def test_procs_per_node_sums_to_nprocs(self, nodes):
        m = TaskMapping(nodes)
        assert sum(m.procs_per_node().values()) == m.nprocs

    @given(st.lists(node_names, min_size=1, max_size=10), st.data())
    def test_with_assignment_changes_one_rank(self, nodes, data):
        m = TaskMapping(nodes)
        rank = data.draw(st.integers(0, len(nodes) - 1))
        m2 = m.with_assignment(rank, "zzz-new")
        diffs = [r for r in range(m.nprocs) if m.node_of(r) != m2.node_of(r)]
        assert diffs in ([], [rank])


class TestLatencyProperties:
    components = st.builds(
        PathComponents,
        alpha_src=st.floats(0, 1e-3),
        alpha_dst=st.floats(0, 1e-3),
        alpha_net=st.floats(0, 1e-3),
        beta=st.floats(0, 1e-6),
    )

    @given(components, st.floats(0, 1e8), st.floats(0, 1e8))
    def test_no_load_monotone_in_size(self, pc, s1, s2):
        lo, hi = sorted((s1, s2))
        assert pc.no_load(lo) <= pc.no_load(hi)

    @given(
        components,
        st.floats(0, 1e7),
        st.floats(0.01, 1.0),
        st.floats(0.01, 1.0),
        st.floats(0.0, 1.0),
    )
    def test_adjusted_never_below_no_load(self, pc, size, acpu_s, acpu_d, nic):
        assert pc.adjusted(size, acpu_src=acpu_s, acpu_dst=acpu_d, nic_src=nic) >= (
            pc.no_load(size) - 1e-18
        )

    @given(components, st.floats(0, 1e7))
    def test_adjusted_idle_equals_no_load(self, pc, size):
        assert math.isclose(pc.adjusted(size), pc.no_load(size), rel_tol=1e-12, abs_tol=1e-18)


class TestCpuShareProperties:
    @given(st.integers(1, 8), st.integers(1, 16), st.floats(0, 8))
    def test_share_in_unit_interval(self, ncpus, procs, bg):
        share = cpu_share(ncpus, procs, bg)
        assert 0.0 < share <= 1.0

    @given(st.integers(1, 8), st.integers(1, 16), st.floats(0, 4), st.floats(0, 4))
    def test_share_monotone_in_background(self, ncpus, procs, bg1, bg2):
        lo, hi = sorted((bg1, bg2))
        assert cpu_share(ncpus, procs, hi) <= cpu_share(ncpus, procs, lo)

    @given(st.integers(1, 8), st.integers(1, 16), st.floats(0, 4))
    def test_total_allocation_within_capacity(self, ncpus, procs, bg):
        share = cpu_share(ncpus, procs, bg)
        assert share * procs <= ncpus + 1e-9


class TestThetaProperties:
    groups = st.lists(
        st.builds(
            MessageGroup,
            peer=st.integers(0, 3),
            size_bytes=st.floats(0, 1e6),
            count=st.integers(1, 50),
        ),
        max_size=5,
    )

    @given(groups, groups)
    def test_theta_nonnegative_and_additive(self, sends, recvs):
        proc = ProcessProfile(
            0, 1.0, 0.1, 0.2, sends=tuple(sends), recvs=tuple(recvs)
        )
        mapping = {r: f"n{r}" for r in range(4)}
        lat = lambda s, d, size: 1e-4 + size * 1e-9  # noqa: E731
        value = theta(proc, mapping, lat)
        assert value >= 0
        expected = sum(g.count * lat("x", "y", g.size_bytes) for g in sends) + sum(
            g.count * lat("x", "y", g.size_bytes) for g in recvs
        )
        assert math.isclose(value, expected, rel_tol=1e-9)


class TestProfileSerializationProperty:
    procs = st.integers(1, 5)

    @given(procs, st.data())
    @settings(max_examples=25)
    def test_roundtrip(self, n, data):
        processes = []
        for rank in range(n):
            sends = tuple(
                MessageGroup(
                    peer=data.draw(st.integers(0, n - 1)),
                    size_bytes=float(data.draw(st.integers(0, 10**6))),
                    count=data.draw(st.integers(1, 9)),
                )
                for _ in range(data.draw(st.integers(0, 3)))
            )
            processes.append(
                ProcessProfile(
                    rank,
                    own_time=float(data.draw(st.integers(0, 100))),
                    overhead_time=float(data.draw(st.integers(0, 10))),
                    blocked_time=float(data.draw(st.integers(0, 50))),
                    sends=sends,
                    lam=float(data.draw(st.integers(0, 5))),
                )
            )
        profile = ApplicationProfile(
            app_name="prop",
            nprocs=n,
            processes=tuple(processes),
            profile_mapping={r: f"n{r}" for r in range(n)},
            profile_speeds={r: 1.0 + r * 0.1 for r in range(n)},
        )
        assert ApplicationProfile.from_dict(profile.to_dict()).to_dict() == profile.to_dict()


class TestMoveProperties:
    @given(st.integers(2, 10), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_moves_preserve_invariants(self, pool_size, nprocs, seed):
        if nprocs > pool_size:
            nprocs = pool_size
        pool = [f"n{i}" for i in range(pool_size)]
        moves = MoveGenerator(pool)
        rng = spawn_rng(seed, "prop-move")
        mapping = TaskMapping(pool[:nprocs])
        for _ in range(10):
            mapping = moves.neighbour(mapping, rng)
            assert mapping.nprocs == nprocs
            assert mapping.is_one_per_node
            assert set(mapping.nodes_used()) <= set(pool)


class TestPatternProperties:
    @given(st.integers(2, 12), st.integers(0, 11), st.floats(1, 1e6))
    @settings(max_examples=30)
    def test_bcast_always_balanced(self, n, root, size):
        root = root % n
        b = ProgramBuilder("p", n)
        b.bcast(range(n), root, size)
        b.build()  # validate() raises on any unbalanced channel

    @given(st.integers(2, 12), st.floats(1, 1e6))
    @settings(max_examples=30)
    def test_allreduce_always_balanced(self, n, size):
        b = ProgramBuilder("p", n)
        b.allreduce(range(n), size)
        b.build()

    @given(st.integers(2, 9), st.floats(1, 1e5))
    @settings(max_examples=20)
    def test_alltoall_always_balanced(self, n, size):
        b = ProgramBuilder("p", n)
        b.alltoall(range(n), size)
        b.build()

    @given(st.integers(1, 64))
    def test_grid_dims_product_invariant(self, n):
        for ndims in (1, 2, 3):
            assert math.prod(grid_dims(n, ndims)) == n


class TestForecasterProperties:
    @given(
        st.sampled_from(["last-value", "mean", "median", "ewma", "ar1", "adaptive"]),
        st.lists(st.floats(0, 10), min_size=1, max_size=40),
    )
    @settings(max_examples=50)
    def test_forecast_within_observed_hull(self, kind, series):
        f = make_forecaster(kind)
        for v in series:
            f.update(v)
        forecast = f.forecast()
        lo, hi = min(series), max(series)
        margin = (hi - lo) + 1e-9
        assert lo - margin <= forecast <= hi + margin


class TestHashProperties:
    @given(st.lists(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)), max_size=5))
    def test_stable_hash_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)
