"""Tests for repro.cluster.topology (incl. the paper's testbeds)."""

import pytest

from repro.cluster import (
    ALPHA_533,
    INTEL_PII_400,
    fat_star,
    federated,
    single_switch,
)
from repro.cluster.topology import centurion, orange_grove


class TestSingleSwitch:
    def test_counts(self):
        cluster = single_switch("s", 5)
        assert cluster.size == 5
        assert len(cluster.nodes_by_switch("s-sw")) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            single_switch("s", 0)


class TestFatStar:
    def test_structure(self):
        cluster = fat_star("f", [(ALPHA_533, 8), (INTEL_PII_400, 8)], hosts_per_switch=4)
        assert cluster.size == 16
        # 16 hosts over 4-host switches -> 4 edge switches.
        switches = {node.switch for node in cluster.nodes.values()}
        assert len(switches) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fat_star("f", [])


class TestFederated:
    def test_joins_sides_with_bottleneck(self):
        a = single_switch("a", 3)
        b = single_switch("b", 3)
        cluster = federated("fed", [a, b])
        cluster.use_exact_latency_model()
        intra = cluster.latency_model.no_load("a-n00", "a-n01", 1024)
        cross = cluster.latency_model.no_load("a-n00", "b-n00", 1024)
        assert cross > intra

    def test_needs_two_sides(self):
        with pytest.raises(ValueError):
            federated("fed", [single_switch("a", 2)])


class TestCenturion:
    @pytest.fixture(scope="class")
    def cluster(self):
        return centurion()

    def test_node_counts(self, cluster):
        assert cluster.size == 128
        assert len(cluster.nodes_by_arch("alpha-533")) == 32
        assert len(cluster.nodes_by_arch("pii-400")) == 96

    def test_intel_nodes_dual_cpu(self, cluster):
        assert all(cluster.node(n).ncpus == 2 for n in cluster.nodes_by_arch("pii-400"))

    def test_eight_edge_switches(self, cluster):
        switches = {node.switch for node in cluster.nodes.values()}
        assert len(switches) == 8

    def test_each_switch_carries_16_nodes(self, cluster):
        for sw in {node.switch for node in cluster.nodes.values()}:
            assert len(cluster.nodes_by_switch(sw)) == 16

    def test_latency_spread_near_13_percent(self, cluster):
        # Section 6: Centurion latency differences up to ~13 %.
        cluster.use_exact_latency_model()
        _, _, spread = cluster.latency_model.spread(64)
        assert 0.08 <= spread <= 0.18


class TestOrangeGrove:
    @pytest.fixture(scope="class")
    def cluster(self):
        return orange_grove()

    def test_node_counts(self, cluster):
        assert cluster.size == 28
        assert len(cluster.nodes_by_arch("alpha-533")) == 8
        assert len(cluster.nodes_by_arch("pii-400")) == 12
        assert len(cluster.nodes_by_arch("sparc-500")) == 8

    def test_five_switch_groups(self, cluster):
        switches = {node.switch for node in cluster.nodes.values()}
        assert len(switches) == 5

    def test_every_arch_spans_multiple_switches(self, cluster):
        # Needed so rank placement matters even within one architecture.
        for arch in ("alpha-533", "pii-400", "sparc-500"):
            switches = {cluster.node(n).switch for n in cluster.nodes_by_arch(arch)}
            assert len(switches) >= 2

    def test_latency_spread_near_54_percent(self, cluster):
        # Section 6: Orange Grove latency differences up to ~54 %.
        cluster.use_exact_latency_model()
        _, _, spread = cluster.latency_model.spread(1024)
        assert 0.40 <= spread <= 0.62

    def test_federation_link_is_bottleneck(self, cluster):
        # Two SPARCs on opposite DLinks cross the limited-capacity link.
        bw = cluster.fabric.bottleneck_bandwidth("og-s00", "og-s04")
        assert bw < 100e6

    def test_calibration_deterministic(self):
        a = orange_grove()
        b = orange_grove()
        a.calibrate(seed=9)
        b.calibrate(seed=9)
        assert a.latency_model.no_load("og-a00", "og-s07", 4096) == pytest.approx(
            b.latency_model.no_load("og-a00", "og-s07", 4096)
        )
