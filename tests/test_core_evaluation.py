"""Tests for the mapping evaluator — exact arithmetic of eqs. 4-8."""

import pytest

from repro.cluster.latency import LatencyModel, PathComponents
from repro.cluster.node import Architecture, Node
from repro.core import EvaluationOptions, InvalidMappingError, MappingEvaluator, TaskMapping
from repro.monitoring.snapshot import NodeState, SystemSnapshot
from repro.profiling.profile import ApplicationProfile, MessageGroup, ProcessProfile

FAST = Architecture("fast", 2.0)
SLOW = Architecture("slow", 1.0)

#: Constant-alpha latency model: L(src,dst,size) = 1ms + size * 1us.
ALPHA = 1e-3
BETA = 1e-6


@pytest.fixture
def nodes():
    return {
        "f0": Node("f0", FAST),
        "f1": Node("f1", FAST),
        "s0": Node("s0", SLOW),
        "s1": Node("s1", SLOW),
    }


@pytest.fixture
def latency_model(nodes):
    comps = PathComponents(ALPHA / 2, ALPHA / 2, 0.0, BETA)
    return LatencyModel(
        {(a, b): comps for a in nodes for b in nodes if a != b}
    )


def make_profile(lam=(1.0, 1.0)):
    """Two processes: rank0 sends 10x100B to rank1, profiled on f0/f1."""
    p0 = ProcessProfile(
        0, own_time=8.0, overhead_time=2.0, blocked_time=3.0,
        sends=(MessageGroup(1, 100.0, 10),), lam=lam[0],
    )
    p1 = ProcessProfile(
        1, own_time=4.0, overhead_time=1.0, blocked_time=2.0,
        recvs=(MessageGroup(0, 100.0, 10),), lam=lam[1],
    )
    return ApplicationProfile(
        app_name="toy",
        nprocs=2,
        processes=(p0, p1),
        profile_mapping={0: "f0", 1: "f1"},
        profile_speeds={0: 2.0, 1: 2.0},
    )


def evaluator(nodes, latency_model, *, snapshot=None, options=EvaluationOptions(), lam=(1.0, 1.0)):
    snap = snapshot or SystemSnapshot.unloaded(nodes, {n: 1 for n in nodes})
    return MappingEvaluator(make_profile(lam), latency_model, nodes, snap, options)


MSG_LATENCY = ALPHA + 100.0 * BETA  # one 100-byte message
THETA = 10 * MSG_LATENCY  # the profile's single message group


class TestComputationTerm:
    def test_same_speed_same_r(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        assert pred.breakdown(0).computation == pytest.approx(10.0)  # X+O
        assert pred.breakdown(1).computation == pytest.approx(5.0)

    def test_slower_node_scales_r_by_speed_ratio(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        pred = ev.predict(TaskMapping(["s0", "f1"]))
        # eq. 5: (X+O) * speed_profile/speed_j = 10 * 2.0/1.0.
        assert pred.breakdown(0).computation == pytest.approx(20.0)

    def test_measured_arch_ratio_preferred(self, nodes, latency_model):
        profile = make_profile()
        profile.arch_speed_ratios["slow"] = 1.6  # app runs atypically well
        snap = SystemSnapshot.unloaded(nodes, {n: 1 for n in nodes})
        ev = MappingEvaluator(profile, latency_model, nodes, snap)
        pred = ev.predict(TaskMapping(["s0", "f1"]))
        assert pred.breakdown(0).computation == pytest.approx(10.0 * 2.0 / 1.6)

    def test_acpu_divides_r(self, nodes, latency_model):
        snap = SystemSnapshot(
            states={"f0": NodeState(background_load=1.0)},  # acpu = 0.5
            ncpus={n: 1 for n in nodes},
        )
        ev = evaluator(nodes, latency_model, snapshot=snap)
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        assert pred.breakdown(0).computation == pytest.approx(20.0)

    def test_co_mapped_procs_share_node(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        pred = ev.predict(TaskMapping(["f0", "f0"]))
        # Two processes on one single-CPU node: ACPU = 0.5 each.
        assert pred.breakdown(0).computation == pytest.approx(20.0)
        assert pred.breakdown(1).computation == pytest.approx(10.0)


class TestCommunicationTerm:
    def test_theta_and_lambda(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model, lam=(0.5, 2.0))
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        # eq. 8: C_i = Theta_i * lambda_i; both ranks see the same group.
        assert pred.breakdown(0).communication == pytest.approx(0.5 * THETA)
        assert pred.breakdown(1).communication == pytest.approx(2.0 * THETA)

    def test_communication_disabled(self, nodes, latency_model):
        ev = evaluator(
            nodes, latency_model, options=EvaluationOptions(communication=False), lam=(2.0, 2.0)
        )
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        assert pred.breakdown(0).communication == 0.0

    def test_lambda_disabled(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model, options=EvaluationOptions(use_lambda=False), lam=(2.0, 2.0))
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        assert pred.breakdown(0).communication == pytest.approx(THETA)

    def test_load_adjusted_latency(self, nodes, latency_model):
        snap = SystemSnapshot(
            states={"f1": NodeState(background_load=1.0)},  # acpu 0.5 at dst
            ncpus={n: 1 for n in nodes},
        )
        ev = evaluator(nodes, latency_model, snapshot=snap)
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        # Destination endpoint alpha doubles: per message +ALPHA/2.
        expected = 10 * (ALPHA / 2 + ALPHA + 100 * BETA)
        assert pred.breakdown(0).communication == pytest.approx(expected)

    def test_no_load_latency_option(self, nodes, latency_model):
        snap = SystemSnapshot(
            states={"f1": NodeState(background_load=1.0)},
            ncpus={n: 1 for n in nodes},
        )
        ev = evaluator(
            nodes,
            latency_model,
            snapshot=snap,
            options=EvaluationOptions(load_adjusted_latency=False, cpu_availability=False),
        )
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        assert pred.breakdown(0).communication == pytest.approx(THETA)


class TestEq4Aggregation:
    def test_sm_is_max_of_r_plus_c(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        pred = ev.predict(TaskMapping(["f0", "f1"]))
        totals = [p.computation + p.communication for p in pred.processes]
        assert pred.execution_time == pytest.approx(max(totals))
        assert pred.critical_rank == 0  # rank 0 has more compute

    def test_critical_rank_follows_slow_node(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model, lam=(0.5, 2.0))
        pred = ev.predict(TaskMapping(["f0", "s1"]))
        # rank 1 on the slow node: R = 5*2 = 10 plus the larger C term.
        assert pred.critical_rank == 1


class TestInterface:
    def test_wrong_size_mapping(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        with pytest.raises(InvalidMappingError):
            ev.predict(TaskMapping(["f0"]))

    def test_unknown_node(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        with pytest.raises(InvalidMappingError):
            ev.predict(TaskMapping(["f0", "ghost"]))

    def test_evaluation_counter(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        m = TaskMapping(["f0", "f1"])
        ev.predict(m)
        ev.execution_time(m)
        assert ev.evaluations == 2

    def test_compare_sorted_fastest_first(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        results = ev.compare([TaskMapping(["s0", "s1"]), TaskMapping(["f0", "f1"])])
        assert results[0].execution_time <= results[1].execution_time
        assert results[0].mapping == TaskMapping(["f0", "f1"])

    def test_compare_empty(self, nodes, latency_model):
        with pytest.raises(InvalidMappingError):
            evaluator(nodes, latency_model).compare([])

    def test_per_call_options_override(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model, lam=(1.0, 1.0))
        m = TaskMapping(["f0", "f1"])
        full = ev.execution_time(m)
        nocomm = ev.execution_time(m, options=EvaluationOptions(communication=False))
        assert nocomm < full
        assert ev.evaluations == 2  # both counted on the same evaluator

    def test_with_snapshot_rebinds(self, nodes, latency_model):
        ev = evaluator(nodes, latency_model)
        snap = SystemSnapshot(
            states={"f0": NodeState(background_load=3.0)}, ncpus={n: 1 for n in nodes}
        )
        slower = ev.with_snapshot(snap).execution_time(TaskMapping(["f0", "f1"]))
        assert slower > ev.execution_time(TaskMapping(["f0", "f1"]))
