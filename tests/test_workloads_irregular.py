"""Tests for the irregular application model."""

import pytest

from repro.cluster import single_switch
from repro.core import CBES, RemapTrigger, TaskMapping
from repro.simulate import Compute
from repro.workloads import IrregularApplication


@pytest.fixture(scope="module")
def service():
    svc = CBES(single_switch("mini", 8))
    svc.calibrate(seed=1)
    return svc


class TestStructure:
    def test_validation(self):
        for bad in (
            dict(epochs=0),
            dict(steps_per_epoch=0),
            dict(work=0),
            dict(imbalance=-1),
            dict(degree=0),
            dict(msg_bytes=0),
            dict(drift=1.5),
        ):
            with pytest.raises(ValueError):
                IrregularApplication(**bad)

    def test_same_structure_seed_same_program(self):
        a = IrregularApplication(structure_seed=7).program(6)
        b = IrregularApplication(structure_seed=7).program(6)
        assert a.ops == b.ops

    def test_different_structure_seed_differs(self):
        a = IrregularApplication(structure_seed=7).program(6)
        b = IrregularApplication(structure_seed=8).program(6)
        assert a.ops != b.ops

    def test_imbalance_spreads_per_rank_work(self):
        prog = IrregularApplication(imbalance=1.0, structure_seed=1).program(8)
        per_rank = [
            sum(op.work for op in stream if isinstance(op, Compute)) for stream in prog.ops
        ]
        assert max(per_rank) > 2 * min(per_rank)

    def test_zero_imbalance_zero_drift_is_regular(self):
        prog = IrregularApplication(imbalance=0.0, drift=0.0, structure_seed=1).program(8)
        per_rank = [
            sum(op.work for op in stream if isinstance(op, Compute)) for stream in prog.ops
        ]
        assert max(per_rank) == pytest.approx(min(per_rank))

    def test_epoch_markers_present(self):
        prog = IrregularApplication(epochs=3, structure_seed=1).program(4)
        prog.validate()


class TestExecution:
    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_deadlock_free_across_sizes(self, service, nprocs):
        app = IrregularApplication(epochs=2, steps_per_epoch=3, structure_seed=11)
        ids = service.cluster.node_ids()[:nprocs]
        result = service.simulator.run(
            app.program(nprocs), {r: ids[r] for r in range(nprocs)}, seed=1,
            arch_affinity=app.arch_affinity,
        )
        assert result.total_time > 0

    def test_prediction_accuracy_on_profiled_mapping(self, service):
        app = IrregularApplication(structure_seed=5)
        mapping = TaskMapping(service.cluster.node_ids()[:8])
        service.profile_application(app, 8, mapping=mapping, seed=0)
        predicted = service.evaluator(app.name).execution_time(mapping)
        measured = service.simulator.run(
            app.program(8), mapping.as_dict(), seed=77, arch_affinity=app.arch_affinity
        ).total_time
        assert predicted == pytest.approx(measured, rel=0.1)

    def test_drift_triggers_internal_remap_signal(self, service):
        app = IrregularApplication(drift=1.0, imbalance=0.8, structure_seed=9)
        mapping = TaskMapping(service.cluster.node_ids()[:8])
        profile = service.profile_application(
            app, 8, mapping=mapping, seed=0, per_segment=True
        )
        trigger = RemapTrigger(behaviour_drift=0.25)
        fired = [seg for seg in profile.segments if trigger.internal(profile, seg)]
        assert fired  # at least one epoch deviates from the aggregate
