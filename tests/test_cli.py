"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main, make_app
from repro.workloads import HPL, LU, Aztec, Towhee


class TestMakeApp:
    def test_npb_specs(self):
        assert isinstance(make_app("lu.A"), LU)
        assert make_app("lu.B").npb_class == "B"
        assert make_app("LU.A").name == "lu.A"

    def test_default_class(self):
        assert make_app("lu").npb_class == "A"

    def test_parameterized_specs(self):
        assert isinstance(make_app("hpl.5000"), HPL)
        assert make_app("hpl.5000").n == 5000
        assert make_app("smg2000.12").problem_size == 12
        assert isinstance(make_app("aztec.500"), Aztec)
        assert isinstance(make_app("towhee"), Towhee)

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            make_app("doom")

    def test_bad_argument(self):
        with pytest.raises(SystemExit):
            make_app("hpl.huge")
        with pytest.raises(SystemExit):
            make_app("lu.Z")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["inspect"])
        assert args.cluster == "orange-grove"
        assert args.db == ".cbes-db"

    def test_unknown_cluster_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--cluster", "mars", "inspect"])


class TestCommands:
    """End-to-end CLI flow against a temporary database."""

    @pytest.fixture(scope="class")
    def db_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("cbes-db"))

    def run(self, db_dir, *argv):
        return main(["--db", db_dir, *argv])

    def test_schedule_before_calibrate_fails(self, db_dir, capsys):
        with pytest.raises(SystemExit, match="calibrate"):
            self.run(db_dir, "schedule", "lu.A")

    def test_calibrate(self, db_dir, capsys):
        assert self.run(db_dir, "calibrate") == 0
        out = capsys.readouterr().out
        assert "378 pairs" in out
        assert "27 rounds" in out

    def test_profile(self, db_dir, capsys):
        assert self.run(db_dir, "profile", "lu.S", "--nprocs", "4") == 0
        out = capsys.readouterr().out
        assert "lu.S" in out

    def test_schedule(self, db_dir, capsys):
        assert self.run(db_dir, "schedule", "lu.S", "--arch", "alpha-533") == 0
        out = capsys.readouterr().out
        assert "predicted execution time" in out
        assert out.count("rank") == 4

    def test_schedule_unknown_profile(self, db_dir):
        with pytest.raises(SystemExit, match="no stored profile"):
            self.run(db_dir, "schedule", "mg.A")

    def test_predict(self, db_dir, capsys):
        assert self.run(
            db_dir, "predict", "lu.S", "og-a00,og-a01,og-a02,og-a03"
        ) == 0
        out = capsys.readouterr().out
        assert "critical rank" in out

    def test_inspect(self, db_dir, capsys):
        assert self.run(db_dir, "inspect") == 0
        out = capsys.readouterr().out
        assert "lu.S" in out
        assert "system profile stored: True" in out

    def test_rs_scheduler_option(self, db_dir, capsys):
        assert self.run(db_dir, "schedule", "lu.S", "--scheduler", "rs") == 0
        assert "RS" in capsys.readouterr().out


class TestServerParser:
    """Parsing for the daemon-facing subcommands (serve / submit / jobs)."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 2
        assert args.queue_limit == 16
        assert args.job_ttl == 600.0
        assert args.refresh_interval == 10.0
        assert args.monitor is True
        assert args.log_level == "info"

    def test_serve_no_monitor(self):
        args = build_parser().parse_args(["serve", "--no-monitor", "--port", "0"])
        assert args.monitor is False
        assert args.port == 0

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "lu.S"])
        assert args.kind == "schedule"
        assert args.scheduler == "cs"
        assert args.no_wait is False

    def test_submit_predict_requires_known_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "lu.S", "--kind", "juggle"])

    def test_jobs_optional_id(self):
        assert build_parser().parse_args(["jobs"]).job_id is None
        assert build_parser().parse_args(["jobs", "j000001"]).job_id == "j000001"

    def test_submit_unreachable_daemon_exits(self):
        with pytest.raises(SystemExit):
            main(["submit", "lu.S", "--port", "1", "--timeout", "1"])

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--log-level", "shouty"])
