"""Tests for the CBES service facade."""

import pytest

from repro.core import (
    CBES,
    EvaluationOptions,
    NotCalibratedError,
    TaskMapping,
    UnknownProfileError,
)
from repro.cluster import single_switch
from repro.schedulers import RandomScheduler
from repro.workloads import SyntheticBenchmark


@pytest.fixture
def service():
    svc = CBES(single_switch("mini", 6))
    svc.calibrate(seed=2)
    return svc


@pytest.fixture
def app():
    return SyntheticBenchmark(comm_fraction=0.2, duration_s=2.0, steps=4)


class TestLifecycle:
    def test_calibration_requires_unloaded_system(self):
        cluster = single_switch("mini", 4)
        cluster.node("mini-n00").set_background_load(0.5)
        with pytest.raises(NotCalibratedError, match="unloaded"):
            CBES(cluster).calibrate()

    def test_profile_requires_calibration(self, app):
        svc = CBES(single_switch("mini", 4))
        with pytest.raises(NotCalibratedError):
            svc.profile_application(app, 2)

    def test_evaluator_requires_calibration(self):
        svc = CBES(single_switch("mini", 4))
        with pytest.raises(NotCalibratedError):
            svc.evaluator("anything")

    def test_monitor_property_requires_attach(self, service):
        with pytest.raises(NotCalibratedError):
            _ = service.monitor

    def test_start_monitoring(self, service):
        monitor = service.start_monitoring(forecaster="last-value")
        assert service.monitor is monitor
        snap = service.snapshot()  # auto-polls once
        assert snap.acpu(service.cluster.node_ids()[0]) > 0

    def test_start_monitoring_is_idempotent(self, service):
        first = service.start_monitoring(forecaster="last-value")
        second = service.start_monitoring(forecaster="mean", seed=7)
        assert second is first  # repeated starts reuse the attached daemons

    def test_stop_monitoring_detaches(self, service):
        assert not service.is_monitoring
        service.stop_monitoring()  # no-op before start
        assert not service.is_monitoring
        first = service.start_monitoring(forecaster="last-value")
        assert service.is_monitoring
        service.stop_monitoring()
        assert not service.is_monitoring
        with pytest.raises(NotCalibratedError):
            _ = service.monitor
        # A fresh start after stop attaches new daemons.
        assert service.start_monitoring(forecaster="last-value") is not first


class TestProfiles:
    def test_profile_registration(self, service, app):
        profile = service.profile_application(app, 3, seed=1)
        assert app.name in service.profiled_applications
        assert service.profile(app.name) is profile
        assert profile.nprocs == 3

    def test_unknown_profile(self, service):
        with pytest.raises(UnknownProfileError):
            service.profile("ghost")

    def test_profile_has_speed_ratios(self, service, app):
        profile = service.profile_application(app, 2, seed=1)
        assert set(profile.arch_speed_ratios) == set(service.cluster.architectures())

    def test_custom_profiling_mapping(self, service, app):
        nodes = service.cluster.node_ids()
        mapping = TaskMapping([nodes[3], nodes[1]])
        profile = service.profile_application(app, 2, mapping=mapping)
        assert profile.profile_mapping == {0: nodes[3], 1: nodes[1]}

    def test_lambda_values_reasonable(self, service, app):
        profile = service.profile_application(app, 4, seed=1)
        for proc in profile.processes:
            assert 0.0 <= proc.lam < 20.0


class TestComparisonRequests:
    def test_compare_orders_results(self, service, app):
        service.profile_application(app, 2, seed=1)
        nodes = service.cluster.node_ids()
        results = service.compare(
            app.name, [TaskMapping(nodes[:2]), TaskMapping(nodes[2:4])]
        )
        assert len(results) == 2
        assert results[0].execution_time <= results[1].execution_time

    def test_evaluator_with_options(self, service, app):
        service.profile_application(app, 2, seed=1)
        ev = service.evaluator(app.name, options=EvaluationOptions(communication=False))
        m = TaskMapping(service.cluster.node_ids()[:2])
        assert ev.predict(m).breakdown(0).communication == 0.0

    def test_schedule_with_external_scheduler(self, service, app):
        service.profile_application(app, 2, seed=1)
        result = service.schedule(app.name, RandomScheduler(), service.cluster.node_ids())
        assert result.mapping.nprocs == 2
        assert result.predicted_time > 0


class TestPredictionAccuracy:
    def test_prediction_close_to_measurement(self, service, app):
        """End-to-end: profile once, predict, measure — low error."""
        service.profile_application(app, 4, seed=0)
        nodes = service.cluster.node_ids()
        mapping = TaskMapping(nodes[:4])
        predicted = service.evaluator(app.name).execution_time(mapping)
        measured = service.simulator.run(
            app.program(4), mapping.as_dict(), seed=99, arch_affinity=app.arch_affinity
        ).total_time
        assert predicted == pytest.approx(measured, rel=0.08)
