"""Tests for the phased application and the pairwise exchange pattern."""

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.simulate import Exchange
from repro.workloads import PhasedApplication
from repro.workloads.patterns import ProgramBuilder


class TestPairwiseExchange:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_phase0_pairs_disjoint(self, n):
        b = ProgramBuilder("p", n)
        b.pairwise_exchange(range(n), 100.0, phase=0)
        prog = b.build()
        participants = [r for r in range(n) if prog.ops[r]]
        assert len(participants) == (n // 2) * 2
        # Each participant exchanges exactly once.
        assert all(len(prog.ops[r]) == 1 for r in participants)

    def test_phase1_includes_wrap_for_even_groups(self):
        b = ProgramBuilder("p", 4)
        b.pairwise_exchange(range(4), 100.0, phase=1)
        prog = b.build()
        peers_of_0 = [op.peer for op in prog.ops[0] if isinstance(op, Exchange)]
        assert peers_of_0 == [3]  # the wrap pair (3, 0)

    def test_phase1_odd_group_no_wrap(self):
        b = ProgramBuilder("p", 5)
        b.pairwise_exchange(range(5), 100.0, phase=1)
        prog = b.build()
        assert prog.ops[0] == []  # rank 0 idles in phase 1 of an odd group

    def test_zero_size_noop(self):
        b = ProgramBuilder("p", 4)
        b.pairwise_exchange(range(4), 0.0)
        assert b.build().total_messages == 0

    def test_singleton_noop(self):
        b = ProgramBuilder("p", 1)
        b.pairwise_exchange([0], 10.0)
        assert b.build().total_messages == 0


class TestPhasedApplication:
    @pytest.fixture(scope="class")
    def service(self):
        svc = CBES(single_switch("mini", 8))
        svc.calibrate(seed=1)
        return svc

    def test_parameter_validation(self):
        for bad in (
            dict(setup_bytes=0),
            dict(solve_work=-1),
            dict(core_iters=0),
            dict(core_work=0),
            dict(core_bytes=0),
        ):
            with pytest.raises(ValueError):
                PhasedApplication(**bad)

    def test_three_segments_in_trace(self, service):
        app = PhasedApplication()
        mapping = TaskMapping(service.cluster.node_ids()[:4])
        result = service.simulator.run(
            app.program(4), mapping.as_dict(), seed=1, arch_affinity=app.arch_affinity
        )
        assert result.trace.segments == [0, 1, 2]

    def test_segment_profiles_contrast(self, service):
        app = PhasedApplication()
        profile = service.profile_application(app, 4, seed=0, per_segment=True)
        comp_shares = {
            seg: prof.comp_comm_ratio[0] for seg, prof in profile.segments.items()
        }
        # Solve (segment 1) is the most compute-dominated; setup (0) the least.
        assert comp_shares[1] > comp_shares[2] > comp_shares[0]

    def test_runs_on_various_counts(self, service):
        for n in (1, 2, 4, 6):
            app = PhasedApplication(core_iters=2)
            mapping = TaskMapping(service.cluster.node_ids()[:n])
            result = service.simulator.run(
                app.program(n), mapping.as_dict(), seed=2, arch_affinity=app.arch_affinity
            )
            assert result.total_time > 0
