"""Tests for the experiment harness and validation experiments."""

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.experiments.harness import ExperimentContext, Measurement, full_scale, repetitions
from repro.experiments.validation import (
    Phase1Config,
    load_sensitivity,
    phase1_sweep,
    prediction_error_case,
)
from repro.workloads import SyntheticBenchmark


@pytest.fixture
def ctx():
    return ExperimentContext(CBES(single_switch("mini", 8)))


@pytest.fixture
def app():
    return SyntheticBenchmark(comm_fraction=0.2, duration_s=4.0, steps=4)


class TestScaleControl:
    def test_default_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        assert repetitions(3, 100) == 3

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        assert repetitions(3, 100) == 100

    def test_repetitions_validation(self):
        with pytest.raises(ValueError):
            repetitions(0, 5)
        with pytest.raises(ValueError):
            repetitions(10, 5)


class TestMeasurement:
    def test_from_samples(self):
        m = Measurement.from_samples([1.0, 2.0, 3.0])
        assert m.mean == 2.0
        assert m.runs == 3
        assert m.ci95 > 0


class TestContext:
    def test_auto_calibrates(self):
        service = CBES(single_switch("mini", 4))
        assert not service.cluster.is_calibrated
        ExperimentContext(service)
        assert service.cluster.is_calibrated

    def test_ensure_profiled_idempotent(self, ctx, app):
        p1 = ctx.ensure_profiled(app, 4)
        p2 = ctx.ensure_profiled(app, 4)
        assert p1 is p2

    def test_measure_repeats(self, ctx, app):
        ctx.ensure_profiled(app, 4)
        mapping = TaskMapping(ctx.service.cluster.node_ids()[:4])
        m = ctx.measure(app, mapping, runs=3, seed=1)
        assert m.runs == 3
        assert m.mean > 0

    def test_measure_validation(self, ctx, app):
        mapping = TaskMapping(ctx.service.cluster.node_ids()[:4])
        with pytest.raises(ValueError):
            ctx.measure(app, mapping, runs=0)


class TestPredictionErrorCase:
    def test_error_small_on_unloaded_cluster(self, ctx, app):
        case = prediction_error_case(ctx, app, 4, runs=3, seed=5)
        assert case.error_percent < 8.0
        assert case.measured.runs == 3
        assert case.predicted > 0

    def test_case_label(self, ctx, app):
        case = prediction_error_case(ctx, app, 4, runs=2, case="MYCASE")
        assert case.case == "MYCASE"


class TestPhase1Sweep:
    def test_tiny_sweep_mostly_accurate(self, ctx):
        config = Phase1Config(
            comm_fractions=(0.1, 0.4),
            overlaps=(0.0, 1.0),
            durations=(4.0,),
            patterns=("ring",),
            nprocs=(4,),
            mappings_per_case=1,
            runs_per_mapping=1,
        )
        errors = phase1_sweep(ctx, config, seed=2)
        # 2 comm fractions x 2 overlaps x 1 duration x 1 pattern x 1
        # process count x 1 mapping x 1 run.
        assert len(errors) == 4
        good = sum(1 for e in errors if e <= 6.0)
        assert good / len(errors) >= 0.75


class TestLoadSensitivity:
    def test_stale_prediction_degrades_with_load(self, ctx, app):
        points = load_sensitivity(
            ctx, app, ctx.service.cluster.node_ids(), nprocs=4,
            loads=(0.0, 0.3), runs=2, seed=3,
        )
        assert points[0].stale_error_percent < points[-1].stale_error_percent
        # A fresh snapshot keeps the formula accurate even under load.
        assert points[-1].fresh_error_percent < points[-1].stale_error_percent

    def test_loads_restored_after_experiment(self, ctx, app):
        load_sensitivity(
            ctx, app, ctx.service.cluster.node_ids(), nprocs=4, loads=(0.4,), runs=1
        )
        assert all(
            node.background_load == 0.0 for node in ctx.service.cluster.nodes.values()
        )
