"""Tests for the contention models."""

import pytest

from repro.simulate.contention import LinkContentionTracker, cpu_share
from tests.conftest import make_tiny_cluster


class TestCpuShare:
    def test_idle_full_share(self):
        assert cpu_share(1, 1, 0.0) == 1.0

    def test_two_procs_one_cpu(self):
        assert cpu_share(1, 2, 0.0) == pytest.approx(0.5)

    def test_background_counts_as_demand(self):
        assert cpu_share(1, 1, 1.0) == pytest.approx(0.5)

    def test_multi_cpu_absorbs(self):
        assert cpu_share(4, 3, 1.0) == 1.0
        assert cpu_share(4, 5, 1.0) == pytest.approx(4 / 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_share(0, 1, 0.0)
        with pytest.raises(ValueError):
            cpu_share(1, 0, 0.0)
        with pytest.raises(ValueError):
            cpu_share(1, 1, -0.5)


class TestLinkContentionTracker:
    @pytest.fixture
    def tracker(self):
        cluster = make_tiny_cluster(6, two_switches=True)
        return LinkContentionTracker(cluster.fabric), cluster

    def test_same_switch_path_has_no_shared_links(self, tracker):
        t, cluster = tracker
        # n00 and n02 are both on sw0: host links only, never inflated.
        t.register("n00", "n02", 0.0, 1.0)
        assert t.concurrency("n00", "n02", 0.0, 1.0) == 0

    def test_cross_switch_overlap_counted(self, tracker):
        t, _ = tracker
        t.register("n00", "n01", 0.0, 1.0)  # crosses sw0-sw1
        assert t.concurrency("n02", "n03", 0.5, 1.5) == 1
        assert t.concurrency("n02", "n03", 2.0, 3.0) == 0

    def test_multiple_overlaps(self, tracker):
        t, _ = tracker
        for k in range(3):
            t.register("n00", "n01", 0.0, 1.0)
        assert t.concurrency("n02", "n03", 0.9, 1.1) == 3

    def test_boundary_touching_does_not_overlap(self, tracker):
        t, _ = tracker
        t.register("n00", "n01", 0.0, 1.0)
        assert t.concurrency("n02", "n03", 1.0, 2.0) == 0

    def test_clear(self, tracker):
        t, _ = tracker
        t.register("n00", "n01", 0.0, 1.0)
        t.clear()
        assert t.concurrency("n02", "n03", 0.0, 1.0) == 0

    def test_invalid_interval(self, tracker):
        t, _ = tracker
        with pytest.raises(ValueError):
            t.register("n00", "n01", 1.0, 0.5)
        with pytest.raises(ValueError):
            t.concurrency("n00", "n01", 1.0, 0.5)
