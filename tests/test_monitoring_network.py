"""Tests for the runtime network monitor (NWS latency sensor)."""

import pytest

from repro.monitoring.network import LatencySensor, NetworkMonitor
from tests.conftest import make_tiny_cluster


@pytest.fixture
def cluster():
    c = make_tiny_cluster(6, two_switches=True)
    c.use_exact_latency_model()
    return c


class TestLatencySensor:
    def test_noise_free_reads_adjusted_truth(self, cluster):
        sensor = LatencySensor(cluster, "n00", "n01", noise=0.0)
        idle = sensor.read()
        cluster.node("n01").set_background_load(1.0)
        loaded = sensor.read()
        cluster.clear_loads()
        assert loaded > idle

    def test_nic_load_visible(self, cluster):
        sensor = LatencySensor(cluster, "n00", "n01", noise=0.0)
        idle = sensor.read(65536)
        cluster.node("n00").set_nic_load(0.5)
        busy = sensor.read(65536)
        cluster.clear_loads()
        assert busy > 1.5 * idle

    def test_noise_validation(self, cluster):
        with pytest.raises(ValueError):
            LatencySensor(cluster, "n00", "n01", noise=-0.1)
        sensor = LatencySensor(cluster, "n00", "n01")
        with pytest.raises(ValueError):
            sensor.read(0)


class TestNetworkMonitor:
    def test_requires_calibration(self):
        raw = make_tiny_cluster(4)
        with pytest.raises(RuntimeError, match="calibrated"):
            NetworkMonitor(raw)

    def test_sweep_covers_all_pairs(self, cluster):
        monitor = NetworkMonitor(cluster, sensor_noise=0.0)
        monitor.sweep()
        ids = cluster.node_ids()
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                assert monitor.latency(a, b) > 0

    def test_unprobed_pair_raises(self, cluster):
        monitor = NetworkMonitor(cluster)
        with pytest.raises(KeyError):
            monitor.latency("n00", "n01")

    def test_rounds_per_sweep_linear(self, cluster):
        monitor = NetworkMonitor(cluster)
        assert monitor.rounds_per_sweep <= cluster.size

    def test_inflation_near_one_when_idle(self, cluster):
        monitor = NetworkMonitor(cluster, sensor_noise=0.0)
        monitor.sweep()
        assert monitor.inflation("n00", "n02") == pytest.approx(1.0, rel=0.05)

    def test_hotspots_detect_loaded_endpoint(self, cluster):
        monitor = NetworkMonitor(cluster, sensor_noise=0.0)
        cluster.node("n03").set_background_load(3.0)  # acpu 25%
        monitor.sweep()
        cluster.clear_loads()
        hot = monitor.hotspots(threshold=1.2)
        assert hot
        assert all("n03" in (a, b) for a, b, _ in hot)

    def test_hotspot_threshold_validation(self, cluster):
        monitor = NetworkMonitor(cluster)
        with pytest.raises(ValueError):
            monitor.hotspots(threshold=0.0)

    def test_poll_validation(self, cluster):
        monitor = NetworkMonitor(cluster)
        with pytest.raises(ValueError):
            monitor.poll(rounds=0)

    def test_unordered_pair_symmetric(self, cluster):
        monitor = NetworkMonitor(cluster, sensor_noise=0.0)
        monitor.sweep()
        assert monitor.latency("n01", "n00") == monitor.latency("n00", "n01")
