"""Tests for the NWS-style forecasters."""

import pytest

from repro._util import spawn_rng
from repro.monitoring.forecasting import (
    AR1,
    AdaptiveForecaster,
    Ewma,
    LastValue,
    SlidingMean,
    SlidingMedian,
    make_forecaster,
)

ALL_KINDS = ["last-value", "mean", "median", "ewma", "ar1", "adaptive"]


class TestCommonBehaviour:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_empty_forecast_raises(self, kind):
        with pytest.raises(RuntimeError):
            make_forecaster(kind).forecast()

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_constant_series_forecast_constant(self, kind):
        f = make_forecaster(kind)
        for _ in range(20):
            f.update(0.42)
        assert f.forecast() == pytest.approx(0.42)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_rejects_non_finite(self, kind):
        f = make_forecaster(kind)
        with pytest.raises(ValueError):
            f.update(float("nan"))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("magic")


class TestLastValue:
    def test_tracks_latest(self):
        f = LastValue()
        for v in (1.0, 5.0, 2.0):
            f.update(v)
        assert f.forecast() == 2.0


class TestSlidingMean:
    def test_window_limits_history(self):
        f = SlidingMean(window=3)
        for v in (100.0, 1.0, 2.0, 3.0):
            f.update(v)
        assert f.forecast() == pytest.approx(2.0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            SlidingMean(window=0)


class TestSlidingMedian:
    def test_robust_to_spike(self):
        f = SlidingMedian(window=5)
        for v in (1.0, 1.0, 50.0, 1.0, 1.0):
            f.update(v)
        assert f.forecast() == 1.0


class TestEwma:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_alpha_one_is_last_value(self):
        f = Ewma(alpha=1.0)
        for v in (3.0, 9.0):
            f.update(v)
        assert f.forecast() == 9.0

    def test_smoothing(self):
        f = Ewma(alpha=0.5)
        f.update(0.0)
        f.update(1.0)
        assert f.forecast() == pytest.approx(0.5)


class TestAR1:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            AR1(window=2)

    def test_tracks_ar1_process_better_than_mean(self):
        rng = spawn_rng(0, "fc-ar1")
        phi, n = 0.9, 300
        x = 0.5
        ar1, mean = AR1(window=30), SlidingMean(window=30)
        err_ar1 = err_mean = 0.0
        for _ in range(n):
            nxt = 0.5 + phi * (x - 0.5) + rng.normal(0, 0.02)
            if ar1.observations > 5:
                err_ar1 += abs(ar1.forecast() - nxt)
                err_mean += abs(mean.forecast() - nxt)
            ar1.update(nxt)
            mean.update(nxt)
            x = nxt
        assert err_ar1 < err_mean

    def test_short_history_falls_back(self):
        f = AR1()
        f.update(1.0)
        assert f.forecast() == 1.0


class TestAdaptive:
    def test_picks_best_member(self):
        # A noisy constant series: the median/mean members beat last-value.
        rng = spawn_rng(1, "fc-adaptive")
        f = AdaptiveForecaster()
        for _ in range(100):
            f.update(0.3 + float(rng.normal(0, 0.05)))
        best = f.best_member
        assert not isinstance(best, LastValue)

    def test_forecast_is_member_forecast(self):
        f = AdaptiveForecaster()
        for v in (1.0, 2.0, 3.0):
            f.update(v)
        assert f.forecast() == f.best_member.forecast()

    def test_requires_members(self):
        with pytest.raises(ValueError):
            AdaptiveForecaster(members=[])
