"""Tests for TaskMapping (paper eqs. 1-3)."""

import pytest

from repro.core import InvalidMappingError, TaskMapping


class TestConstruction:
    def test_from_sequence(self):
        m = TaskMapping(["a", "b", "c"])
        assert m.nprocs == 3
        assert m.node_of(1) == "b"

    def test_from_dict(self):
        m = TaskMapping({1: "b", 0: "a"})
        assert m.as_tuple() == ("a", "b")

    def test_dict_must_be_contiguous(self):
        with pytest.raises(InvalidMappingError):
            TaskMapping({0: "a", 2: "b"})

    def test_from_pairs(self):
        m = TaskMapping.from_pairs([(0, "a"), (1, "b")])
        assert m.as_dict() == {0: "a", 1: "b"}

    def test_from_pairs_duplicate_rank(self):
        with pytest.raises(InvalidMappingError):
            TaskMapping.from_pairs([(0, "a"), (0, "b")])

    def test_empty_rejected(self):
        with pytest.raises(InvalidMappingError):
            TaskMapping([])

    def test_bad_node_ids_rejected(self):
        with pytest.raises(InvalidMappingError):
            TaskMapping(["a", ""])


class TestQueries:
    def test_node_of_bounds(self):
        m = TaskMapping(["a"])
        with pytest.raises(InvalidMappingError):
            m.node_of(1)

    def test_nodes_used_and_counts(self):
        m = TaskMapping(["a", "b", "a"])
        assert m.nodes_used() == frozenset({"a", "b"})
        assert m.procs_per_node() == {"a": 2, "b": 1}
        assert not m.is_one_per_node

    def test_one_per_node(self):
        assert TaskMapping(["a", "b"]).is_one_per_node

    def test_require_nodes(self):
        m = TaskMapping(["a", "b"])
        m.require_nodes(["a", "b", "c"])
        with pytest.raises(InvalidMappingError):
            m.require_nodes(["a"])

    def test_len_and_iter(self):
        m = TaskMapping(["a", "b"])
        assert len(m) == 2
        assert list(m) == ["a", "b"]


class TestDerivation:
    def test_with_assignment_immutability(self):
        m = TaskMapping(["a", "b"])
        m2 = m.with_assignment(0, "c")
        assert m.node_of(0) == "a"
        assert m2.node_of(0) == "c"

    def test_with_swap(self):
        m = TaskMapping(["a", "b", "c"]).with_swap(0, 2)
        assert m.as_tuple() == ("c", "b", "a")

    def test_swap_out_of_range(self):
        with pytest.raises(InvalidMappingError):
            TaskMapping(["a"]).with_swap(0, 5)

    def test_assignment_out_of_range(self):
        with pytest.raises(InvalidMappingError):
            TaskMapping(["a"]).with_assignment(3, "b")


class TestEqualityHashing:
    def test_equal_mappings_hash_equal(self):
        assert TaskMapping(["a", "b"]) == TaskMapping(["a", "b"])
        assert hash(TaskMapping(["a", "b"])) == hash(TaskMapping(["a", "b"]))

    def test_order_matters(self):
        assert TaskMapping(["a", "b"]) != TaskMapping(["b", "a"])

    def test_usable_in_sets(self):
        s = {TaskMapping(["a", "b"]), TaskMapping(["a", "b"]), TaskMapping(["b", "a"])}
        assert len(s) == 2
