"""Integration tests for the daemon's online-remapping surface.

Exercises ``POST /v1/remap/watch``, ``GET /v1/remap/decisions`` and
``POST /v1/load`` through the blocking client against an in-process
:class:`~repro.server.daemon.DaemonThread` — the same sequence the CI
smoke runs: register a watch, inject drift, and wait for the recorded
cost/benefit decision.
"""

import pytest

from repro.cluster import single_switch
from repro.core import CBES
from repro.server import DaemonThread, ServerError
from repro.workloads import LU

NPROCS = 4


def make_service():
    service = CBES(single_switch("watchy", 8))
    service.calibrate(seed=2)
    app = LU("A")
    service.profile_application(app, NPROCS, seed=1)
    return service, app.name


@pytest.fixture()
def server():
    service, app_name = make_service()
    with DaemonThread(service, workers=2) as srv:
        srv.app_name = app_name
        yield srv


@pytest.fixture()
def client(server):
    return server.client()


class TestValidation:
    def test_unknown_app_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.remap_watch("nope.X", ["watchy-n00"])
        assert excinfo.value.status == 400

    def test_unknown_mapping_node_400(self, client, server):
        with pytest.raises(ServerError) as excinfo:
            client.remap_watch(server.app_name, ["watchy-n00", "mars-n01"])
        assert excinfo.value.status == 400

    def test_wrong_rank_count_400(self, client, server):
        with pytest.raises(ServerError) as excinfo:
            client.remap_watch(server.app_name, ["watchy-n00", "watchy-n01"])
        assert excinfo.value.status == 400
        assert "mapping rejected" in excinfo.value.message

    def test_bad_knobs_400(self, client, server):
        nodes = [f"watchy-n{i:02d}" for i in range(NPROCS)]
        for kwargs in (
            {"interval_s": 0.0},
            {"threshold": -0.1},
            {"hysteresis": 2.0},
            {"max_ticks": 0},
        ):
            with pytest.raises(ServerError) as excinfo:
                client.remap_watch(server.app_name, nodes, **kwargs)
            assert excinfo.value.status == 400

    def test_unknown_field_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/remap/watch", {"app": "x", "frobnicate": 1})
        assert excinfo.value.status == 400

    def test_load_validation_400(self, client):
        for body in (
            {},
            {"events": []},
            {"events": [{"node": "mars-n00", "cpu_load": 1.0}]},
            {"events": [{"node": "watchy-n00", "cpu_load": -1.0}]},
            {"events": [{"node": "watchy-n00", "warp": 9}]},
        ):
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/v1/load", body)
            assert excinfo.value.status == 400

    def test_methods_405(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/v1/load")
        assert excinfo.value.status == 405
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/remap/decisions", {})
        assert excinfo.value.status == 405


class TestWatchLoop:
    def test_drifted_watch_records_remap_decision(self, client, server):
        nodes = [f"watchy-n{i:02d}" for i in range(NPROCS)]
        watch = client.remap_watch(
            server.app_name,
            nodes,
            interval_s=0.02,
            max_ticks=200,
            seed=5,
        )
        assert watch["id"] == "w0001"
        assert watch["mapping"] == nodes
        assert watch["baseline_s"] > 0.0
        assert [w["id"] for w in client.remap_watches()] == ["w0001"]

        result = client.inject_load(
            [{"node": n, "cpu_load": 1.5} for n in nodes]
        )
        assert len(result["applied"]) == NPROCS

        decision = client.wait_decision(watch["id"], timeout_s=30.0)
        assert decision["watch_id"] == watch["id"]
        assert decision["app"] == server.app_name
        assert decision["remap"] is True
        assert decision["drift"] > 0.10
        assert decision["current"] == nodes
        assert set(decision["candidate"]).isdisjoint(nodes)
        assert decision["savings_s"] > decision["migration_cost_s"]
        assert len(decision["moves"]) == NPROCS
        assert decision["snapshot_fingerprint"]

        # The watch adopted the candidate and rebased its baseline.
        state = next(w for w in client.remap_watches() if w["id"] == watch["id"])
        assert state["remaps"] == 1
        assert state["mapping"] == decision["candidate"]

        health = client.healthz()
        assert health["remap_watches"] == 1
        assert health["remap_decisions"] >= 1

        metrics = client.metrics_text()
        assert 'cbes_remap_decisions_total{decision="remap"} 1' in metrics
        assert "cbes_remap_drift_events_total 1" in metrics
        assert "cbes_remap_migration_seconds_total" in metrics

    def test_steady_watch_finishes_without_decisions(self, client, server):
        nodes = [f"watchy-n{i:02d}" for i in range(NPROCS)]
        watch = client.remap_watch(
            server.app_name, nodes, interval_s=0.02, max_ticks=5
        )
        with pytest.raises(TimeoutError):
            client.wait_decision(watch["id"], timeout_s=30.0)
        state = next(w for w in client.remap_watches() if w["id"] == watch["id"])
        assert state["done"] is True
        assert state["ticks"] == 5
        assert state["drift_events"] == 0
        assert client.remap_decisions() == []

    def test_decisions_limit_query(self, client):
        assert client.remap_decisions(limit=3) == []
