"""Deeper engine tests: protocol boundaries, ordering, accounting."""

import pytest

from repro.profiling import TimeCategory, TraceAnalyzer
from repro.simulate import (
    ClusterSimulator,
    Compute,
    Exchange,
    Program,
    Recv,
    Send,
    SendRecv,
    SimulationConfig,
)
from tests.conftest import make_tiny_cluster

EXACT = SimulationConfig(jitter=0.0, contention=False)


@pytest.fixture(scope="module")
def cluster():
    c = make_tiny_cluster(4)
    c.use_exact_latency_model()
    return c


@pytest.fixture(scope="module")
def sim(cluster):
    return ClusterSimulator(cluster, EXACT)


def mapping(cluster, n):
    ids = cluster.node_ids()[:n]
    return {r: ids[r] for r in range(n)}


class TestEagerRendezvousBoundary:
    def test_threshold_is_inclusive(self, cluster):
        cfg = SimulationConfig(jitter=0.0, contention=False, eager_threshold_bytes=1000.0)
        sim = ClusterSimulator(cluster, cfg)
        m = mapping(cluster, 2)
        # At exactly the threshold the send is eager: the sender
        # finishes long before the receiver posts.
        prog = Program("p", 2, [[Send(1, 1000.0)], [Compute(1.0), Recv(0, 1000.0)]])
        res = sim.run(prog, m)
        assert res.rank_end_times[0] < 0.5

    def test_above_threshold_rendezvous(self, cluster):
        cfg = SimulationConfig(jitter=0.0, contention=False, eager_threshold_bytes=1000.0)
        sim = ClusterSimulator(cluster, cfg)
        m = mapping(cluster, 2)
        prog = Program("p", 2, [[Send(1, 1001.0)], [Compute(1.0), Recv(0, 1001.0)]])
        res = sim.run(prog, m)
        # Rendezvous: the sender waits for the receiver's compute.
        assert res.rank_end_times[0] > 0.5

    def test_zero_threshold_all_rendezvous(self, cluster):
        cfg = SimulationConfig(jitter=0.0, contention=False, eager_threshold_bytes=0.0)
        sim = ClusterSimulator(cluster, cfg)
        m = mapping(cluster, 2)
        prog = Program("p", 2, [[Send(1, 8.0)], [Compute(1.0), Recv(0, 8.0)]])
        res = sim.run(prog, m)
        assert res.rank_end_times[0] > 0.5

    def test_mixed_protocol_ordering_preserved(self, cluster, sim):
        # Eager then rendezvous on the same channel must match in order.
        big = 10e6
        prog = Program(
            "p",
            2,
            [[Send(1, 100.0), Send(1, big)], [Recv(0, 100.0), Recv(0, big)]],
        )
        res = sim.run(prog, mapping(cluster, 2))
        sizes = [msg.size_bytes for msg in res.trace.messages]
        assert sizes == [100.0, big]

    def test_many_queued_eager_sends(self, cluster, sim):
        # A sender can run far ahead with eager messages.
        n = 20
        prog = Program(
            "p",
            2,
            [
                [Send(1, 64.0) for _ in range(n)],
                [Compute(0.5)] + [Recv(0, 64.0) for _ in range(n)],
            ],
        )
        res = sim.run(prog, mapping(cluster, 2))
        assert res.messages_delivered == n
        assert res.rank_end_times[0] < 0.1


class TestExchangeSemantics:
    def test_exchange_with_asymmetric_sizes(self, cluster, sim):
        prog = Program(
            "p", 2, [[Exchange(1, 1e6, 100.0)], [Exchange(0, 100.0, 1e6)]]
        )
        res = sim.run(prog, mapping(cluster, 2))
        assert res.messages_delivered == 2
        sizes = sorted(m.size_bytes for m in res.trace.messages)
        assert sizes == [100.0, 1e6]

    def test_sendrecv_to_distinct_peers(self, cluster, sim):
        # rank1 relays: receives from 0 while sending to 2.
        prog = Program(
            "p",
            3,
            [
                [Send(1, 1e6)],
                [SendRecv(2, 1e6, 0, 1e6)],
                [Recv(1, 1e6)],
            ],
        )
        res = sim.run(prog, mapping(cluster, 3))
        assert res.messages_delivered == 2


class TestAccountingInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_accounted_time_bounded_by_wall(self, cluster, seed):
        sim = ClusterSimulator(cluster, SimulationConfig(jitter=0.02))
        prog = Program("p", 4)
        for r in range(4):
            prog.ops[r].append(Compute(0.2 * (r + 1)))
            prog.ops[r].append(SendRecv((r + 1) % 4, 5e5, (r - 1) % 4, 5e5))
            prog.ops[r].append(Compute(0.1))
        res = sim.run(prog, mapping(cluster, 4), seed=seed)
        for rank in range(4):
            accounted = sum(
                res.trace.time_in(rank, cat)
                for cat in (TimeCategory.OWN_CODE, TimeCategory.MPI_OVERHEAD, TimeCategory.BLOCKED)
            )
            assert accounted <= res.rank_end_times[rank] + 1e-9

    def test_messages_delivered_matches_program(self, cluster, sim):
        prog = Program("p", 4)
        for r in range(4):
            prog.ops[r].append(SendRecv((r + 1) % 4, 100.0, (r - 1) % 4, 100.0))
        res = sim.run(prog, mapping(cluster, 4))
        assert res.messages_delivered == prog.total_messages == 4

    def test_same_node_communication_fast(self, cluster, sim):
        node = cluster.node_ids()[0]
        prog = Program("p", 2, [[Send(1, 1e6)], [Recv(0, 1e6)]])
        res_local = sim.run(prog, {0: node, 1: node})
        res_remote = sim.run(prog, mapping(cluster, 2))
        assert res_local.total_time < res_remote.total_time / 5

    def test_trace_mapping_copied(self, cluster, sim):
        prog = Program("p", 1, [[Compute(0.1)]])
        m = mapping(cluster, 1)
        res = sim.run(prog, m)
        assert res.trace.mapping == m
        assert res.mapping == m

    def test_run_does_not_mutate_node_state(self, cluster, sim):
        prog = Program("p", 2, [[Send(1, 1e6)], [Recv(0, 1e6)]])
        before = {nid: (n.background_load, n.nic_load) for nid, n in cluster.nodes.items()}
        sim.run(prog, mapping(cluster, 2))
        after = {nid: (n.background_load, n.nic_load) for nid, n in cluster.nodes.items()}
        assert before == after


class TestAnalyzerEngineConsistency:
    def test_lambda_below_one_for_exchange(self, cluster, sim):
        """Full-duplex exchanges overlap -> lambda < 1 (paper's range)."""
        prog = Program("p", 2)
        for _ in range(10):
            prog.ops[0].append(Exchange(1, 1e6, 1e6))
            prog.ops[1].append(Exchange(0, 1e6, 1e6))
        res = sim.run(prog, mapping(cluster, 2))
        prof = TraceAnalyzer(cluster.latency_model).analyze(
            res.trace, profile_speeds={0: 1.0, 1: 1.0}
        )
        assert prof.process(0).lam < 1.0

    def test_lambda_above_one_for_serialized(self, cluster, sim):
        """Strictly serialized request/response -> lambda >= 1."""
        prog = Program("p", 2)
        for _ in range(10):
            prog.ops[0] += [Send(1, 1e6), Recv(1, 1e6)]
            prog.ops[1] += [Recv(0, 1e6), Send(0, 1e6)]
        res = sim.run(prog, mapping(cluster, 2))
        prof = TraceAnalyzer(cluster.latency_model).analyze(
            res.trace, profile_speeds={0: 1.0, 1: 1.0}
        )
        assert prof.process(0).lam >= 0.95
