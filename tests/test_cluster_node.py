"""Tests for repro.cluster.node."""

import pytest

from repro.cluster.node import (
    ALPHA_533,
    INTEL_PII_400,
    SPARC_500,
    Architecture,
    NICSpec,
    Node,
)


class TestArchitecture:
    def test_builtin_speed_ordering(self):
        # The paper's zones require Alpha > PII > SPARC for typical codes.
        assert ALPHA_533.base_speed > INTEL_PII_400.base_speed > SPARC_500.base_speed

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Architecture("", 1.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            Architecture("x", 0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ALPHA_533.base_speed = 2.0  # type: ignore[misc]


class TestNICSpec:
    def test_defaults_fast_ethernet(self):
        nic = NICSpec()
        assert nic.bandwidth_bps == 100e6

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            NICSpec(bandwidth_bps=0)

    def test_rejects_bad_overhead(self):
        with pytest.raises(ValueError):
            NICSpec(send_overhead_s=-1e-6)


class TestNode:
    def test_basic_construction(self):
        node = Node("n1", ALPHA_533)
        assert node.ncpus == 1
        assert node.background_load == 0.0

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            Node("", ALPHA_533)

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            Node("n1", ALPHA_533, ncpus=0)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            Node("n1", ALPHA_533, background_load=-0.1)

    def test_set_background_load_above_one_allowed(self):
        # CPU-equivalents may exceed 1 (oversubscription / multi-CPU).
        node = Node("n1", INTEL_PII_400, ncpus=2)
        node.set_background_load(1.5)
        assert node.background_load == 1.5

    def test_set_nic_load_bounds(self):
        node = Node("n1", ALPHA_533)
        node.set_nic_load(0.5)
        assert node.nic_load == 0.5
        with pytest.raises(ValueError):
            node.set_nic_load(1.5)


class TestCpuAvailability:
    def test_idle_single_cpu_full(self):
        assert Node("n", ALPHA_533).cpu_availability == 1.0

    def test_loaded_single_cpu_shares(self):
        node = Node("n", ALPHA_533)
        node.set_background_load(0.5)
        # demand = 1.5 on one CPU -> the incoming process gets 1/1.5.
        assert node.cpu_availability == pytest.approx(1 / 1.5)

    def test_dual_cpu_absorbs_one_load_unit(self):
        node = Node("n", INTEL_PII_400, ncpus=2)
        node.set_background_load(1.0)
        # demand = 2.0 on two CPUs -> still a full CPU each.
        assert node.cpu_availability == 1.0

    def test_dual_cpu_saturates_past_capacity(self):
        node = Node("n", INTEL_PII_400, ncpus=2)
        node.set_background_load(3.0)
        assert node.cpu_availability == pytest.approx(2 / 4)

    def test_availability_monotone_in_load(self):
        node = Node("n", ALPHA_533)
        previous = 1.1
        for load in (0.0, 0.1, 0.5, 1.0):
            node.set_background_load(load)
            assert node.cpu_availability <= previous
            previous = node.cpu_availability


class TestSpeedFor:
    def test_defaults_to_arch_base(self):
        assert Node("n", ALPHA_533).speed_for() == ALPHA_533.base_speed

    def test_uses_measured_ratio_when_present(self):
        node = Node("n", ALPHA_533)
        assert node.speed_for({"alpha-533": 2.0}) == 2.0

    def test_ignores_other_arch_ratios(self):
        node = Node("n", ALPHA_533)
        assert node.speed_for({"pii-400": 2.0}) == ALPHA_533.base_speed

    def test_rejects_nonpositive_ratio(self):
        node = Node("n", ALPHA_533)
        with pytest.raises(ValueError):
            node.speed_for({"alpha-533": 0.0})
