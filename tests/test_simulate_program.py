"""Tests for the program IR and its validation."""

import pytest

from repro.simulate.program import (
    Compute,
    Exchange,
    Marker,
    Program,
    Recv,
    Send,
    SendRecv,
)


class TestOps:
    def test_compute_validation(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_send_recv_validation(self):
        with pytest.raises(ValueError):
            Send(-1, 10)
        with pytest.raises(ValueError):
            Send(0, -10)
        with pytest.raises(ValueError):
            Recv(-1, 10)

    def test_exchange_validation(self):
        with pytest.raises(ValueError):
            Exchange(-1, 10, 10)
        with pytest.raises(ValueError):
            Exchange(0, -1, 10)

    def test_sendrecv_validation(self):
        with pytest.raises(ValueError):
            SendRecv(-1, 10, 0, 10)
        with pytest.raises(ValueError):
            SendRecv(1, 10, 0, -1)

    def test_ops_frozen(self):
        with pytest.raises(AttributeError):
            Compute(1.0).work = 2.0  # type: ignore[misc]


class TestProgram:
    def test_empty_streams_created(self):
        prog = Program("p", 3)
        assert len(prog.ops) == 3
        assert all(s == [] for s in prog.ops)

    def test_stream_count_checked(self):
        with pytest.raises(ValueError):
            Program("p", 2, [[Compute(1.0)]])

    def test_rank_ops_bounds(self):
        prog = Program("p", 2)
        with pytest.raises(ValueError):
            prog.rank_ops(2)


class TestValidate:
    def test_balanced_program_passes(self):
        prog = Program("p", 2, [[Send(1, 10)], [Recv(0, 10)]])
        prog.validate()

    def test_unbalanced_channel_rejected(self):
        prog = Program("p", 2, [[Send(1, 10), Send(1, 10)], [Recv(0, 10)]])
        with pytest.raises(ValueError, match="unbalanced"):
            prog.validate()

    def test_self_send_rejected(self):
        prog = Program("p", 2, [[Send(0, 10)], []])
        with pytest.raises(ValueError, match="itself"):
            prog.validate()

    def test_out_of_range_rank_rejected(self):
        prog = Program("p", 2, [[Send(5, 10)], []])
        with pytest.raises(ValueError, match="rank 5"):
            prog.validate()

    def test_exchange_counts_both_directions(self):
        prog = Program("p", 2, [[Exchange(1, 10, 10)], [Exchange(0, 10, 10)]])
        prog.validate()

    def test_exchange_missing_counterpart(self):
        prog = Program("p", 2, [[Exchange(1, 10, 10)], []])
        with pytest.raises(ValueError, match="unbalanced"):
            prog.validate()

    def test_sendrecv_balance(self):
        # 3-ring of SendRecv: every channel balanced.
        prog = Program("p", 3)
        for r in range(3):
            prog.ops[r].append(SendRecv((r + 1) % 3, 10, (r - 1) % 3, 10))
        prog.validate()


class TestAccounting:
    def test_total_work(self):
        prog = Program("p", 2, [[Compute(1.0), Compute(2.0)], [Compute(3.0)]])
        assert prog.total_work == 6.0

    def test_total_messages(self):
        prog = Program(
            "p",
            2,
            [
                [Send(1, 10), Exchange(1, 5, 5), Marker()],
                [Recv(0, 10), Exchange(0, 5, 5)],
            ],
        )
        # Send=1, each Exchange counts once per issuing rank (2 total).
        assert prog.total_messages == 3
