"""Tests for sensors, SystemMonitor, snapshots, and load injection."""

import pytest

from repro.cluster.node import ALPHA_533, Node
from repro.monitoring.load import LoadEvent, LoadGenerator
from repro.monitoring.monitor import SystemMonitor
from repro.monitoring.sensors import CpuSensor, NicSensor
from repro.monitoring.snapshot import NodeState, SystemSnapshot
from tests.conftest import make_tiny_cluster


class TestSensors:
    def test_noise_free_reads_truth(self):
        node = Node("n", ALPHA_533)
        node.set_background_load(0.3)
        node.set_nic_load(0.2)
        assert CpuSensor(node, noise=0.0).read() == 0.3
        assert NicSensor(node, noise=0.0).read() == 0.2

    def test_noisy_reads_clipped(self):
        node = Node("n", ALPHA_533)
        cpu = CpuSensor(node, noise=0.5, seed=1)
        nic = NicSensor(node, noise=0.5, seed=1)
        for _ in range(50):
            assert cpu.read() >= 0.0
            assert 0.0 <= nic.read() <= 1.0

    def test_read_counter(self):
        node = Node("n", ALPHA_533)
        sensor = CpuSensor(node)
        for _ in range(3):
            sensor.read()
        assert sensor.reads == 3

    def test_deterministic_per_seed(self):
        node = Node("n", ALPHA_533)
        node.set_background_load(0.4)
        a = [CpuSensor(node, seed=7).read() for _ in range(1)]
        b = [CpuSensor(node, seed=7).read() for _ in range(1)]
        assert a == b


class TestSnapshot:
    def test_unloaded(self):
        snap = SystemSnapshot.unloaded(["a", "b"])
        assert snap.acpu("a") == 1.0
        assert snap.background_load("b") == 0.0

    def test_from_cluster_reads_truth(self):
        cluster = make_tiny_cluster()
        cluster.node("n00").set_background_load(0.5)
        snap = SystemSnapshot.from_cluster(cluster)
        assert snap.background_load("n00") == 0.5
        assert snap.acpu("n00") == pytest.approx(1 / 1.5)

    def test_acpu_with_multiple_mapped_procs(self):
        snap = SystemSnapshot(states={"a": NodeState(0.0)}, ncpus={"a": 2})
        assert snap.acpu("a", mapped_procs=2) == 1.0
        assert snap.acpu("a", mapped_procs=4) == pytest.approx(0.5)

    def test_unknown_node_defaults(self):
        snap = SystemSnapshot.unloaded(["a"])
        assert snap.acpu("ghost") == 1.0
        assert snap.nic_load("ghost") == 0.0

    def test_with_load_copy(self):
        snap = SystemSnapshot.unloaded(["a"])
        loaded = snap.with_load("a", 0.4, 0.1)
        assert snap.background_load("a") == 0.0
        assert loaded.background_load("a") == 0.4
        assert loaded.nic_load("a") == 0.1


class TestSystemMonitor:
    def test_snapshot_requires_poll(self):
        monitor = SystemMonitor(make_tiny_cluster())
        with pytest.raises(RuntimeError):
            monitor.snapshot()

    def test_last_value_tracks_load(self):
        cluster = make_tiny_cluster()
        monitor = SystemMonitor(cluster, forecaster="last-value", sensor_noise=0.0)
        cluster.node("n01").set_background_load(0.6)
        monitor.poll()
        snap = monitor.snapshot()
        assert snap.background_load("n01") == pytest.approx(0.6)
        assert snap.background_load("n00") == 0.0

    def test_forecaster_lag_after_change(self):
        # A sliding-mean monitor needs several polls to converge — the
        # effect behind the paper's phase-3 staleness findings.
        cluster = make_tiny_cluster()
        monitor = SystemMonitor(cluster, forecaster="mean", sensor_noise=0.0)
        monitor.poll(rounds=10)
        cluster.node("n00").set_background_load(1.0)
        monitor.poll()
        assert monitor.snapshot().background_load("n00") < 0.5
        monitor.poll(rounds=20)
        assert monitor.snapshot().background_load("n00") > 0.9

    def test_snapshot_timestamp_advances(self):
        monitor = SystemMonitor(make_tiny_cluster(), period_s=5.0)
        monitor.poll(rounds=3)
        assert monitor.snapshot().timestamp == pytest.approx(15.0)
        assert monitor.polls == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SystemMonitor(make_tiny_cluster(), period_s=0.0)
        monitor = SystemMonitor(make_tiny_cluster())
        with pytest.raises(ValueError):
            monitor.poll(rounds=0)


class TestLoadGenerator:
    def test_apply_and_restore(self):
        cluster = make_tiny_cluster()
        gen = LoadGenerator(cluster)
        with gen.loaded([LoadEvent("n00", cpu_load=0.5, nic_load=0.2)]):
            assert cluster.node("n00").background_load == 0.5
            assert cluster.node("n00").nic_load == 0.2
        assert cluster.node("n00").background_load == 0.0
        assert cluster.node("n00").nic_load == 0.0

    def test_restore_even_on_exception(self):
        cluster = make_tiny_cluster()
        gen = LoadGenerator(cluster)
        with pytest.raises(RuntimeError):
            with gen.loaded([LoadEvent("n00", cpu_load=0.9)]):
                raise RuntimeError("boom")
        assert cluster.node("n00").background_load == 0.0

    def test_random_events_distinct_nodes(self):
        cluster = make_tiny_cluster(4)
        events = LoadGenerator(cluster, seed=1).random_events(3, cpu_range=(0.1, 0.4))
        assert len({e.node_id for e in events}) == 3
        assert all(0.1 <= e.cpu_load <= 0.4 for e in events)

    def test_random_events_too_many(self):
        cluster = make_tiny_cluster(2)
        with pytest.raises(ValueError):
            LoadGenerator(cluster).random_events(5)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            LoadEvent("n", cpu_load=-0.1)
        with pytest.raises(ValueError):
            LoadEvent("n", nic_load=1.5)

    def test_clear(self):
        cluster = make_tiny_cluster()
        gen = LoadGenerator(cluster)
        gen.apply([LoadEvent("n00", cpu_load=0.7)])
        gen.clear()
        assert cluster.node("n00").background_load == 0.0
