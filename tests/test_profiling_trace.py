"""Tests for trace records and the ExecutionTrace container."""

import pytest

from repro.profiling.events import MessageRecord, TimeCategory, TimeRecord
from repro.profiling.trace import ExecutionTrace


@pytest.fixture
def trace():
    return ExecutionTrace("app", 3, {0: "na", 1: "nb", 2: "nc"})


class TestRecords:
    def test_time_record_validation(self):
        with pytest.raises(ValueError):
            TimeRecord(-1, TimeCategory.OWN_CODE, 0.0, 1.0)
        with pytest.raises(ValueError):
            TimeRecord(0, TimeCategory.OWN_CODE, 0.0, -1.0)
        with pytest.raises(ValueError):
            TimeRecord(0, TimeCategory.OWN_CODE, -1.0, 1.0)

    def test_message_record_validation(self):
        with pytest.raises(ValueError):
            MessageRecord(0, 0, 10, 0.0, 1.0)  # self message
        with pytest.raises(ValueError):
            MessageRecord(0, 1, -1, 0.0, 1.0)
        with pytest.raises(ValueError):
            MessageRecord(0, 1, 10, 2.0, 1.0)  # recv before send

    def test_categories_match_paper_symbols(self):
        assert TimeCategory.OWN_CODE.value == "X"
        assert TimeCategory.MPI_OVERHEAD.value == "O"
        assert TimeCategory.BLOCKED.value == "B"


class TestExecutionTrace:
    def test_mapping_must_cover_ranks(self):
        with pytest.raises(ValueError):
            ExecutionTrace("app", 2, {0: "na"})
        with pytest.raises(ValueError):
            ExecutionTrace("app", 2, {0: "na", 2: "nb"})

    def test_zero_duration_slices_dropped(self, trace):
        trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 0.0)
        assert trace.time_records == []

    def test_time_in_accumulates(self, trace):
        trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 1.0)
        trace.record_time(0, TimeCategory.OWN_CODE, 2.0, 3.0)
        trace.record_time(0, TimeCategory.BLOCKED, 1.0, 1.0)
        trace.record_time(1, TimeCategory.OWN_CODE, 0.0, 9.0)
        assert trace.time_in(0, TimeCategory.OWN_CODE) == 4.0
        assert trace.time_in(0, TimeCategory.BLOCKED) == 1.0
        assert trace.time_in(0, TimeCategory.MPI_OVERHEAD) == 0.0

    def test_time_in_per_segment(self, trace):
        trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 1.0, segment=0)
        trace.record_time(0, TimeCategory.OWN_CODE, 1.0, 2.0, segment=1)
        assert trace.time_in(0, TimeCategory.OWN_CODE, segment=1) == 2.0
        assert trace.segments == [0, 1]

    def test_message_filters(self, trace):
        trace.record_message(0, 1, 100, 0.0, 0.1)
        trace.record_message(1, 0, 200, 0.2, 0.3)
        trace.record_message(0, 2, 300, 0.4, 0.5)
        assert [m.size_bytes for m in trace.messages_from(0)] == [100, 300]
        assert [m.size_bytes for m in trace.messages_to(0)] == [200]

    def test_rank_bounds_checked(self, trace):
        with pytest.raises(ValueError):
            trace.record_time(3, TimeCategory.OWN_CODE, 0.0, 1.0)
        with pytest.raises(ValueError):
            trace.record_message(0, 5, 10, 0.0, 1.0)

    def test_finish_seals(self, trace):
        assert trace.total_time is None
        trace.finish(12.5)
        assert trace.total_time == 12.5
        with pytest.raises(ValueError):
            trace.finish(-1.0)
