"""Tests for the profile database and trace export tooling."""

import json

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.profiling import (
    ProfileDatabase,
    TimeCategory,
    gantt,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
    utilization,
)
from repro.profiling.trace import ExecutionTrace
from repro.workloads import SyntheticBenchmark


@pytest.fixture
def service():
    svc = CBES(single_switch("mini", 6))
    svc.calibrate(seed=2)
    return svc


@pytest.fixture
def app():
    return SyntheticBenchmark(comm_fraction=0.3, duration_s=2.0, steps=4)


class TestProfileDatabase:
    def test_latency_model_roundtrip(self, tmp_path, service):
        db = ProfileDatabase(tmp_path)
        model = service.cluster.latency_model
        db.save_latency_model("mini", model)
        loaded = db.load_latency_model("mini")
        for src, dst in model.pairs():
            assert loaded.no_load(src, dst, 4096) == model.no_load(src, dst, 4096)

    def test_missing_system_profile(self, tmp_path):
        with pytest.raises(KeyError):
            ProfileDatabase(tmp_path).load_latency_model("ghost")

    def test_profile_roundtrip(self, tmp_path, service, app):
        db = ProfileDatabase(tmp_path)
        profile = service.profile_application(app, 3, seed=1)
        db.save_profile(profile)
        loaded = db.load_profile(app.name)
        assert loaded.to_dict() == profile.to_dict()

    def test_applications_listing(self, tmp_path, service, app):
        db = ProfileDatabase(tmp_path)
        assert db.applications() == []
        db.save_profile(service.profile_application(app, 2, seed=1))
        assert db.applications() == [app.name]

    def test_delete_profile(self, tmp_path, service, app):
        db = ProfileDatabase(tmp_path)
        db.save_profile(service.profile_application(app, 2, seed=1))
        assert db.delete_profile(app.name)
        assert not db.delete_profile(app.name)
        assert db.applications() == []

    def test_foreign_files_ignored(self, tmp_path):
        db = ProfileDatabase(tmp_path)
        (tmp_path / "applications" / "junk.json").write_text("not json")
        (tmp_path / "applications" / "other.json").write_text(json.dumps({"x": 1}))
        assert db.applications() == []

    def test_snapshot_and_attach_service(self, tmp_path, service, app):
        db = ProfileDatabase(tmp_path)
        service.profile_application(app, 3, seed=1)
        assert db.snapshot_service(service) == 1
        # A brand new service on the same hardware reloads everything.
        fresh = CBES(single_switch("mini", 6))
        assert not fresh.cluster.is_calibrated
        loaded = db.attach(fresh)
        assert loaded == 1
        assert fresh.cluster.is_calibrated
        assert app.name in fresh.profiled_applications
        # ...and can evaluate immediately, without recalibration.
        mapping = TaskMapping(fresh.cluster.node_ids()[:3])
        assert fresh.evaluator(app.name).execution_time(mapping) > 0

    def test_attach_rejects_wrong_cluster(self, tmp_path, service):
        db = ProfileDatabase(tmp_path)
        db.snapshot_service(service)
        other = CBES(single_switch("mini", 8))  # two extra nodes
        with pytest.raises(ValueError, match="lacks nodes"):
            db.attach(other)

    def test_slug_sanitizes_names(self, tmp_path, service, app):
        db = ProfileDatabase(tmp_path)
        profile = service.profile_application(app, 2, seed=1)
        object.__setattr__  # (profiles are plain dataclasses; rename via dict)
        data = profile.to_dict()
        data["app_name"] = "weird/../name"
        from repro.profiling import ApplicationProfile

        weird = ApplicationProfile.from_dict(data)
        path = db.save_profile(weird)
        assert path.parent == tmp_path / "applications"
        assert "/" not in path.name.replace(".json", "")


class TestTraceExport:
    def make_trace(self):
        trace = ExecutionTrace("app", 2, {0: "a", 1: "b"})
        trace.record_time(0, TimeCategory.OWN_CODE, 0.0, 1.0)
        trace.record_time(0, TimeCategory.BLOCKED, 1.0, 0.5)
        trace.record_time(1, TimeCategory.OWN_CODE, 0.0, 1.2)
        trace.record_time(1, TimeCategory.MPI_OVERHEAD, 1.2, 0.1)
        trace.record_message(0, 1, 1024, 1.0, 1.4)
        trace.record_marker(0, 1.5, 1, "phase")
        trace.finish(1.5)
        return trace

    def test_dict_roundtrip(self):
        trace = self.make_trace()
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert trace_to_dict(rebuilt) == trace_to_dict(trace)

    def test_file_roundtrip(self, tmp_path):
        trace = self.make_trace()
        save_trace(trace, tmp_path / "t.json")
        loaded = load_trace(tmp_path / "t.json")
        assert loaded.total_time == trace.total_time
        assert len(loaded.messages) == 1

    def test_roundtrip_through_analyzer(self, tmp_path, service, app):
        mapping = TaskMapping(service.cluster.node_ids()[:3])
        result = service.simulator.run(
            app.program(3), mapping.as_dict(), seed=1, arch_affinity=app.arch_affinity
        )
        save_trace(result.trace, tmp_path / "run.json")
        loaded = load_trace(tmp_path / "run.json")
        from repro.profiling import TraceAnalyzer

        prof_a = TraceAnalyzer(service.cluster.latency_model).analyze(
            result.trace, profile_speeds={r: 1.0 for r in range(3)}
        )
        prof_b = TraceAnalyzer(service.cluster.latency_model).analyze(
            loaded, profile_speeds={r: 1.0 for r in range(3)}
        )
        assert prof_a.to_dict() == prof_b.to_dict()


class TestGantt:
    def test_renders_one_row_per_rank(self):
        trace = TestTraceExport().make_trace()
        chart = gantt(trace, width=40)
        lines = chart.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert lines[1].startswith("r0")
        assert "#" in lines[1] and "." in lines[1]

    def test_requires_sealed_trace(self):
        trace = ExecutionTrace("app", 1, {0: "a"})
        with pytest.raises(ValueError):
            gantt(trace)

    def test_width_validation(self):
        trace = TestTraceExport().make_trace()
        with pytest.raises(ValueError):
            gantt(trace, width=5)


class TestUtilization:
    def test_shares_sum_to_one(self):
        trace = TestTraceExport().make_trace()
        shares = utilization(trace)
        for rank in range(2):
            assert sum(shares[rank].values()) == pytest.approx(1.0)

    def test_values_match_records(self):
        trace = TestTraceExport().make_trace()
        shares = utilization(trace)
        assert shares[0]["X"] == pytest.approx(1.0 / 1.5)
        assert shares[0]["B"] == pytest.approx(0.5 / 1.5)
        assert shares[1]["O"] == pytest.approx(0.1 / 1.5)
