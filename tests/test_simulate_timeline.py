"""Tests for time-varying load timelines (the short-term-load story)."""

import pytest

from repro.cluster import single_switch
from repro.core import CBES, TaskMapping
from repro.simulate import Compute, Program
from repro.simulate.timeline import LoadTimeline
from repro.workloads import SyntheticBenchmark


class TestLoadTimeline:
    def test_static_when_no_points(self):
        tl = LoadTimeline(initial=0.5)
        assert tl.is_static
        assert tl.load_at(0.0) == 0.5
        assert tl.load_at(100.0) == 0.5

    def test_load_at_follows_breakpoints(self):
        tl = LoadTimeline([(10.0, 1.0), (20.0, 0.0)], initial=0.0)
        assert tl.load_at(5.0) == 0.0
        assert tl.load_at(10.0) == 1.0
        assert tl.load_at(19.9) == 1.0
        assert tl.load_at(25.0) == 0.0

    def test_share_at_uses_cpu_share(self):
        tl = LoadTimeline([(0.0, 1.0)], ncpus=1, mapped_procs=1)
        assert tl.share_at(1.0) == pytest.approx(0.5)

    def test_finish_time_constant_share(self):
        tl = LoadTimeline(initial=1.0)  # share = 0.5 throughout
        assert tl.finish_time(0.0, 10.0) == pytest.approx(20.0)

    def test_finish_time_integrates_across_breakpoints(self):
        # Full speed until t=10, then half speed.
        tl = LoadTimeline([(10.0, 1.0)], initial=0.0)
        # 15 cpu-seconds: 10 at full speed + 5 at half = 10 + 10 wall.
        assert tl.finish_time(0.0, 15.0) == pytest.approx(20.0)

    def test_short_burst_costs_only_its_deficit(self):
        # A 5-second full-load burst inside a 100-cpu-second run.
        tl = LoadTimeline([(10.0, 1.0), (15.0, 0.0)], initial=0.0)
        finish = tl.finish_time(0.0, 100.0)
        # Burst delivers 2.5 cpu-seconds over 5 wall-seconds: +2.5s total.
        assert finish == pytest.approx(102.5)

    def test_burst_before_start_ignored(self):
        tl = LoadTimeline([(1.0, 1.0), (2.0, 0.0)], initial=0.0)
        assert tl.finish_time(5.0, 10.0) == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTimeline(initial=-1.0)
        with pytest.raises(ValueError):
            LoadTimeline([(-1.0, 0.5)])
        with pytest.raises(ValueError):
            LoadTimeline([(0.0, -0.5)])
        with pytest.raises(ValueError):
            LoadTimeline(ncpus=0)
        tl = LoadTimeline()
        with pytest.raises(ValueError):
            tl.finish_time(-1.0, 1.0)


class TestEngineWithSchedules:
    @pytest.fixture
    def service(self):
        svc = CBES(single_switch("mini", 4))
        svc.calibrate(seed=1)
        return svc

    def test_schedule_slows_compute(self, service):
        node = service.cluster.node_ids()[0]
        prog = Program("p", 1, [[Compute(10.0)]])
        base = service.simulator.run(prog, {0: node}, seed=1).total_time
        service.cluster.node(node).set_load_schedule([(0.0, 1.0)])
        loaded = service.simulator.run(prog, {0: node}, seed=1).total_time
        service.cluster.clear_loads()
        assert loaded == pytest.approx(2 * base, rel=0.05)

    def test_short_burst_barely_moves_total(self, service):
        """The paper's tolerated 'instantaneous or short term loads'."""
        node = service.cluster.node_ids()[0]
        prog = Program("p", 1, [[Compute(50.0)]])
        base = service.simulator.run(prog, {0: node}, seed=1).total_time
        # A full-CPU hog for 2 simulated seconds in the middle of ~43s.
        service.cluster.node(node).set_load_schedule([(20.0, 1.0), (22.0, 0.0)])
        bursty = service.simulator.run(prog, {0: node}, seed=1).total_time
        service.cluster.clear_loads()
        assert bursty - base == pytest.approx(1.0, abs=0.3)  # half the burst span
        assert (bursty - base) / base < 0.05

    def test_schedule_cleared_with_clear_loads(self, service):
        node = service.cluster.node_ids()[0]
        service.cluster.node(node).set_load_schedule([(0.0, 1.0)])
        service.cluster.clear_loads()
        assert service.cluster.node(node).load_schedule is None

    def test_prediction_survives_short_burst_not_sustained_load(self, service):
        """Phase-3, both halves, via the standing prediction."""
        app = SyntheticBenchmark(comm_fraction=0.1, duration_s=40.0, steps=8, name="burst")
        mapping = TaskMapping(service.cluster.node_ids()[:4])
        service.profile_application(app, 4, mapping=mapping, seed=0)
        predicted = service.evaluator(app.name).execution_time(mapping)
        program = app.program(4)
        victim = mapping.node_of(0)

        def measured() -> float:
            return service.simulator.run(
                program, mapping.as_dict(), seed=5, arch_affinity=app.arch_affinity,
                collect_trace=False,
            ).total_time

        # Short burst: 3 simulated seconds of full load on one node.
        service.cluster.node(victim).set_load_schedule([(10.0, 1.0), (13.0, 0.0)])
        burst_err = abs(predicted - measured()) / measured() * 100
        service.cluster.clear_loads()
        # Sustained: the same load for the whole run.
        service.cluster.node(victim).set_background_load(1.0)
        sustained_err = abs(predicted - measured()) / measured() * 100
        service.cluster.clear_loads()
        assert burst_err < 6.0
        assert sustained_err > 4 * burst_err

    def test_schedule_validation(self, service):
        node = service.cluster.node(service.cluster.node_ids()[0])
        with pytest.raises(ValueError):
            node.set_load_schedule([(-1.0, 0.5)])
        with pytest.raises(ValueError):
            node.set_load_schedule([(0.0, -0.5)])
