"""Tests for the scheduling experiments (tables 1-4, figures 6-7 logic)."""

import pytest

from repro.core import CBES, TaskMapping
from repro.experiments.harness import ExperimentContext
from repro.experiments.scheduling import (
    average_case,
    lu_zones,
    sample_mapping_times,
    worst_vs_best,
)
from repro.schedulers.annealing import AnnealingSchedule
from repro.workloads import LU

FAST_SA = AnnealingSchedule(moves_per_temperature=25, steps=15, patience=5)


@pytest.fixture(scope="module")
def ctx(og_service):
    return ExperimentContext(og_service)


@pytest.fixture(scope="module")
def og_service():
    from repro.cluster import orange_grove

    cluster = orange_grove()
    service = CBES(cluster)
    service.calibrate(seed=1)
    service.profile_application(
        LU("A"), 8, mapping=TaskMapping(cluster.nodes_by_arch("alpha-533")), seed=0
    )
    return service


class TestZones:
    def test_three_zones_defined(self, ctx):
        zones = lu_zones(ctx.service.cluster)
        assert set(zones) == {"high", "medium", "low"}
        assert len(zones["high"].pool) == 8
        assert len(zones["medium"].pool) == 20
        assert len(zones["low"].pool) == 28

    def test_constraints(self, ctx):
        zones = lu_zones(ctx.service.cluster)
        cluster = ctx.service.cluster
        check = zones["medium"].constraint(cluster)
        all_alpha = TaskMapping(cluster.nodes_by_arch("alpha-533"))
        mixed = TaskMapping(
            cluster.nodes_by_arch("alpha-533")[:7] + cluster.nodes_by_arch("pii-400")[:1]
        )
        assert not check(all_alpha)
        assert check(mixed)
        assert zones["high"].constraint(cluster) is None

    def test_zone_ordering_in_measured_time(self, ctx):
        """Figure 6: the three zones are (mostly) disjoint time bands."""
        app = LU("A")
        zones = lu_zones(ctx.service.cluster)
        high = sample_mapping_times(ctx, app, zones["high"], samples=4, seed=1)
        medium = sample_mapping_times(ctx, app, zones["medium"], samples=4, seed=2)
        low = sample_mapping_times(ctx, app, zones["low"], samples=4, seed=3)
        assert max(high) < min(low)
        assert min(high) < min(medium) < min(low)

    def test_sample_count(self, ctx):
        zones = lu_zones(ctx.service.cluster)
        times = sample_mapping_times(ctx, LU("A"), zones["high"], samples=3, seed=1)
        assert len(times) == 3


class TestWorstVsBest:
    def test_lu_high_zone_speedup_band(self, ctx):
        """Table 1: within-zone speedups in the paper's 3-12 % band."""
        zones = lu_zones(ctx.service.cluster)
        result = worst_vs_best(
            ctx, LU("A"), zones["high"].pool, runs=3, seed=1, schedule=FAST_SA
        )
        assert result.best.mean < result.worst.mean
        assert 2.0 <= result.speedup_percent <= 15.0
        assert not result.uncertain
        assert result.scheduler_time_s > 0

    def test_constraint_applied(self, ctx):
        zones = lu_zones(ctx.service.cluster)
        cluster = ctx.service.cluster
        zone = zones["medium"]
        result = worst_vs_best(
            ctx,
            LU("A"),
            zone.pool,
            constraint=zone.constraint(cluster),
            runs=2,
            seed=2,
            schedule=FAST_SA,
        )
        arch_of = {n: cluster.node(n).arch.name for n in zone.pool}
        assert any(arch_of[n] == "pii-400" for n in result.best_mapping.nodes_used())


class TestAverageCase:
    def test_cs_dominates_ncs(self, ctx):
        """Table 2 shape: CS hit rate and measured time beat NCS."""
        zones = lu_zones(ctx.service.cluster)
        result = average_case(
            ctx, LU("A"), zones["high"].pool, nruns=6, seed=3, schedule=FAST_SA
        )
        assert result.cs.measured.mean <= result.ncs.measured.mean
        assert result.cs.hit_percent >= result.ncs.hit_percent
        assert result.measured_speedup_percent >= 0.0
        assert result.maximum_speedup_percent >= result.measured_speedup_percent - 3.0

    def test_run_counts(self, ctx):
        zones = lu_zones(ctx.service.cluster)
        result = average_case(
            ctx, LU("A"), zones["high"].pool, nruns=3, seed=4, schedule=FAST_SA
        )
        assert result.cs.predicted.runs == 3
        assert len(result.ncs.measured_times) == 3

    def test_nruns_validation(self, ctx):
        zones = lu_zones(ctx.service.cluster)
        with pytest.raises(ValueError):
            average_case(ctx, LU("A"), zones["high"].pool, nruns=0)
