"""Fast evaluation path: agreement with the reference, caching, wiring.

The central property: over randomized move sequences (swaps, replaces,
and colocating assignments), :class:`IncrementalEvaluator` must agree
with the reference ``MappingEvaluator.predict()`` to within 1e-9 — for
the full formula and for every ablation option combination.
"""

from __future__ import annotations

import itertools

import pytest

from repro._rng import Rng
from repro._util import spawn_rng
from repro.cluster import single_switch
from repro.cluster.latency import LOCAL_ALPHA_S, LatencyModel
from repro.core import CBES, EvaluationOptions, TaskMapping
from repro.core.fast_eval import EvaluationContext
from repro.monitoring.snapshot import NodeState, SystemSnapshot
from repro.schedulers.annealing import AnnealingSchedule, anneal, supports_incremental
from repro.schedulers.cs import CbesScheduler
from repro.schedulers.moves import MoveGenerator
from repro.workloads import LU

TOL = 1e-9

#: The ablation combinations named by the NCS/ablation studies.
OPTION_COMBOS = [
    EvaluationOptions(),
    EvaluationOptions(communication=False),
    EvaluationOptions(use_lambda=False),
    EvaluationOptions(load_adjusted_latency=False),
    EvaluationOptions(cpu_availability=False),
    EvaluationOptions(use_lambda=False, load_adjusted_latency=False),
    EvaluationOptions(communication=False, cpu_availability=False),
]


@pytest.fixture(scope="module")
def service() -> CBES:
    cluster = single_switch("fastpath", 8)
    service = CBES(cluster)
    service.calibrate(seed=2)
    app = LU("A")
    service.profile_application(app, 4, seed=0)
    # Heterogeneous load (after calibration, which requires an unloaded
    # system) so ACPU, NIC stretch, and colocation all matter.
    for i, nid in enumerate(cluster.node_ids()):
        cluster.node(nid).background_load = 0.4 * (i % 3)
        cluster.node(nid).nic_load = 0.1 * (i % 4)
    return service


@pytest.fixture(scope="module")
def app_name(service) -> str:
    return LU("A").name


def random_move(mapping: TaskMapping, pool: list[str], rng: Rng) -> TaskMapping:
    """Swap, replace, or colocate — richer than the scheduler move set."""
    kind = rng.random()
    nprocs = mapping.nprocs
    if kind < 0.4 and nprocs >= 2:
        a, b = rng.choice(nprocs, size=2, replace=False)
        return mapping.with_swap(int(a), int(b))
    rank = int(rng.integers(nprocs))
    if kind < 0.8:
        free = [n for n in pool if n not in mapping.nodes_used()]
        if free:
            return mapping.with_assignment(rank, free[int(rng.integers(len(free)))])
    # Colocating assignment: any pool node, possibly already occupied.
    return mapping.with_assignment(rank, pool[int(rng.integers(len(pool)))])


class TestAgreementProperty:
    @pytest.mark.parametrize("options", OPTION_COMBOS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_incremental_matches_reference_over_move_sequences(
        self, service, app_name, options, seed
    ):
        evaluator = service.evaluator(app_name, options=options)
        pool = service.cluster.node_ids()
        rng = spawn_rng(seed, "fast-eval-moves")
        inc = evaluator.incremental()
        mapping = TaskMapping(pool[:4])
        assert inc.reset(mapping) == pytest.approx(
            evaluator.execution_time(mapping), abs=TOL
        )
        for step in range(120):
            candidate = random_move(mapping, pool, rng)
            fast = inc.propose(candidate)
            ref = evaluator.execution_time(candidate)
            assert fast == pytest.approx(ref, abs=TOL), f"diverged at step {step}"
            if rng.random() < 0.6:
                inc.commit()
                mapping = candidate
            else:
                inc.reject()
        # Long-run state integrity: committed state equals a fresh eval.
        assert inc.execution_time == pytest.approx(
            evaluator.execution_time(mapping), abs=TOL
        )

    def test_stateless_call_matches_reference(self, service, app_name):
        evaluator = service.evaluator(app_name)
        pool = service.cluster.node_ids()
        inc = evaluator.incremental()
        for mapping in (
            TaskMapping(pool[:4]),
            TaskMapping([pool[0], pool[0], pool[0], pool[1]]),  # heavy colocation
        ):
            assert inc(mapping) == pytest.approx(evaluator.execution_time(mapping), abs=TOL)

    def test_full_vectorized_breakdown_matches_reference(self, service, app_name):
        evaluator = service.evaluator(app_name)
        pool = service.cluster.node_ids()
        mapping = TaskMapping([pool[0], pool[2], pool[2], pool[5]])
        context = evaluator.fast_context()
        r_arr, c_arr, _ = context.evaluate(mapping)
        prediction = evaluator.predict(mapping)
        for proc in prediction.processes:
            assert r_arr[proc.rank] == pytest.approx(proc.computation, abs=TOL)
            assert c_arr[proc.rank] == pytest.approx(proc.communication, abs=TOL)


class TestProposeCommitReject:
    def test_reject_preserves_state(self, service, app_name):
        evaluator = service.evaluator(app_name)
        pool = service.cluster.node_ids()
        inc = evaluator.incremental()
        base = TaskMapping(pool[:4])
        s0 = inc.reset(base)
        inc.propose(base.with_swap(0, 3))
        inc.reject()
        assert inc.execution_time == s0
        # A later propose against the same base still agrees.
        candidate = base.with_assignment(1, pool[6])
        assert inc.propose(candidate) == pytest.approx(
            evaluator.execution_time(candidate), abs=TOL
        )

    def test_commit_without_propose_raises(self, service, app_name):
        inc = service.evaluator(app_name).incremental()
        inc.reset(TaskMapping(service.cluster.node_ids()[:4]))
        inc.propose(TaskMapping(service.cluster.node_ids()[:4]).with_swap(0, 1))
        inc.commit()
        with pytest.raises(RuntimeError):
            inc.commit()

    def test_noop_propose_returns_current(self, service, app_name):
        inc = service.evaluator(app_name).incremental()
        base = TaskMapping(service.cluster.node_ids()[:4])
        s0 = inc.reset(base)
        assert inc.propose(TaskMapping(base.as_tuple())) == s0
        inc.commit()
        assert inc.execution_time == s0


class TestWiring:
    def test_incremental_counts_into_evaluator_metric(self, service, app_name):
        evaluator = service.evaluator(app_name)
        start = evaluator.evaluations
        inc = evaluator.incremental()
        base = TaskMapping(service.cluster.node_ids()[:4])
        inc.reset(base)
        inc.propose(base.with_swap(0, 1))
        inc.commit()
        inc(base)
        assert evaluator.evaluations == start + 3

    def test_with_snapshot_carries_evaluation_counter(self, service, app_name):
        evaluator = service.evaluator(app_name)
        base = TaskMapping(service.cluster.node_ids()[:4])
        evaluator.predict(base)
        count = evaluator.evaluations
        assert count >= 1
        fresh = evaluator.with_snapshot(service.snapshot())
        assert fresh.evaluations == count
        assert evaluator.with_options(EvaluationOptions()).evaluations == count

    def test_anneal_uses_incremental_protocol(self, service, app_name):
        evaluator = service.evaluator(app_name)
        pool = service.cluster.node_ids()
        inc = evaluator.incremental()
        assert supports_incremental(inc)
        assert not supports_incremental(evaluator.execution_time)
        rng = spawn_rng(3, "anneal-proto")
        schedule = AnnealingSchedule(moves_per_temperature=20, steps=12, patience=6)
        best_inc, energy_inc, _ = anneal(
            inc, TaskMapping(pool[:4]), MoveGenerator(pool), rng, schedule=schedule
        )
        rng = spawn_rng(3, "anneal-proto")
        best_ref, energy_ref, _ = anneal(
            evaluator.execution_time,
            TaskMapping(pool[:4]),
            MoveGenerator(pool),
            rng,
            schedule=schedule,
        )
        # Identical seeds and (to 1e-9) identical energies: the searches
        # converge to equally good basins on this small instance.
        assert energy_inc == pytest.approx(energy_ref, rel=0.02)
        assert energy_inc == pytest.approx(evaluator.execution_time(best_inc), abs=TOL)
        assert energy_ref == pytest.approx(evaluator.execution_time(best_ref), abs=TOL)

    def test_cs_fast_and_reference_paths_agree(self, service, app_name):
        pool = service.cluster.node_ids()
        schedule = AnnealingSchedule(moves_per_temperature=20, steps=12, patience=6)
        fast = service.schedule(app_name, CbesScheduler(schedule=schedule), pool, seed=11)
        slow_scheduler = CbesScheduler(schedule=schedule)
        slow_scheduler.use_fast_path = False
        slow = service.schedule(app_name, slow_scheduler, pool, seed=11)
        assert fast.predicted_time == pytest.approx(slow.predicted_time, rel=0.02)
        assert fast.evaluations > 100  # cost metric survives the fast path


class TestContextCache:
    def test_context_cached_per_snapshot_fingerprint(self, service, app_name):
        evaluator = service.evaluator(app_name)
        assert evaluator.fast_context() is evaluator.fast_context()
        other = evaluator.fast_context(EvaluationOptions(communication=False))
        assert other is not evaluator.fast_context()
        assert other is evaluator.fast_context(EvaluationOptions(communication=False))

    def test_snapshot_fingerprint_tracks_content(self):
        snap = SystemSnapshot(
            states={"a": NodeState(0.5, 0.1), "b": NodeState()}, ncpus={"a": 2, "b": 1}
        )
        same = SystemSnapshot(
            states={"b": NodeState(), "a": NodeState(0.5, 0.1)}, ncpus={"b": 1, "a": 2}
        )
        assert snap.fingerprint() == same.fingerprint()
        assert snap.freeze().fingerprint() == snap.fingerprint()
        assert snap.with_load("a", 0.9).fingerprint() != snap.fingerprint()

    def test_context_validity_check(self, service, app_name):
        evaluator = service.evaluator(app_name)
        context = evaluator.fast_context()
        snap = service.snapshot()
        assert context.is_valid_for(snap)
        assert not context.is_valid_for(snap.with_load(service.cluster.node_ids()[0], 2.5))


class TestLatencyBulkApi:
    def test_component_matrices_match_scalar_queries(self, service):
        pytest.importorskip("numpy")
        model: LatencyModel = service.cluster.latency_model
        hosts = sorted(model.hosts)
        a_src, a_dst, a_net, beta = model.component_matrices(hosts)
        for i, j in itertools.product(range(len(hosts)), repeat=2):
            pc = model.components(hosts[i], hosts[j])
            assert a_src[i, j] == pc.alpha_src
            assert a_dst[i, j] == pc.alpha_dst
            assert a_net[i, j] == pc.alpha_net
            assert beta[i, j] == pc.beta
        assert a_src[0, 0] == LOCAL_ALPHA_S

    def test_no_load_matrix_matches_scalar(self, service):
        pytest.importorskip("numpy")
        model: LatencyModel = service.cluster.latency_model
        hosts = sorted(model.hosts)[:4]
        matrix = model.no_load_matrix(hosts, 2048.0)
        for i, j in itertools.product(range(len(hosts)), repeat=2):
            assert matrix[i, j] == pytest.approx(
                model.no_load(hosts[i], hosts[j], 2048.0), abs=1e-15
            )

    def test_memoized_no_load_lookup(self, service, app_name):
        evaluator = service.evaluator(app_name)
        context: EvaluationContext = evaluator.fast_context()
        hosts = context.node_ids
        first = context.no_load(hosts[0], hosts[1], 4096.0)
        model = service.cluster.latency_model
        assert first == pytest.approx(model.no_load(hosts[0], hosts[1], 4096.0), abs=1e-15)
        assert context.no_load(hosts[0], hosts[1], 4096.0) == first  # served from the table


class TestFalsyZeroAcpuRegression:
    def test_zero_acpu_is_not_silently_replaced(self, service, app_name):
        """A legitimate acpu == 0.0 entry must reach the latency model.

        The old ``acpu.get(src) or snapshot.acpu(src)`` treated 0.0 as
        missing and silently substituted the colocation-unaware snapshot
        value; the latency model then accepted the wrong operating
        point.  With the membership check the 0.0 propagates and the
        model rejects it loudly (acpu must be in (0, 1]).
        """

        class SaturatedSnapshot(SystemSnapshot):
            def acpu(self, node_id: str, mapped_procs: int = 1) -> float:
                # Fully loaded once co-mapped; healthy-looking otherwise
                # (so the colocation-unaware fallback value differs).
                return 0.0 if mapped_procs >= 2 else 0.8

        base = service.evaluator(app_name)
        saturated = SaturatedSnapshot(
            states=dict(service.snapshot().states), ncpus=dict(service.snapshot().ncpus)
        )
        evaluator = base.with_snapshot(saturated)
        pool = service.cluster.node_ids()
        # Rank 0 sits alone on a healthy node; its neighbour peers share
        # a saturated node.  Rank 0's theta is evaluated first, so the
        # 0.0 entry is exercised through latency_fn before any R_i
        # division can trip over it.
        # The old `or` fallback would silently swap in 0.8 here and only
        # crash later (ZeroDivisionError in rank 1's R_i); the membership
        # check propagates the 0.0 and fails loudly at the latency model.
        colocated = TaskMapping([pool[0], pool[1], pool[1], pool[2]])
        with pytest.raises(ValueError, match="acpu"):
            evaluator.predict(colocated)
