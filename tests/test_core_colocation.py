"""Tests for shared-cluster reservations and co-scheduling + NPB FT."""

import pytest

from repro.cluster import orange_grove, single_switch
from repro.core import CBES, CbesError, ClusterReservations, Reservation, TaskMapping
from repro.schedulers import AnnealingSchedule, CbesScheduler
from repro.workloads import FT, LU, SyntheticBenchmark

FAST_SA = AnnealingSchedule(moves_per_temperature=20, steps=12, patience=4)


class TestReservation:
    def test_validation(self):
        m = TaskMapping(["a"])
        with pytest.raises(ValueError):
            Reservation("x", m, cpu_demand=-1)
        with pytest.raises(ValueError):
            Reservation("x", m, nic_demand=1.5)


class TestClusterReservations:
    @pytest.fixture
    def setup(self):
        service = CBES(single_switch("mini", 8))
        service.calibrate(seed=1)
        app = SyntheticBenchmark(comm_fraction=0.2, duration_s=4.0, steps=4, name="coloc")
        service.profile_application(app, 4, seed=0)
        return service, app

    def test_ledger_roundtrip(self, setup):
        service, app = setup
        ledger = ClusterReservations(service)
        mapping = TaskMapping(service.cluster.node_ids()[:4])
        ledger.place(app.name, mapping)
        assert len(ledger.active) == 1
        released = ledger.release(app.name)
        assert released.mapping == mapping
        assert ledger.active == []

    def test_double_place_rejected(self, setup):
        service, app = setup
        ledger = ClusterReservations(service)
        mapping = TaskMapping(service.cluster.node_ids()[:4])
        ledger.place(app.name, mapping)
        with pytest.raises(CbesError):
            ledger.place(app.name, mapping)

    def test_release_unknown_rejected(self, setup):
        service, _ = setup
        with pytest.raises(CbesError):
            ClusterReservations(service).release("ghost")

    def test_cpu_demand_defaults_to_compute_share(self, setup):
        service, app = setup
        ledger = ClusterReservations(service)
        mapping = TaskMapping(service.cluster.node_ids()[:4])
        reservation = ledger.place(app.name, mapping)
        comp, _ = service.profile(app.name).comp_comm_ratio
        assert reservation.cpu_demand == pytest.approx(comp)

    def test_load_on_accumulates(self, setup):
        service, app = setup
        ledger = ClusterReservations(service)
        node = service.cluster.node_ids()[0]
        ledger.place(app.name, TaskMapping([node] * 2 + service.cluster.node_ids()[1:3]),
                     cpu_demand=0.5, nic_demand=0.1)
        cpu, nic = ledger.load_on(node)
        assert cpu == pytest.approx(1.0)  # two procs x 0.5
        assert nic == pytest.approx(0.2)

    def test_snapshot_includes_reservations(self, setup):
        service, app = setup
        ledger = ClusterReservations(service)
        node = service.cluster.node_ids()[0]
        ledger.place(app.name, TaskMapping([node] + service.cluster.node_ids()[1:4]),
                     cpu_demand=1.0)
        snap = ledger.snapshot()
        assert snap.background_load(node) == pytest.approx(1.0)
        assert snap.acpu(node) == pytest.approx(0.5)


class TestCoScheduling:
    def test_second_app_avoids_first_apps_nodes(self):
        """Arrival-order scheduling on Orange Grove's Alpha pool."""
        cluster = orange_grove()
        service = CBES(cluster)
        service.calibrate(seed=1)
        alphas = cluster.nodes_by_arch("alpha-533")
        intels = cluster.nodes_by_arch("pii-400")
        pool = alphas + intels
        app1 = LU("S")
        service.profile_application(app1, 8, mapping=TaskMapping(alphas), seed=0)
        app2 = SyntheticBenchmark(comm_fraction=0.1, duration_s=20.0, steps=5, name="tenant2")
        service.profile_application(app2, 8, mapping=TaskMapping(alphas), seed=0)

        ledger = ClusterReservations(service)
        first = ledger.schedule(app1.name, CbesScheduler(schedule=FAST_SA), pool, seed=1)
        second = ledger.schedule(app2.name, CbesScheduler(schedule=FAST_SA), pool, seed=1)
        # Single-CPU alphas already hosting app1 are unattractive: the
        # second tenant overlaps the first on at most a couple of nodes.
        overlap = first.mapping.nodes_used() & second.mapping.nodes_used()
        single_cpu_overlap = [
            n for n in overlap if cluster.node(n).ncpus == 1
        ]
        assert len(single_cpu_overlap) <= 2

    def test_reservation_free_scheduling_overlaps(self):
        """Without the ledger, both apps pile onto the same fast nodes."""
        cluster = orange_grove()
        service = CBES(cluster)
        service.calibrate(seed=1)
        alphas = cluster.nodes_by_arch("alpha-533")
        app = LU("S")
        service.profile_application(app, 8, mapping=TaskMapping(alphas), seed=0)
        pool = alphas + cluster.nodes_by_arch("pii-400")
        a = service.schedule(app.name, CbesScheduler(schedule=FAST_SA), pool, seed=1)
        b = service.schedule(app.name, CbesScheduler(schedule=FAST_SA), pool, seed=2)
        assert len(a.mapping.nodes_used() & b.mapping.nodes_used()) >= 5


class TestFT:
    def test_program_validates_and_runs(self):
        service = CBES(single_switch("mini", 4))
        service.calibrate(seed=1)
        app = FT("A")
        mapping = TaskMapping(service.cluster.node_ids()[:4])
        result = service.simulator.run(
            app.program(4), mapping.as_dict(), seed=1, arch_affinity=app.arch_affinity
        )
        assert result.total_time > 0

    def test_alltoall_dominates(self):
        prog = FT("A").program(8)
        # niter all-to-alls: n*(n-1) messages each.
        assert prog.total_messages >= 6 * 8 * 7

    def test_class_scaling(self):
        assert FT("B").program(4).total_work > 2 * FT("A").program(4).total_work

    def test_prediction_accuracy(self):
        service = CBES(single_switch("mini", 8))
        service.calibrate(seed=1)
        app = FT("A")
        service.profile_application(app, 8, seed=0)
        mapping = TaskMapping(service.cluster.node_ids()[:8])
        predicted = service.evaluator(app.name).execution_time(mapping)
        measured = service.simulator.run(
            app.program(8), mapping.as_dict(), seed=9, arch_affinity=app.arch_affinity
        ).total_time
        assert predicted == pytest.approx(measured, rel=0.1)
