"""Tests for ApplicationProfile / ProcessProfile / theta (eq. 6)."""

import pytest

from repro.profiling.profile import (
    ApplicationProfile,
    MessageGroup,
    ProcessProfile,
    theta,
)


def proc(rank, sends=(), recvs=(), X=10.0, O=1.0, B=2.0, lam=1.0):  # noqa: E741 - paper's O term
    return ProcessProfile(
        rank=rank,
        own_time=X,
        overhead_time=O,
        blocked_time=B,
        sends=tuple(sends),
        recvs=tuple(recvs),
        lam=lam,
    )


def profile_of(procs, **kwargs):
    n = len(procs)
    defaults = dict(
        app_name="app",
        nprocs=n,
        processes=tuple(procs),
        profile_mapping={r: f"n{r}" for r in range(n)},
        profile_speeds={r: 1.0 for r in range(n)},
    )
    defaults.update(kwargs)
    return ApplicationProfile(**defaults)


class TestMessageGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            MessageGroup(-1, 10, 1)
        with pytest.raises(ValueError):
            MessageGroup(0, -10, 1)
        with pytest.raises(ValueError):
            MessageGroup(0, 10, 0)


class TestProcessProfile:
    def test_compute_time(self):
        assert proc(0, X=5.0, O=2.0).compute_time == 7.0

    def test_bytes_sent(self):
        p = proc(0, sends=[MessageGroup(1, 100, 3), MessageGroup(2, 50, 2)])
        assert p.bytes_sent == 400

    def test_message_count_includes_recvs(self):
        p = proc(0, sends=[MessageGroup(1, 100, 3)], recvs=[MessageGroup(1, 10, 5)])
        assert p.message_count == 8

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            ProcessProfile(0, -1.0, 0.0, 0.0)


class TestTheta:
    def test_eq6_sums_both_directions(self):
        # Latency model: constant 1s per message regardless of pair/size.
        p = proc(
            0,
            sends=[MessageGroup(1, 100, 3)],
            recvs=[MessageGroup(1, 100, 2), MessageGroup(2, 10, 1)],
        )
        mapping = {0: "a", 1: "b", 2: "c"}
        assert theta(p, mapping, lambda s, d, size: 1.0) == pytest.approx(6.0)

    def test_latency_receives_correct_endpoints(self):
        calls = []

        def latency(src, dst, size):
            calls.append((src, dst, size))
            return 0.0

        p = proc(0, sends=[MessageGroup(1, 100, 1)], recvs=[MessageGroup(2, 50, 1)])
        theta(p, {0: "a", 1: "b", 2: "c"}, latency)
        assert ("a", "b", 100) in calls  # send: me -> peer
        assert ("c", "a", 50) in calls  # recv: peer -> me

    def test_counts_scale_linearly(self):
        p1 = proc(0, sends=[MessageGroup(1, 100, 1)])
        p5 = proc(0, sends=[MessageGroup(1, 100, 5)])
        lat = lambda s, d, size: 0.25  # noqa: E731
        assert theta(p5, {0: "a", 1: "b"}, lat) == 5 * theta(p1, {0: "a", 1: "b"}, lat)

    def test_no_communication_is_zero(self):
        assert theta(proc(0), {0: "a"}, lambda s, d, size: 1.0) == 0.0


class TestApplicationProfile:
    def test_requires_ordered_complete_processes(self):
        with pytest.raises(ValueError):
            profile_of([proc(0), proc(2)])

    def test_mapping_coverage_enforced(self):
        with pytest.raises(ValueError):
            profile_of([proc(0), proc(1)], profile_mapping={0: "n0"})

    def test_speeds_positive(self):
        with pytest.raises(ValueError):
            profile_of([proc(0)], profile_speeds={0: 0.0})

    def test_comp_comm_ratio(self):
        p = profile_of([proc(0, X=6.0, O=2.0, B=2.0)])
        comp, comm = p.comp_comm_ratio
        assert comp == pytest.approx(0.8)
        assert comm == pytest.approx(0.2)

    def test_comp_comm_ratio_no_time(self):
        p = profile_of([proc(0, X=0.0, O=0.0, B=0.0)])
        assert p.comp_comm_ratio == (1.0, 0.0)

    def test_speed_ratio_fallback(self):
        p = profile_of([proc(0)], arch_speed_ratios={"alpha-533": 1.4})
        assert p.speed_ratio_for("alpha-533", 1.3) == 1.4
        assert p.speed_ratio_for("pii-400", 1.15) == 1.15

    def test_process_bounds(self):
        p = profile_of([proc(0)])
        with pytest.raises(ValueError):
            p.process(1)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        p = profile_of(
            [
                proc(0, sends=[MessageGroup(1, 100.0, 3)], lam=0.8),
                proc(1, recvs=[MessageGroup(0, 100.0, 3)], lam=1.2),
            ],
            arch_speed_ratios={"alpha-533": 1.31},
        )
        path = tmp_path / "profile.json"
        p.save(path)
        loaded = ApplicationProfile.load(path)
        assert loaded.app_name == p.app_name
        assert loaded.processes == p.processes
        assert loaded.profile_mapping == p.profile_mapping
        assert loaded.profile_speeds == p.profile_speeds
        assert loaded.arch_speed_ratios == p.arch_speed_ratios

    def test_roundtrip_with_segments(self, tmp_path):
        seg = profile_of([proc(0, X=1.0)])
        p = profile_of([proc(0)], segments={1: seg})
        path = tmp_path / "p.json"
        p.save(path)
        loaded = ApplicationProfile.load(path)
        assert 1 in loaded.segments
        assert loaded.segments[1].processes[0].own_time == 1.0
