"""End-to-end integration tests across all subsystems.

These exercise the full paper pipeline: calibrate -> monitor -> profile
-> evaluate -> schedule -> measure, plus the headline scientific claims
at reduced scale.
"""

import pytest

from repro.cluster import orange_grove
from repro.core import CBES, EvaluationOptions, RemapAdvisor, RemapCostModel, TaskMapping
from repro.monitoring.load import LoadEvent, LoadGenerator
from repro.schedulers import AnnealingSchedule, CbesScheduler, NoCommScheduler, RandomScheduler
from repro.workloads import LU, Aztec, Towhee

FAST_SA = AnnealingSchedule(moves_per_temperature=25, steps=15, patience=5)


class TestFullPipeline:
    def test_paper_lifecycle(self):
        """The complete CBES operational story on Orange Grove."""
        cluster = orange_grove()
        service = CBES(cluster)
        # 1. Off-line calibration (O(N) clique rounds).
        report = service.calibrate(seed=3)
        assert report.parallel_speedup > 5
        # 2. Monitoring daemons.
        service.start_monitoring(forecaster="last-value", sensor_noise=0.0)
        service.monitor.poll()
        # 3. Application profiling.
        app = LU("S")
        profile = service.profile_application(app, 8, seed=1)
        assert profile.nprocs == 8
        # 4. Mapping comparison request.
        alphas = cluster.nodes_by_arch("alpha-533")
        sparcs = cluster.nodes_by_arch("sparc-500")
        ranked = service.compare(
            app.name, [TaskMapping(sparcs), TaskMapping(alphas)]
        )
        assert ranked[0].mapping == TaskMapping(alphas)  # faster nodes win
        # 5. Scheduling.
        result = service.schedule(
            app.name, CbesScheduler(schedule=FAST_SA), alphas, seed=1
        )
        # 6. The selected mapping measures close to its prediction.
        measured = service.simulator.run(
            app.program(8), result.mapping.as_dict(), seed=9, arch_affinity=app.arch_affinity
        ).total_time
        assert result.predicted_time == pytest.approx(measured, rel=0.12)

    def test_monitor_feeds_evaluator(self, og_service):
        """Load seen by the monitor changes predictions accordingly."""
        service = og_service
        cluster = service.cluster
        alphas = cluster.nodes_by_arch("alpha-533")
        mapping = TaskMapping(alphas)
        idle_pred = service.evaluator("lu.A").execution_time(mapping)
        generator = LoadGenerator(cluster)
        with generator.loaded([LoadEvent(alphas[0], cpu_load=0.5)]):
            monitor = service.start_monitoring(forecaster="last-value", sensor_noise=0.0)
            monitor.poll()
            loaded_pred = service.evaluator("lu.A").execution_time(mapping)
        service._monitor = None  # detach for other tests
        assert loaded_pred > idle_pred * 1.2

    def test_remapping_story(self, og_service):
        """Load lands on a mapped node -> the advisor recommends moving."""
        service = og_service
        cluster = service.cluster
        alphas = cluster.nodes_by_arch("alpha-533")
        intels = cluster.nodes_by_arch("pii-400")
        current = TaskMapping(alphas)
        generator = LoadGenerator(cluster)
        with generator.loaded([LoadEvent(alphas[0], cpu_load=1.0)]):
            evaluator = service.evaluator("lu.A")
            candidate = TaskMapping([intels[0]] + alphas[1:])
            decision = RemapAdvisor(RemapCostModel(fixed_s=1.0, per_task_s=0.5)).evaluate(
                evaluator, current, candidate, fraction_remaining=0.8
            )
        assert decision.remap
        assert decision.benefit_s > 0


class TestScientificClaims:
    """The paper's headline results, asserted at reduced scale."""

    def test_cs_beats_ncs_beats_nothing(self, og_service):
        """Section 6: CS > NCS ~ RS on measured time, via comm term alone."""
        service = og_service
        app = LU("A")
        alphas = service.cluster.nodes_by_arch("alpha-533")
        program = app.program(8)

        def measure(mapping, seed):
            return service.simulator.run(
                program, mapping.as_dict(), seed=seed,
                arch_affinity=app.arch_affinity, collect_trace=False,
            ).total_time

        cs_times, ncs_times = [], []
        for k in range(3):
            cs = service.schedule(app.name, CbesScheduler(schedule=FAST_SA), alphas, seed=50 + k)
            ncs = service.schedule(app.name, NoCommScheduler(schedule=FAST_SA), alphas, seed=50 + k)
            cs_times.append(measure(cs.mapping, 800 + k))
            ncs_times.append(measure(ncs.mapping, 800 + k))
        assert sum(cs_times) < sum(ncs_times)

    def test_architecture_zones_exist(self, og_service):
        """Figure 6: zone means separated by architecture mix."""
        service = og_service
        app = LU("A")
        cluster = service.cluster
        program = app.program(8)
        alphas = cluster.nodes_by_arch("alpha-533")
        sparcs = cluster.nodes_by_arch("sparc-500")
        intels = cluster.nodes_by_arch("pii-400")

        def measure(nodes):
            return service.simulator.run(
                program, TaskMapping(nodes).as_dict(), seed=7,
                arch_affinity=app.arch_affinity, collect_trace=False,
            ).total_time

        t_high = measure(alphas)
        t_medium = measure(alphas[:4] + intels[:4])
        t_low = measure(alphas[:4] + sparcs[:4])
        assert t_high < t_medium < t_low
        # Low zone ~1.5x high, medium ~1.15x high (paper's figure 6 bands).
        assert 1.2 < t_low / t_high < 1.9
        assert 1.05 < t_medium / t_high < 1.4

    def test_uncertain_apps_mapping_insensitive(self, og_service):
        """Table 3: EP-style apps gain nothing from scheduling."""
        service = og_service
        app = Towhee(work=40.0)
        intels = service.cluster.nodes_by_arch("pii-400")
        service.profile_application(app, 8, mapping=TaskMapping(intels[:8]), seed=0)
        program = app.program(8)
        times = []
        for k, sched in enumerate([CbesScheduler(schedule=FAST_SA), RandomScheduler()]):
            r = service.schedule(app.name, sched, intels, seed=60 + k)
            times.append(
                service.simulator.run(
                    program, r.mapping.as_dict(), seed=900,
                    arch_affinity=app.arch_affinity, collect_trace=False,
                ).total_time
            )
        spread = abs(times[0] - times[1]) / max(times)
        assert spread < 0.05

    def test_comm_heavy_app_benefits(self, og_service):
        """Table 3: Aztec-style halo apps show a clear best-worst gap."""
        service = og_service
        app = Aztec(200, niter=10)
        intels = service.cluster.nodes_by_arch("pii-400")
        service.profile_application(app, 8, mapping=TaskMapping(intels[:8]), seed=0)
        program = app.program(8)
        best = service.schedule(app.name, CbesScheduler(schedule=FAST_SA), intels, seed=3)
        worst = service.schedule(
            app.name, CbesScheduler(schedule=FAST_SA, direction="maximize"), intels, seed=3
        )

        def measure(mapping):
            return service.simulator.run(
                program, mapping.as_dict(), seed=55,
                arch_affinity=app.arch_affinity, collect_trace=False,
            ).total_time

        t_best, t_worst = measure(best.mapping), measure(worst.mapping)
        assert (t_worst - t_best) / t_worst > 0.03

    def test_ablation_lambda_matters(self, og_service):
        """Dropping the lambda correction shifts predictions."""
        service = og_service
        alphas = service.cluster.nodes_by_arch("alpha-533")
        mapping = TaskMapping(alphas)
        with_lambda = service.evaluator("lu.A").execution_time(mapping)
        without = service.evaluator(
            "lu.A", options=EvaluationOptions(use_lambda=False)
        ).execution_time(mapping)
        assert with_lambda != pytest.approx(without, rel=0.02)
