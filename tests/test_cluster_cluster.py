"""Tests for the Cluster facade."""

import pytest

from repro.cluster import Cluster, LinkSpec, NetworkFabric, Node, SwitchSpec
from repro.cluster.node import ALPHA_533, INTEL_PII_400
from tests.conftest import make_tiny_cluster


class TestConstruction:
    def test_rejects_empty_name(self, tiny_cluster):
        with pytest.raises(ValueError):
            Cluster("", tiny_cluster.nodes, tiny_cluster.fabric)

    def test_rejects_node_fabric_mismatch(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("sw", 8))
        fabric.add_host("h0")
        fabric.connect("h0", "sw", LinkSpec())
        with pytest.raises(ValueError, match="not present in fabric"):
            Cluster("c", [Node("h0", ALPHA_533), Node("ghost", ALPHA_533)], fabric)

    def test_rejects_fabric_host_without_node(self):
        fabric = NetworkFabric()
        fabric.add_switch(SwitchSpec("sw", 8))
        for h in ("h0", "h1"):
            fabric.add_host(h)
            fabric.connect(h, "sw", LinkSpec())
        with pytest.raises(ValueError, match="without node objects"):
            Cluster("c", [Node("h0", ALPHA_533)], fabric)

    def test_fills_in_switch_attribute(self, tiny_cluster):
        assert all(node.switch == "sw0" for node in tiny_cluster.nodes.values())


class TestQueries:
    def test_node_lookup(self, tiny_cluster):
        assert tiny_cluster.node("n00").node_id == "n00"
        with pytest.raises(KeyError):
            tiny_cluster.node("nope")

    def test_node_ids_sorted(self, tiny_cluster):
        ids = tiny_cluster.node_ids()
        assert ids == sorted(ids)

    def test_architectures(self, tiny_cluster):
        archs = tiny_cluster.architectures()
        assert set(archs) == {"pii-400", "alpha-533"}

    def test_nodes_by_arch(self, tiny_cluster):
        assert tiny_cluster.nodes_by_arch(INTEL_PII_400) == ["n00", "n02"]
        assert tiny_cluster.nodes_by_arch("alpha-533") == ["n01", "n03"]
        with pytest.raises(KeyError):
            tiny_cluster.nodes_by_arch("sparc-500")

    def test_nodes_by_switch_unknown(self, tiny_cluster):
        with pytest.raises(KeyError):
            tiny_cluster.nodes_by_switch("nope")


class TestLatencyLifecycle:
    def test_uncalibrated_access_raises(self):
        cluster = make_tiny_cluster()
        assert not cluster.is_calibrated
        with pytest.raises(RuntimeError, match="calibrat"):
            _ = cluster.latency_model

    def test_calibrate_installs_model(self):
        cluster = make_tiny_cluster()
        report = cluster.calibrate(seed=1)
        assert cluster.is_calibrated
        assert cluster.latency_model is report.model

    def test_exact_model_installable(self):
        cluster = make_tiny_cluster()
        cluster.use_exact_latency_model()
        assert cluster.is_calibrated


class TestLoads:
    def test_clear_loads(self):
        cluster = make_tiny_cluster()
        cluster.node("n00").set_background_load(0.7)
        cluster.node("n01").set_nic_load(0.3)
        cluster.clear_loads()
        assert all(
            node.background_load == 0.0 and node.nic_load == 0.0
            for node in cluster.nodes.values()
        )
