"""Tests for repro.cluster.latency."""

import pytest

from repro.cluster.latency import LatencyModel, PathComponents
from repro.cluster.network import LinkSpec, NetworkFabric, SwitchSpec
from repro.cluster.node import ALPHA_533, NICSpec, Node


@pytest.fixture
def pair_fabric():
    fabric = NetworkFabric()
    fabric.add_switch(SwitchSpec("sw", nports=8, forward_latency_s=6e-6))
    nodes = {}
    for name in ("a", "b"):
        fabric.add_host(name)
        fabric.connect(name, "sw", LinkSpec(bandwidth_bps=100e6, latency_s=0.5e-6))
        nodes[name] = Node(name, ALPHA_533, nic=NICSpec(send_overhead_s=25e-6))
    return fabric, nodes


class TestPathComponents:
    def test_no_load_linear_in_size(self):
        pc = PathComponents(10e-6, 10e-6, 5e-6, 1e-7)
        assert pc.no_load(0) == pytest.approx(25e-6)
        assert pc.no_load(1000) == pytest.approx(25e-6 + 1e-4)

    def test_rejects_negative_component(self):
        with pytest.raises(ValueError):
            PathComponents(-1e-6, 0, 0, 0)

    def test_rejects_negative_size(self):
        pc = PathComponents(1e-6, 1e-6, 0, 0)
        with pytest.raises(ValueError):
            pc.no_load(-1)

    def test_adjusted_equals_no_load_when_idle(self):
        pc = PathComponents(10e-6, 12e-6, 5e-6, 1e-7)
        assert pc.adjusted(4096) == pytest.approx(pc.no_load(4096))

    def test_adjusted_scales_endpoint_with_acpu(self):
        pc = PathComponents(10e-6, 10e-6, 5e-6, 0.0)
        # Halving the source availability doubles only alpha_src.
        assert pc.adjusted(0, acpu_src=0.5) == pytest.approx(20e-6 + 10e-6 + 5e-6)

    def test_adjusted_scales_serialization_with_nic(self):
        pc = PathComponents(0.0, 0.0, 0.0, 1e-6)
        assert pc.adjusted(100, nic_src=0.5) == pytest.approx(2 * 100e-6)

    def test_nic_load_clamped(self):
        pc = PathComponents(0.0, 0.0, 0.0, 1e-6)
        # At 99% utilisation the clamp (0.95) keeps latency finite.
        assert pc.adjusted(100, nic_dst=0.99) == pytest.approx(100e-6 / 0.05)

    def test_adjusted_rejects_zero_acpu(self):
        pc = PathComponents(1e-6, 1e-6, 0, 0)
        with pytest.raises(ValueError):
            pc.adjusted(0, acpu_src=0.0)


class TestLatencyModel:
    def test_from_fabric_matches_wiring(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        # alpha: 2 x 25us endpoints + 6us switch + 2 x 0.5us links.
        assert model.no_load("a", "b", 0) == pytest.approx(57e-6)
        # serialization: 8 bits/byte over 100 Mb/s.
        assert model.no_load("a", "b", 12500) == pytest.approx(57e-6 + 1e-3)

    def test_symmetric_for_identical_nics(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        assert model.no_load("a", "b", 1024) == pytest.approx(model.no_load("b", "a", 1024))

    def test_same_node_uses_shared_memory(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        assert model.no_load("a", "a", 1024) < model.no_load("a", "b", 1024) / 10

    def test_unknown_pair_raises(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        with pytest.raises(KeyError):
            model.components("a", "zzz")

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel({})

    def test_spread_on_uniform_fabric_is_zero(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        low, high, spread = model.spread(1024)
        assert low == pytest.approx(high)
        assert spread == pytest.approx(0.0)

    def test_pairs_sorted_and_complete(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        assert model.pairs() == [("a", "b"), ("b", "a")]

    def test_current_applies_load(self, pair_fabric):
        fabric, nodes = pair_fabric
        model = LatencyModel.from_fabric(fabric, nodes)
        idle = model.current("a", "b", 1024)
        busy = model.current("a", "b", 1024, acpu_src=0.5, nic_dst=0.5)
        assert busy > idle
