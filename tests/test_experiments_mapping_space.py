"""Tests for mapping-space signatures and representative sampling."""

import pytest

from repro.core import TaskMapping
from repro.experiments.mapping_space import (
    group_by_signature,
    representative_sample,
    signature,
)


@pytest.fixture(scope="module")
def og(og_cluster):
    return og_cluster


class TestSignature:
    def test_arch_mix_counted(self, og):
        alphas = og.nodes_by_arch("alpha-533")
        intels = og.nodes_by_arch("pii-400")
        sig = signature(og, TaskMapping(alphas[:3] + intels[:2]))
        assert dict(sig.arch_mix) == {"alpha-533": 3, "pii-400": 2}

    def test_same_switch_distance_zero(self, og):
        stack = og.nodes_by_switch("og-stack")
        sig = signature(og, TaskMapping(stack[:3]))
        assert sig.connectivity_mix == ((0, 3),)  # all 3 pairs co-located

    def test_cross_federation_distance_positive(self, og):
        sig = signature(og, TaskMapping(["og-s00", "og-s04"]))  # dl10 vs dl12
        ((dist, count),) = sig.connectivity_mix
        assert count == 1
        assert dist >= 3  # dl10 -> stack -> sw11 -> dl12

    def test_rank_permutation_same_signature(self, og):
        alphas = og.nodes_by_arch("alpha-533")
        a = signature(og, TaskMapping(alphas))
        b = signature(og, TaskMapping(list(reversed(alphas))))
        assert a == b

    def test_different_node_sets_differ(self, og):
        alphas = og.nodes_by_arch("alpha-533")
        sparcs = og.nodes_by_arch("sparc-500")
        assert signature(og, TaskMapping(alphas[:4])) != signature(og, TaskMapping(sparcs[:4]))

    def test_str_readable(self, og):
        text = str(signature(og, TaskMapping(og.nodes_by_arch("alpha-533")[:2])))
        assert "alpha-533" in text


class TestGrouping:
    def test_groups_partition_input(self, og):
        alphas = og.nodes_by_arch("alpha-533")
        mappings = [
            TaskMapping(alphas[:4]),
            TaskMapping(list(reversed(alphas[:4]))),  # same group
            TaskMapping(alphas[4:8]),  # different switches -> maybe new group
        ]
        groups = group_by_signature(og, mappings)
        assert sum(len(g) for g in groups.values()) == 3
        first_sig = signature(og, mappings[0])
        assert len(groups[first_sig]) >= 2


class TestRepresentativeSample:
    def test_count_and_distinctness(self, og):
        mappings = representative_sample(og, og.node_ids(), 8, count=25, seed=3)
        assert len(mappings) == 25
        assert len(set(mappings)) == 25

    def test_signature_diversity(self, og):
        mappings = representative_sample(og, og.node_ids(), 8, count=25, seed=3)
        sigs = {signature(og, m) for m in mappings}
        # The OG mapping space is rich: representatives should cover
        # (almost) as many groups as mappings.
        assert len(sigs) >= 20

    def test_constraint_respected(self, og):
        arch_of = {n: og.node(n).arch.name for n in og.node_ids()}

        def has_sparc(mapping: TaskMapping) -> bool:
            return any(arch_of[n] == "sparc-500" for n in mapping.nodes_used())

        mappings = representative_sample(
            og, og.node_ids(), 4, count=5, constraint=has_sparc, seed=4
        )
        assert len(mappings) == 5
        assert all(has_sparc(m) for m in mappings)

    def test_small_space_tops_up_with_distinct_mappings(self, og):
        # 8 procs over exactly 8 alphas: one node set, one signature,
        # but many distinct rank permutations.
        alphas = og.nodes_by_arch("alpha-533")
        mappings = representative_sample(og, alphas, 8, count=10, seed=5)
        assert len(mappings) == 10
        assert len(set(mappings)) == 10
        assert len({signature(og, m) for m in mappings}) == 1

    def test_validation(self, og):
        with pytest.raises(ValueError):
            representative_sample(og, og.node_ids(), 4, count=0)
        with pytest.raises(ValueError):
            representative_sample(og, og.node_ids(), 4, count=1, oversample=0)

    def test_deterministic(self, og):
        a = representative_sample(og, og.node_ids(), 6, count=8, seed=9)
        b = representative_sample(og, og.node_ids(), 6, count=8, seed=9)
        assert a == b
