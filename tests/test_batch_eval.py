"""Properties of the batched evaluation kernel (``evaluate_many``).

The contract under test: a batch is *exactly* a loop.  For any
population of mappings, ``evaluate_many`` must agree element-wise with
the reference ``predict()`` to 1e-9 and with the scalar fast path, the
two backends (pure python and numpy) must produce bit-identical
energies, and the evaluation counters must be invariant to how the
population was submitted.
"""

from __future__ import annotations

import os
from unittest import mock

import pytest

from repro._util import spawn_rng
from repro.cluster import single_switch
from repro.core import CBES, EvaluationOptions, TaskMapping
from repro.core.fast_eval import FastEvalUnavailable, active_backend
from repro.schedulers.genetic import score_population
from repro.workloads import CG, LU

TOL = 1e-9

OPTION_COMBOS = [
    EvaluationOptions(),
    EvaluationOptions(communication=False),
    EvaluationOptions(use_lambda=False),
    EvaluationOptions(load_adjusted_latency=False),
    EvaluationOptions(cpu_availability=False),
    EvaluationOptions(load_adjusted_latency=False, cpu_availability=False),
]

BACKENDS = ["python", "numpy"]


def _backend_env(backend: str) -> mock._patch_dict:
    if backend == "numpy":
        pytest.importorskip("numpy")
    return mock.patch.dict(os.environ, {"REPRO_EVAL_BACKEND": backend})


@pytest.fixture(scope="module")
def service() -> CBES:
    # Two node flavours (mixed architectures) plus heterogeneous load so
    # every term of the formula — speed ratios, ACPU, NIC stretch,
    # colocation — differentiates the candidates.
    cluster = single_switch("batch", 10)
    service = CBES(cluster)
    service.calibrate(seed=5)
    service.profile_application(LU("A"), 6, seed=1)
    service.profile_application(CG("B"), 6, seed=1)
    for i, nid in enumerate(cluster.node_ids()):
        cluster.node(nid).background_load = 0.3 * (i % 4)
        cluster.node(nid).nic_load = 0.15 * (i % 3)
    return service


def random_population(pool, nprocs, count, seed):
    rng = spawn_rng(seed, "batch-pop")
    return [
        TaskMapping([pool[rng.choice(len(pool))] for _ in range(nprocs)])
        for _ in range(count)
    ]


class TestBatchEqualsLoop:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("options", OPTION_COMBOS)
    def test_matches_predict_element_wise(self, service, options, backend):
        evaluator = service.evaluator(LU("A").name, options=options)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 32, seed=7)
        with _backend_env(backend):
            energies = evaluator.fast_context().evaluate_many(population)
        assert len(energies) == len(population)
        for mapping, energy in zip(population, energies, strict=True):
            ref = evaluator.predict(mapping).execution_time
            assert energy == pytest.approx(ref, abs=TOL)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_incremental_evaluator_loop(self, service, backend):
        evaluator = service.evaluator(CG("B").name)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 24, seed=11)
        inc = evaluator.incremental()
        looped = [inc(m) for m in population]
        with _backend_env(backend):
            batched = inc.many(population)
        for a, b in zip(batched, looped, strict=True):
            assert a == pytest.approx(b, abs=TOL)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_and_singleton_batches(self, service, backend):
        evaluator = service.evaluator(LU("A").name)
        pool = service.cluster.node_ids()
        context = evaluator.fast_context()
        with _backend_env(backend):
            assert context.evaluate_many([]) == []
            single = TaskMapping(pool[:6])
            [energy] = context.evaluate_many([single])
        assert energy == pytest.approx(context.execution_time(single), abs=TOL)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_heavy_colocation_batches(self, service, backend):
        """Populations that pile many ranks on one node (ACPU-critical)."""
        evaluator = service.evaluator(LU("A").name)
        pool = service.cluster.node_ids()
        population = [
            TaskMapping([pool[0]] * 6),
            TaskMapping([pool[0]] * 5 + [pool[1]]),
            TaskMapping([pool[0], pool[1]] * 3),
            TaskMapping(pool[:6]),
        ]
        with _backend_env(backend):
            energies = evaluator.fast_context().evaluate_many(population)
        for mapping, energy in zip(population, energies, strict=True):
            assert energy == pytest.approx(
                evaluator.predict(mapping).execution_time, abs=TOL
            )


class TestBackendEquality:
    @pytest.mark.parametrize("options", OPTION_COMBOS)
    def test_numpy_and_python_backends_bit_identical(self, service, options):
        pytest.importorskip("numpy")
        evaluator = service.evaluator(LU("A").name, options=options)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 64, seed=13)
        context = evaluator.fast_context()
        with _backend_env("python"):
            py = context.evaluate_many(population)
        with _backend_env("numpy"):
            vec = context.evaluate_many(population)
        # Bit-identical, not approximately equal: the numpy kernel
        # replays the scalar operation order exactly.
        assert py == vec  # repro: disable=RPR104

    def test_auto_backend_resolves(self):
        with mock.patch.dict(os.environ, {"REPRO_EVAL_BACKEND": "auto"}):
            assert active_backend() in ("python", "numpy")
        with mock.patch.dict(os.environ, {"REPRO_EVAL_BACKEND": "python"}):
            assert active_backend() == "python"

    def test_unknown_backend_rejected(self):
        with mock.patch.dict(os.environ, {"REPRO_EVAL_BACKEND": "fortran"}):
            with pytest.raises(ValueError, match="REPRO_EVAL_BACKEND"):
                active_backend()

    def test_explicit_numpy_without_numpy_raises(self, service):
        """REPRO_EVAL_BACKEND=numpy must fail loudly when numpy is absent."""
        with mock.patch.dict(os.environ, {"REPRO_EVAL_BACKEND": "numpy"}):
            with mock.patch("repro.core.fast_eval.np", None):
                with pytest.raises(FastEvalUnavailable, match="numpy"):
                    active_backend()

    def test_python_fallback_when_numpy_absent(self, service):
        evaluator = service.evaluator(LU("A").name)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 8, seed=17)
        context = evaluator.fast_context()
        with _backend_env("python"):
            expected = context.evaluate_many(population)
        with mock.patch.dict(os.environ, {"REPRO_EVAL_BACKEND": "auto"}):
            with mock.patch("repro.core.fast_eval.np", None):
                assert active_backend() == "python"
                assert context.evaluate_many(population) == expected  # repro: disable=RPR104


class TestCountersAndWiring:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_many_counts_one_evaluation_per_mapping(self, service, backend):
        evaluator = service.evaluator(LU("A").name)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 9, seed=19)
        inc = evaluator.incremental()
        start = evaluator.evaluations
        with _backend_env(backend):
            inc.many(population)
        assert evaluator.evaluations == start + len(population)

    def test_execution_times_counts_and_orders(self, service):
        evaluator = service.evaluator(LU("A").name)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 12, seed=23)
        start = evaluator.evaluations
        energies = evaluator.execution_times(population)
        assert evaluator.evaluations == start + len(population)
        for mapping, energy in zip(population, energies, strict=True):
            assert energy == pytest.approx(
                evaluator.predict(mapping).execution_time, abs=TOL
            )
        assert evaluator.execution_times([]) == []

    def test_score_population_uses_batch_protocol(self, service):
        evaluator = service.evaluator(LU("A").name)
        pool = service.cluster.node_ids()
        population = random_population(pool, 6, 8, seed=29)
        inc = evaluator.incremental()
        batched = score_population(inc, population)
        plain = score_population(evaluator.execution_time, population)
        for a, b in zip(batched, plain, strict=True):
            assert a == pytest.approx(b, abs=TOL)
