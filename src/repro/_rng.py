"""Deterministic pure-python pseudo-random number generator.

Every seeded stream in :mod:`repro` flows through :class:`Rng` (via
:func:`repro._util.spawn_rng`).  Historically these were numpy
``Generator`` streams; the batch-evaluation work demoted numpy to an
optional ``[speed]`` extra, and a hard numpy dependency in the RNG would
have made every scheduler unusable without it.  More importantly, the
*determinism contract* — identical seeds produce identical mappings
whether or not the numpy fast path is installed — requires an engine
whose stream does not depend on which backend serves evaluations.

The generator is xoshiro256** (Blackman & Vigna), seeded through
SplitMix64 exactly as its authors recommend.  It is not numpy-stream
compatible: swapping the engine was a deliberate COMPAT break (the
second in this repo's history; see CHANGES.md), traded for an engine
that is dependency-free, picklable with its position, and identical on
every platform.

The draw-order contract is part of scheduler determinism: each
``random()`` consumes exactly one 64-bit word, ``integers``/``choice``
consume words via rejection sampling, and ``normal`` consumes two words
per Box-Muller pair (caching the spare).  Changing any of these changes
every seeded mapping in the test suite, so treat the word-consumption
pattern as frozen API.
"""

from __future__ import annotations

import math

__all__ = ["Rng"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
#: 2**-53, the double-precision ulp scale used for uniform doubles.
_DOUBLE_UNIT = 1.0 / (1 << 53)


def _splitmix64(state: int):
    """One SplitMix64 step: returns (next_state, output word)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


def _rotl(x: int, k: int) -> int:
    return ((x << k) | (x >> (64 - k))) & _MASK64


class Rng:
    """xoshiro256** generator with the draw API the repo's callers use.

    The surface mirrors the subset of ``numpy.random.Generator`` that
    the schedulers, workloads, and monitoring simulators relied on
    (``random``, ``integers``, ``choice``, ``uniform``, ``normal``,
    ``lognormal``, ``poisson``), returning plain floats/ints/lists so no
    caller needs an array library.  Instances pickle with their exact
    position, which is what lets a GA island's state round-trip through
    worker processes without perturbing its trajectory.
    """

    def __init__(self, *seed_material: int) -> None:
        if not seed_material:
            raise ValueError("Rng requires at least one integer of seed material")
        state = 0
        for part in seed_material:
            state = (state ^ (int(part) & _MASK64)) & _MASK64
            state, _ = _splitmix64(state)
        state, self._s0 = _splitmix64(state)
        state, self._s1 = _splitmix64(state)
        state, self._s2 = _splitmix64(state)
        state, self._s3 = _splitmix64(state)
        if not (self._s0 | self._s1 | self._s2 | self._s3):  # pragma: no cover
            self._s0 = 0x9E3779B97F4A7C15  # the all-zero state is absorbing
        #: Cached second Box-Muller deviate (None when no spare is held).
        self._gauss: float | None = None

    # -- core stream ----------------------------------------------------
    def _next(self) -> int:
        """The next raw 64-bit word of the stream."""
        s0, s1, s2, s3 = self._s0, self._s1, self._s2, self._s3
        result = (_rotl((s1 * 5) & _MASK64, 7) * 9) & _MASK64
        t = (s1 << 17) & _MASK64
        s2 ^= s0
        s3 ^= s1
        s1 ^= s2
        s0 ^= s3
        s2 ^= t
        s3 = _rotl(s3, 45)
        self._s0, self._s1, self._s2, self._s3 = s0, s1, s2, s3
        return result

    # -- uniform draws --------------------------------------------------
    def random(self, size: int | None = None):
        """Uniform double in ``[0, 1)``; a list of them when *size* is given."""
        if size is None:
            return (self._next() >> 11) * _DOUBLE_UNIT
        return [(self._next() >> 11) * _DOUBLE_UNIT for _ in range(size)]

    def uniform(self, low: float = 0.0, high: float = 1.0, size: int | None = None):
        """Uniform double in ``[low, high)``."""
        if size is None:
            return low + (high - low) * ((self._next() >> 11) * _DOUBLE_UNIT)
        return [low + (high - low) * ((self._next() >> 11) * _DOUBLE_UNIT) for _ in range(size)]

    def _randbelow(self, n: int) -> int:
        """Unbiased integer in ``[0, n)`` by 64-bit rejection sampling."""
        if n <= 0:
            raise ValueError("high must be > 0")
        limit = _MASK64 + 1 - ((_MASK64 + 1) % n)
        while True:
            word = self._next()
            if word < limit:
                return word % n

    def integers(self, high: int, size: int | None = None):
        """Integer(s) drawn uniformly from ``[0, high)``."""
        if size is None:
            return self._randbelow(high)
        return [self._randbelow(high) for _ in range(size)]

    def choice(self, n: int, size: int | None = None, replace: bool = True):
        """Indices drawn from ``range(n)``.

        With ``replace=False`` this is a partial Fisher–Yates shuffle:
        deterministic, unbiased, and O(n) — the populations here are
        node pools and GA rosters, never large.
        """
        if size is None:
            return self._randbelow(n)
        if size < 0:
            raise ValueError("size must be >= 0")
        if replace:
            return [self._randbelow(n) for _ in range(size)]
        if size > n:
            raise ValueError(f"cannot draw {size} distinct values from range({n})")
        pool = list(range(n))
        for i in range(size):
            j = i + self._randbelow(n - i)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:size]

    def permutation(self, n: int) -> list[int]:
        """A uniformly random permutation of ``range(n)``."""
        return self.choice(n, size=n, replace=False)

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle of *items*."""
        for i in range(len(items) - 1, 0, -1):
            j = self._randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    # -- non-uniform draws ----------------------------------------------
    def normal(self, loc: float = 0.0, scale: float = 1.0, size: int | None = None):
        """Gaussian deviate(s) via Box–Muller (polar-free, two words/pair)."""
        if size is None:
            return loc + scale * self._gauss_next()
        return [loc + scale * self._gauss_next() for _ in range(size)]

    def _gauss_next(self) -> float:
        spare = self._gauss
        if spare is not None:
            self._gauss = None
            return spare
        # Box-Muller on (0, 1] x [0, 1): u is flipped so log(u) is finite.
        u = 1.0 - (self._next() >> 11) * _DOUBLE_UNIT
        v = (self._next() >> 11) * _DOUBLE_UNIT
        radius = math.sqrt(-2.0 * math.log(u))
        theta = 2.0 * math.pi * v
        self._gauss = radius * math.sin(theta)
        return radius * math.cos(theta)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size: int | None = None):
        """Log-normal deviate(s): ``exp(normal(mean, sigma))``."""
        if size is None:
            return math.exp(mean + sigma * self._gauss_next())
        return [math.exp(mean + sigma * self._gauss_next()) for _ in range(size)]

    def poisson(self, lam: float = 1.0) -> int:
        """Poisson count via Knuth's product method.

        Large rates split recursively (Poisson additivity), keeping the
        product above double underflow; the workload generators use
        single-digit rates, so the split path is rare.
        """
        if lam < 0.0:
            raise ValueError("lam must be >= 0")
        total = 0
        while lam > 30.0:
            half = lam / 2.0
            total += self.poisson(half)
            lam -= half
        threshold = math.exp(-lam)
        product = self.random()
        count = 0
        while product > threshold:
            count += 1
            product *= self.random()
        return total + count

    # -- pickling --------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "s": (self._s0, self._s1, self._s2, self._s3),
            "gauss": self._gauss,
        }

    def __setstate__(self, state: dict) -> None:
        self._s0, self._s1, self._s2, self._s3 = state["s"]
        self._gauss = state["gauss"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rng(state={self._s0:#x},{self._s1:#x},{self._s2:#x},{self._s3:#x})"
