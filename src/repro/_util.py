"""Small shared utilities used across the :mod:`repro` packages.

This module intentionally has no dependencies on other ``repro``
subpackages so that anything may import it without creating cycles.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "check_fraction",
    "check_positive",
    "mean_and_ci95",
    "percent_error",
    "spawn_rng",
    "stable_hash",
]


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is a finite, strictly positive number."""
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str, *, closed_low: bool = True) -> float:
    """Validate that *value* lies in ``[0, 1]`` (or ``(0, 1]``).

    Parameters
    ----------
    value:
        Number to validate.
    name:
        Name used in the error message.
    closed_low:
        When False, zero is rejected (useful for availabilities that are
        used as divisors).
    """
    low_ok = value >= 0.0 if closed_low else value > 0.0
    if not (math.isfinite(value) and low_ok and value <= 1.0):
        bound = "[0, 1]" if closed_low else "(0, 1]"
        raise ValueError(f"{name} must be within {bound}, got {value!r}")
    return float(value)


def stable_hash(*parts: object) -> int:
    """Deterministic 63-bit hash of a tuple of simple values.

    ``hash()`` is salted per interpreter run for strings, so seeded
    experiments must not rely on it.  This uses FNV-1a over the repr of
    each part, which is stable across runs and platforms.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF


def spawn_rng(seed: int, *parts: object) -> np.random.Generator:
    """Create an independent RNG stream derived from *seed* and a key.

    Every distinct ``(seed, parts...)`` combination yields a distinct,
    reproducible stream, so parallel or repeated experiments never share
    state accidentally.
    """
    return np.random.default_rng(np.random.SeedSequence([seed & 0x7FFFFFFF, stable_hash(*parts)]))


def mean_and_ci95(samples: Sequence[float] | Iterable[float]) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of a 95 % t-confidence interval.

    For a single sample the half width is 0.  Matches the paper's
    reporting convention (mean ± 95 % CI over 5 or 100 runs).
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("mean_and_ci95 requires at least one sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    # scipy is a hard dependency; import locally to keep module import light.
    from scipy import stats

    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if sem == 0.0:
        return mean, 0.0
    half = float(stats.t.ppf(0.975, arr.size - 1)) * sem
    return mean, half


def percent_error(predicted: float, actual: float) -> float:
    """Absolute prediction error as a percentage of the actual value."""
    if actual == 0.0:
        raise ValueError("actual value must be nonzero")
    return abs(predicted - actual) / abs(actual) * 100.0
