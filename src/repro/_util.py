"""Small shared utilities used across the :mod:`repro` packages.

This module intentionally has no dependencies on other ``repro``
subpackages so that anything may import it without creating cycles.  It
is also dependency-free: the estimating service must run (and produce
identical seeded results) on hosts without numpy/scipy, so the RNG and
the statistics helpers here are pure python.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro._rng import Rng

__all__ = [
    "check_fraction",
    "check_positive",
    "mean_and_ci95",
    "percent_error",
    "spawn_rng",
    "stable_hash",
]


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is a finite, strictly positive number."""
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str, *, closed_low: bool = True) -> float:
    """Validate that *value* lies in ``[0, 1]`` (or ``(0, 1]``).

    Parameters
    ----------
    value:
        Number to validate.
    name:
        Name used in the error message.
    closed_low:
        When False, zero is rejected (useful for availabilities that are
        used as divisors).
    """
    low_ok = value >= 0.0 if closed_low else value > 0.0
    if not (math.isfinite(value) and low_ok and value <= 1.0):
        bound = "[0, 1]" if closed_low else "(0, 1]"
        raise ValueError(f"{name} must be within {bound}, got {value!r}")
    return float(value)


def stable_hash(*parts: object) -> int:
    """Deterministic 63-bit hash of a tuple of simple values.

    ``hash()`` is salted per interpreter run for strings, so seeded
    experiments must not rely on it.  This uses FNV-1a over the repr of
    each part, which is stable across runs and platforms.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF


def spawn_rng(seed: int, *parts: object) -> Rng:
    """Create an independent RNG stream derived from *seed* and a key.

    Every distinct ``(seed, parts...)`` combination yields a distinct,
    reproducible stream, so parallel or repeated experiments never share
    state accidentally.  The stream is a pure-python :class:`~repro._rng.Rng`,
    so seeded results are identical whether or not numpy is installed.
    """
    return Rng(seed & 0x7FFFFFFF, stable_hash(*parts))


# t-distribution 97.5th percentiles for df = 1..30; beyond that the
# Cornish-Fisher expansion below is accurate to ~1e-7.
_T_975 = (
    12.706204736432095, 4.302652729911275, 3.182446305284263, 2.7764451051977987,
    2.5705818366147395, 2.4469118487916806, 2.3646242510102993, 2.3060041350333704,
    2.2621571627409915, 2.2281388519649385, 2.200985160082949, 2.1788128296634177,
    2.160368656461013, 2.1447866879169273, 2.131449545559323, 2.1199052992210112,
    2.1098155778331806, 2.10092204024096, 2.093024054408263, 2.0859634472658364,
    2.0796138447276626, 2.073873067904015, 2.0686576104190406, 2.0638985616280205,
    2.059538552753294, 2.055529438642871, 2.0518305164802833, 2.048407141795244,
    2.0452296421327034, 2.042272456301238,
)


def _t_quantile_975(df: int) -> float:
    """97.5th percentile of Student's t with *df* degrees of freedom."""
    if df <= 30:
        return _T_975[df - 1]
    # Cornish-Fisher expansion of the t quantile about the normal
    # quantile z = Phi^-1(0.975) in powers of 1/df.
    z = 1.959963984540054
    z3, z5, z7 = z**3, z**5, z**7
    g1 = (z3 + z) / 4.0
    g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0
    g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0
    return z + g1 / df + g2 / df**2 + g3 / df**3


def mean_and_ci95(samples: Sequence[float] | Iterable[float]) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of a 95 % t-confidence interval.

    For a single sample the half width is 0.  Matches the paper's
    reporting convention (mean ± 95 % CI over 5 or 100 runs).
    """
    values = [float(v) for v in samples]
    n = len(values)
    if n == 0:
        raise ValueError("mean_and_ci95 requires at least one sample")
    mean = math.fsum(values) / n
    if n == 1:
        return mean, 0.0
    var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(var) / math.sqrt(n)
    if sem == 0.0:
        return mean, 0.0
    return mean, _t_quantile_975(n - 1) * sem


def percent_error(predicted: float, actual: float) -> float:
    """Absolute prediction error as a percentage of the actual value."""
    if actual == 0.0:
        raise ValueError("actual value must be nonzero")
    return abs(predicted - actual) / abs(actual) * 100.0
