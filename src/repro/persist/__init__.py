"""Crash-safe persistence for the scheduling daemon.

The paper frames CBES as a long-lived *service*; this package gives the
daemon the durability that role demands without leaving the stdlib:

* :mod:`repro.persist.journal` — an append-only, length-prefixed,
  checksummed write-ahead journal with a configurable fsync policy
  (``always`` / ``interval`` / ``never``), torn-tail truncation on
  open, and checksum rejection of corrupted records;
* :mod:`repro.persist.store` — :class:`DurableJobStore`, the journaled
  job store: every :class:`~repro.server.jobs.JobStore` transition is
  logged as a JSON record, startup replays snapshot + journal, jobs
  that were queued/running at crash time are re-enqueued, and the
  journal compacts into a snapshot file once it outgrows a threshold.

Persistence is **opt-in**: ``repro serve --data-dir DIR`` activates it;
without the flag the daemon keeps the original in-memory TTL store.
See ``docs/FLEET.md`` for the journal format and recovery semantics.
"""

from repro.persist.journal import (
    FSYNC_POLICIES,
    Journal,
    JournalCorruptError,
    JournalError,
    replay_journal,
)
from repro.persist.store import DurableJobStore, recover_state

__all__ = [
    "FSYNC_POLICIES",
    "DurableJobStore",
    "Journal",
    "JournalCorruptError",
    "JournalError",
    "recover_state",
    "replay_journal",
]
