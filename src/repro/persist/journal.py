"""Append-only write-ahead journal with checksummed, length-prefixed records.

On-disk format (all integers big-endian):

    +----------------+----------------+----------------------+
    | length (4 B)   | crc32 (4 B)    | payload (length B)   |
    +----------------+----------------+----------------------+

where *payload* is one UTF-8 JSON object and *crc32* is
``zlib.crc32(payload)``.  The framing gives the two failure modes a
crash can leave behind sharply different treatments:

* **Torn tail** — the process (or machine) died mid-append, so the last
  record is shorter than its header promises (or the header itself is
  incomplete).  That is the *expected* crash artifact: replay stops at
  the last complete record and opening the journal for append truncates
  the torn bytes so new records extend a clean tail.
* **Checksum mismatch** — a record is complete but its payload does not
  hash to its header.  Appends never produce that state, so it means
  real corruption (bit rot, concurrent writers, operator error); replay
  refuses the journal with :class:`JournalCorruptError` rather than
  silently serving a half-wrong job history.

Durability is a policy knob (``fsync=``):

* ``always``   — fsync after every append (every acknowledged record
  survives power loss; slowest);
* ``interval`` — flush after every append, fsync at most once per
  ``fsync_interval_s`` (bounded loss window; the default);
* ``never``    — flush to the OS only (survives process crashes, not
  power loss; fastest).

Stdlib only, thread-safe (one lock around the file).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from collections.abc import Callable, Iterator
from pathlib import Path

__all__ = [
    "FSYNC_POLICIES",
    "HEADER_BYTES",
    "Journal",
    "JournalCorruptError",
    "JournalError",
    "replay_journal",
]

#: Valid values of the ``fsync=`` policy knob.
FSYNC_POLICIES = ("always", "interval", "never")

_HEADER = struct.Struct(">II")  # (payload length, crc32)
HEADER_BYTES = _HEADER.size

#: Refuse absurd single records outright: a length field beyond this is
#: treated as corruption, not as a 4 GiB allocation request.
MAX_RECORD_BYTES = 64 * 1024 * 1024


class JournalError(RuntimeError):
    """Base class for journal failures."""


class JournalCorruptError(JournalError):
    """A complete record failed its checksum (not a torn tail)."""


def _scan(data: bytes, path: Path) -> tuple[list[bytes], int]:
    """Parse *data* into payloads; returns (payloads, clean-tail offset).

    The clean-tail offset is where the last complete, checksum-valid
    record ends — bytes past it are a torn tail.  Raises
    :class:`JournalCorruptError` on a complete record whose checksum
    does not match (or whose length field is implausible).
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while total - offset >= HEADER_BYTES:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            raise JournalCorruptError(
                f"{path}: record at byte {offset} declares {length} bytes "
                f"(limit {MAX_RECORD_BYTES}); journal is corrupt"
            )
        body_start = offset + HEADER_BYTES
        if total - body_start < length:
            break  # torn tail: header complete, payload is not
        payload = data[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            raise JournalCorruptError(
                f"{path}: record at byte {offset} fails its checksum; "
                "journal is corrupt (not a torn tail)"
            )
        payloads.append(payload)
        offset = body_start + length
    return payloads, offset


def replay_journal(path: str | Path) -> Iterator[dict]:
    """Yield every complete record of the journal at *path*, in order.

    A missing file replays as empty.  A torn final record (incomplete
    header or short payload) is tolerated — iteration simply stops at
    the last complete record.  A complete record with a bad checksum
    raises :class:`JournalCorruptError`; a record that is not a JSON
    object raises :class:`JournalError`.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return
    payloads, _clean = _scan(data, path)
    for i, payload in enumerate(payloads):
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JournalError(f"{path}: record {i} is not valid JSON: {exc}") from None
        if not isinstance(record, dict):
            raise JournalError(f"{path}: record {i} is not a JSON object")
        yield record


class Journal:
    """One append-only journal file.

    Opening truncates any torn tail left by a crash (after validating
    everything before it), so appends always extend a clean prefix.

    Parameters
    ----------
    path:
        Journal file location (parent directories are created).
    fsync:
        Durability policy — one of :data:`FSYNC_POLICIES`.
    fsync_interval_s:
        Max seconds between fsyncs under the ``interval`` policy.
    clock:
        Injectable monotonic time source (tests use a fake clock).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if fsync_interval_s <= 0:
            raise ValueError("fsync_interval_s must be > 0")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._fsync_interval = float(fsync_interval_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._records = 0
        self._appended_bytes = 0
        self._syncs = 0
        existing = b""
        if self.path.exists():
            existing = self.path.read_bytes()
        payloads, clean = _scan(existing, self.path)
        self._records = len(payloads)
        self._file = open(self.path, "ab")
        if clean != len(existing):
            # Torn tail from a crash mid-append: drop the partial record
            # so the next append starts a well-formed one.
            self._file.truncate(clean)
            self._file.seek(clean)
        self._size = clean
        self._last_sync = self._clock()

    # -- introspection --------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes of complete records currently in the file."""
        with self._lock:
            return self._size

    @property
    def records(self) -> int:
        """Complete records currently in the file."""
        with self._lock:
            return self._records

    @property
    def appended_bytes(self) -> int:
        """Total bytes appended over this object's lifetime (metrics)."""
        with self._lock:
            return self._appended_bytes

    @property
    def syncs(self) -> int:
        """fsync calls issued over this object's lifetime (metrics)."""
        with self._lock:
            return self._syncs

    # -- writing --------------------------------------------------------
    def append(self, record: dict) -> int:
        """Append one JSON record; returns the bytes written.

        The record is flushed to the OS before returning; whether it is
        fsynced too depends on the policy (see the module docstring).
        """
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        if len(payload) > MAX_RECORD_BYTES:
            raise JournalError(f"record of {len(payload)} bytes exceeds {MAX_RECORD_BYTES}")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            self._file.write(frame)
            self._file.flush()
            if self._fsync == "always":
                self._do_sync()
            elif self._fsync == "interval":
                now = self._clock()
                if now - self._last_sync >= self._fsync_interval:
                    self._do_sync()
            self._size += len(frame)
            self._records += 1
            self._appended_bytes += len(frame)
        return len(frame)

    def _do_sync(self) -> None:
        os.fsync(self._file.fileno())
        self._syncs += 1
        self._last_sync = self._clock()

    def sync(self) -> None:
        """Force an fsync now (any policy)."""
        with self._lock:
            self._file.flush()
            if self._fsync != "never":
                self._do_sync()

    def reset(self) -> None:
        """Truncate to empty (called after compacting into a snapshot)."""
        with self._lock:
            self._file.truncate(0)
            self._file.seek(0)
            self._file.flush()
            if self._fsync != "never":
                self._do_sync()
            self._size = 0
            self._records = 0

    def close(self) -> None:
        """Flush, fsync (unless ``never``), and close the file."""
        with self._lock:
            if self._file.closed:
                return
            self._file.flush()
            if self._fsync != "never":
                os.fsync(self._file.fileno())
                self._syncs += 1
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
