"""The journaled job store: crash recovery for the scheduling daemon.

:class:`DurableJobStore` extends the in-memory
:class:`~repro.server.jobs.JobStore` state machine with a write-ahead
journal (see :mod:`repro.persist.journal`): every transition —
``create`` / ``running`` / ``done`` / ``failed`` / ``evict`` — is
appended as one JSON record *after* the in-memory mutation succeeds, so
the journal never records an illegal transition.

**Recovery** replays ``snapshot + journal`` on startup:

* jobs that were terminal (``done`` / ``failed``) come back with their
  results intact and a fresh TTL (wall-clock ages from the previous
  process's monotonic clock are meaningless here);
* jobs that were ``queued`` or ``running`` at crash time rewind to
  ``queued`` and are handed to the daemon through
  :meth:`DurableJobStore.take_recovered` for re-enqueueing — an
  accepted job is never silently lost;
* recovered jobs keep their ids and relative order (they sort before
  anything created after recovery).

**Compaction** folds the journal into an atomically-replaced snapshot
file (``jobs.snapshot.json``) whenever the journal outgrows
``compact_bytes``, and once right after recovery (which also discards a
replayed torn tail).  Replaying ``snapshot + journal-tail`` is
equivalent to replaying the whole pre-compaction journal — the property
``tests/test_persist.py`` pins down.

Replay is *lenient*: records for unknown jobs or replays of
already-applied transitions are skipped, because compaction and
eviction callbacks may race an append (the journal then holds a record
the snapshot already reflects).
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
from collections.abc import Callable, Iterable
from pathlib import Path

from repro.persist.journal import FSYNC_POLICIES, Journal, replay_journal
from repro.server.jobs import Job, JobState, JobStore

__all__ = [
    "JOURNAL_APPENDS_TOTAL",
    "JOURNAL_BYTES_TOTAL",
    "JOURNAL_COMPACTIONS_TOTAL",
    "JOBS_RECOVERED_TOTAL",
    "DurableJobStore",
    "recover_state",
]

log = logging.getLogger("repro.persist")

#: Metric families recorded by the durable store (name, help[, labels]);
#: the daemon declares them so they are visible from the first scrape.
JOURNAL_APPENDS_TOTAL = ("cbes_journal_appends_total", "Records appended to the job journal.")
JOURNAL_BYTES_TOTAL = ("cbes_journal_bytes_total", "Bytes appended to the job journal.")
JOURNAL_COMPACTIONS_TOTAL = (
    "cbes_journal_compactions_total",
    "Journal compactions into the snapshot file.",
)
JOBS_RECOVERED_TOTAL = (
    "cbes_jobs_recovered_total",
    "Jobs recovered from the journal at startup.",
    ("disposition",),
)

_SEQ_RE = re.compile(r"^j(\d{1,18})$")

_TERMINAL = {"done", "failed"}


def _seq_of(job_id: str) -> int | None:
    """The numeric sequence of a store-minted id (``None`` otherwise)."""
    match = _SEQ_RE.match(job_id)
    return int(match.group(1)) if match else None


def recover_state(
    snapshot_doc: dict | None, records: Iterable[dict]
) -> tuple[list[dict], int]:
    """Fold a snapshot document and journal records into job documents.

    Pure function (the unit of the compaction-equivalence tests).
    Returns ``(job docs in creation order, next id sequence)``.  Each
    doc has ``id`` / ``kind`` / ``payload`` / ``state`` / ``request_id``
    and, when terminal, ``result`` or ``error``.  Unknown ops, records
    for unknown jobs, and re-creations of known ids are skipped —
    see the module docstring for why replay is lenient.
    """
    jobs: dict[str, dict] = {}
    order: list[str] = []
    next_seq = 1
    if snapshot_doc is not None:
        next_seq = max(next_seq, int(snapshot_doc.get("next_seq", 1)))
        for doc in snapshot_doc.get("jobs", []):
            jobs[doc["id"]] = dict(doc)
            order.append(doc["id"])
            seq = _seq_of(doc["id"])
            if seq is not None:
                next_seq = max(next_seq, seq + 1)
    for record in records:
        op = record.get("op")
        job_id = record.get("id")
        if not isinstance(job_id, str):
            continue
        if op == "create":
            if job_id in jobs:
                continue
            jobs[job_id] = {
                "id": job_id,
                "kind": record.get("kind", ""),
                "payload": record.get("payload", {}),
                "state": "queued",
                "request_id": record.get("request_id", ""),
            }
            order.append(job_id)
            seq = _seq_of(job_id)
            if seq is not None:
                next_seq = max(next_seq, seq + 1)
        elif op == "running":
            doc = jobs.get(job_id)
            if doc is not None and doc["state"] == "queued":
                doc["state"] = "running"
        elif op == "done":
            doc = jobs.get(job_id)
            if doc is not None and doc["state"] not in _TERMINAL:
                doc["state"] = "done"
                doc["result"] = record.get("result")
        elif op == "failed":
            doc = jobs.get(job_id)
            if doc is not None and doc["state"] not in _TERMINAL:
                doc["state"] = "failed"
                doc["error"] = record.get("error", "")
        elif op == "evict":
            jobs.pop(job_id, None)
    docs = [jobs[job_id] for job_id in order if job_id in jobs]
    return docs, next_seq


class DurableJobStore(JobStore):
    """A :class:`JobStore` whose every transition survives a crash.

    Parameters
    ----------
    data_dir:
        Directory holding ``journal.wal`` and ``jobs.snapshot.json``
        (created if missing).  One store per directory — two daemons
        sharing a data dir would interleave journals incoherently.
    fsync, fsync_interval_s:
        Journal durability policy (see :class:`Journal`).
    compact_bytes:
        Journal size beyond which the next append triggers compaction.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry` receiving the
        journal metric families declared at the top of this module.
    ttl_s, clock, on_evict:
        As in :class:`JobStore` (evictions are journaled *and* reported
        through *on_evict*).
    """

    JOURNAL_NAME = "journal.wal"
    SNAPSHOT_NAME = "jobs.snapshot.json"

    def __init__(
        self,
        data_dir: str | Path,
        *,
        ttl_s: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Callable[[Job, float], None] | None = None,
        fsync: str = "interval",
        fsync_interval_s: float = 0.1,
        compact_bytes: int = 4 * 1024 * 1024,
        metrics=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if compact_bytes < 1:
            raise ValueError("compact_bytes must be >= 1")
        self._user_on_evict = on_evict
        super().__init__(ttl_s=ttl_s, clock=clock, on_evict=self._journal_evict)
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._compact_bytes = int(compact_bytes)
        #: Serializes {mutate + append} pairs and compaction, so the
        #: journal order matches the order mutations were applied and a
        #: compaction never interleaves half a transition.
        self._mutex = threading.RLock()
        self._compactions = 0
        self._recovered_pending: list[Job] = []
        self.recovered_terminal = 0
        if metrics is not None:
            self._m_appends = metrics.counter(*JOURNAL_APPENDS_TOTAL)
            self._m_bytes = metrics.counter(*JOURNAL_BYTES_TOTAL)
            self._m_compactions = metrics.counter(*JOURNAL_COMPACTIONS_TOTAL)
            self._m_recovered = metrics.counter(*JOBS_RECOVERED_TOTAL)
        else:
            self._m_appends = self._m_bytes = self._m_compactions = self._m_recovered = None
        self._journal = Journal(
            self.data_dir / self.JOURNAL_NAME,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            clock=clock,
        )
        self._recover()

    # -- introspection --------------------------------------------------
    @property
    def journal(self) -> Journal:
        return self._journal

    @property
    def snapshot_path(self) -> Path:
        return self.data_dir / self.SNAPSHOT_NAME

    @property
    def compactions(self) -> int:
        """Compactions performed by this instance (including recovery's)."""
        return self._compactions

    def take_recovered(self) -> list[Job]:
        """Jobs that must be re-enqueued (queued/running at crash time).

        Returns them once, in original submission order, already rewound
        to ``queued``; subsequent calls return an empty list.
        """
        with self._mutex:
            pending, self._recovered_pending = self._recovered_pending, []
            return pending

    # -- recovery -------------------------------------------------------
    def _recover(self) -> None:
        snapshot_doc = None
        try:
            snapshot_doc = json.loads(self.snapshot_path.read_text("utf-8"))
        except FileNotFoundError:
            pass
        records = list(replay_journal(self._journal.path))
        docs, next_seq = recover_state(snapshot_doc, records)
        now = self._clock()
        with self._lock:
            self._next_seq = max(self._next_seq, next_seq)
            for i, doc in enumerate(docs):
                job = Job(
                    id=doc["id"],
                    kind=doc["kind"],
                    payload=doc["payload"],
                    # Monotonic stamps do not survive the process; fresh
                    # ones preserving submission order keep listings and
                    # TTL eviction coherent with post-recovery jobs.
                    created_at=now - (len(docs) - i) * 1e-6,
                    request_id=doc.get("request_id", ""),
                )
                if doc["state"] == "done":
                    job.state = JobState.DONE
                    job.result = doc.get("result")
                    job.finished_at = now
                    self.recovered_terminal += 1
                elif doc["state"] == "failed":
                    job.state = JobState.FAILED
                    job.error = doc.get("error", "")
                    job.finished_at = now
                    self.recovered_terminal += 1
                else:  # queued or running: rewind and hand back for re-enqueue
                    job.state = JobState.QUEUED
                    self._recovered_pending.append(job)
                self._jobs[job.id] = job
        if self._m_recovered is not None and docs:
            requeued = len(self._recovered_pending)
            if requeued:
                self._m_recovered.inc(requeued, disposition="requeued")
            if self.recovered_terminal:
                self._m_recovered.inc(self.recovered_terminal, disposition="retained")
        if docs or records or snapshot_doc is not None:
            log.info(
                "recovered %d job(s) from %s (%d re-enqueued, %d finished); compacting",
                len(docs),
                self.data_dir,
                len(self._recovered_pending),
                self.recovered_terminal,
            )
            # The recovered state becomes the new snapshot; the journal
            # restarts empty (dropping any replayed torn tail for good).
            self.compact()

    # -- journaling -----------------------------------------------------
    def _append(self, record: dict) -> None:
        written = self._journal.append(record)
        if self._m_appends is not None:
            self._m_appends.inc()
            self._m_bytes.inc(written)
        if self._journal.size_bytes > self._compact_bytes:
            self.compact()

    def create(self, kind: str, payload: dict, *, request_id: str = "", job_id: str | None = None) -> Job:
        with self._mutex:
            job = super().create(kind, payload, request_id=request_id, job_id=job_id)
            self._append(
                {
                    "op": "create",
                    "id": job.id,
                    "kind": kind,
                    "payload": payload,
                    "request_id": request_id,
                }
            )
            return job

    def discard(self, job_id: str) -> None:
        with self._mutex:
            existed = job_id in self._jobs
            super().discard(job_id)
            if existed:
                self._append({"op": "evict", "id": job_id})

    def mark_running(self, job_id: str) -> Job:
        with self._mutex:
            job = super().mark_running(job_id)
            self._append({"op": "running", "id": job_id})
            return job

    def mark_done(self, job_id: str, result: dict) -> Job:
        with self._mutex:
            job = super().mark_done(job_id, result)
            self._append({"op": "done", "id": job_id, "result": result})
            return job

    def mark_failed(self, job_id: str, error: str) -> Job:
        with self._mutex:
            job = super().mark_failed(job_id, error)
            self._append({"op": "failed", "id": job_id, "error": error})
            return job

    def _journal_evict(self, job: Job, age_s: float) -> None:
        # Called by JobStore.evict_expired outside its lock, after the
        # job is gone from memory; the journal must agree.
        with self._mutex:
            self._append({"op": "evict", "id": job.id})
        if self._user_on_evict is not None:
            self._user_on_evict(job, age_s)

    # -- compaction -----------------------------------------------------
    def _doc_of(self, job: Job) -> dict:
        doc = {
            "id": job.id,
            "kind": job.kind,
            "payload": job.payload,
            "state": job.state.value,
            "request_id": job.request_id,
        }
        if job.state is JobState.DONE:
            doc["result"] = job.result
        elif job.state is JobState.FAILED:
            doc["error"] = job.error or ""
        return doc

    def compact(self) -> None:
        """Fold journal + memory into the snapshot file; reset the journal.

        The snapshot replaces atomically (write temp, fsync, rename), so
        a crash mid-compaction leaves either the old snapshot + full
        journal or the new snapshot + empty journal — both recoverable.
        """
        with self._mutex:
            with self._lock:
                ordered = sorted(self._jobs.values(), key=lambda j: (j.created_at, j.id))
                doc = {
                    "version": 1,
                    "next_seq": self._next_seq,
                    "jobs": [self._doc_of(job) for job in ordered],
                }
            tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            self._fsync_dir()
            self._journal.reset()
            self._compactions += 1
            if self._m_compactions is not None:
                self._m_compactions.inc()
            log.debug(
                "compacted %d job(s) into %s (compaction #%d)",
                len(doc["jobs"]),
                self.snapshot_path.name,
                self._compactions,
            )

    def _fsync_dir(self) -> None:
        """Make the snapshot rename durable (best effort off Linux)."""
        try:
            fd = os.open(self.data_dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        """Flush and close the journal (the daemon calls this on stop)."""
        self._journal.close()
