"""Command-line front end: ``python -m repro <command>``.

Drives the CBES service against the built-in testbeds from a shell —
the operational workflow of the paper (calibrate once, profile
applications, serve scheduling requests) with the profile database as
persistent state between invocations.

Commands
--------

``calibrate``  run the off-line calibration phase and store the model
``profile``    profile a built-in application and store its profile
``schedule``   pick a mapping for a stored application profile
``predict``    evaluate an explicit mapping
``inspect``    show stored profiles / cluster facts
``demo``       end-to-end walkthrough on Orange Grove
``serve``      run the scheduling daemon (JSON-over-HTTP service)
``submit``     submit a schedule/predict job to a running daemon
``jobs``       list a running daemon's jobs (or show one)

The daemon logs through the ``repro.server`` logger hierarchy; pass
``--log-level debug|info|warning`` to ``serve`` to control verbosity
(per-request access lines with request ids live in
``repro.server.access``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import sys
from collections.abc import Sequence

from repro.cluster import Cluster, centurion, orange_grove
from repro.core import CBES, TaskMapping
from repro.profiling import ProfileDatabase
from repro.schedulers import SCHEDULERS
from repro.server import (
    BackpressureError,
    CbesClient,
    CbesDaemon,
    JobFailed,
    ServerError,
)
from repro.workloads import (
    BT,
    CG,
    EP,
    HPL,
    IS,
    LU,
    MG,
    SAMRAI,
    SMG2000,
    SP,
    Aztec,
    Sweep3D,
    SyntheticBenchmark,
    Towhee,
)

__all__ = ["main", "build_parser"]

CLUSTERS = {"orange-grove": orange_grove, "centurion": centurion}


def make_app(spec: str):
    """Build a workload model from a CLI spec like ``lu.A`` or ``hpl.5000``."""
    name, _, arg = spec.partition(".")
    name = name.lower()
    try:
        if name in ("lu", "bt", "sp", "mg", "cg", "is", "ep"):
            cls = {"lu": LU, "bt": BT, "sp": SP, "mg": MG, "cg": CG, "is": IS, "ep": EP}[name]
            return cls(arg or "A")
        if name == "hpl":
            return HPL(int(arg or 10000))
        if name == "smg2000":
            return SMG2000(int(arg or 50))
        if name == "aztec":
            return Aztec(int(arg or 500))
        if name == "sweep3d":
            return Sweep3D()
        if name == "samrai":
            return SAMRAI()
        if name == "towhee":
            return Towhee()
        if name == "synthetic":
            return SyntheticBenchmark()
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: bad application spec {spec!r}: {exc}") from exc
    raise SystemExit(f"error: unknown application {spec!r}")


def build_cluster(name: str) -> Cluster:
    try:
        return CLUSTERS[name]()
    except KeyError:
        raise SystemExit(
            f"error: unknown cluster {name!r}; valid: {', '.join(sorted(CLUSTERS))}"
        ) from None


def open_service(args) -> tuple[CBES, ProfileDatabase]:
    """Service wired to the persistent database (calibrating if needed)."""
    cluster = build_cluster(args.cluster)
    service = CBES(cluster)
    db = ProfileDatabase(args.db)
    db.attach(service)
    if not cluster.is_calibrated:
        raise SystemExit(
            f"error: cluster {cluster.name!r} is not calibrated in {args.db!r}; "
            "run `calibrate` first"
        )
    return service, db


# -- commands -----------------------------------------------------------
def cmd_calibrate(args) -> int:
    cluster = build_cluster(args.cluster)
    service = CBES(cluster)
    report = service.calibrate(seed=args.seed, noise=args.noise)
    db = ProfileDatabase(args.db)
    db.save_latency_model(cluster.name, cluster.latency_model)
    low, high, spread = cluster.latency_model.spread(1024)
    print(
        f"calibrated {cluster.name}: {report.pair_benchmarks} pairs in "
        f"{report.rounds} rounds ({report.parallel_speedup:.0f}x clique speedup)"
    )
    print(f"latency @1KB: {low * 1e6:.0f}..{high * 1e6:.0f} us (spread {spread * 100:.0f}%)")
    print(f"stored system profile in {db.root}")
    return 0


def cmd_profile(args) -> int:
    service, db = open_service(args)
    app = make_app(args.app)
    profile = service.profile_application(app, args.nprocs, seed=args.seed)
    db.save_profile(profile)
    comp, comm = profile.comp_comm_ratio
    print(
        f"profiled {app.name} on {args.nprocs} processes: "
        f"computation {comp:.0%} / communication {comm:.0%}"
    )
    print(f"stored profile in {db.root}")
    return 0


def _pool(service: CBES, args) -> list[str]:
    if args.arch:
        return service.cluster.nodes_by_arch(args.arch)
    return service.cluster.node_ids()


def resolve_app_name(service: CBES, spec: str) -> str:
    """Match a CLI app spec against stored profiles, case-insensitively."""
    stored = service.profiled_applications
    lowered = {name.lower(): name for name in stored}
    try:
        return lowered[spec.lower()]
    except KeyError:
        raise SystemExit(
            f"error: no stored profile for {spec!r}; run `profile` first "
            f"(have: {', '.join(stored) or 'none'})"
        ) from None


def cmd_schedule(args) -> int:
    service, _ = open_service(args)
    app_name = resolve_app_name(service, args.app)
    kwargs: dict = {}
    if args.islands > 1:
        if args.scheduler != "ga":
            raise SystemExit("error: --islands requires --scheduler ga")
        kwargs["islands"] = args.islands
    try:
        scheduler = SCHEDULERS[args.scheduler](
            parallel=args.parallel, time_budget=args.time_budget, **kwargs
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    result = service.schedule(app_name, scheduler, _pool(service, args), seed=args.seed)
    print(f"scheduler: {result.scheduler} ({result.evaluations} evaluations, "
          f"{result.wall_time_s:.2f}s)")
    print(f"predicted execution time: {result.predicted_time:.2f} s")
    for rank, node in sorted(result.mapping.as_dict().items()):
        print(f"  rank {rank} -> {node}")
    return 0


def cmd_predict(args) -> int:
    service, _ = open_service(args)
    nodes = args.nodes.split(",")
    mapping = TaskMapping([n.strip() for n in nodes])
    prediction = service.evaluator(resolve_app_name(service, args.app)).predict(mapping)
    print(f"predicted execution time: {prediction.execution_time:.2f} s")
    crit = prediction.breakdown(prediction.critical_rank)
    print(
        f"critical rank {prediction.critical_rank} on {crit.node_id}: "
        f"R={crit.computation:.2f}s C={crit.communication:.2f}s"
    )
    return 0


def cmd_inspect(args) -> int:
    cluster = build_cluster(args.cluster)
    db = ProfileDatabase(args.db)
    print(f"cluster: {cluster}")
    for arch_name in sorted(cluster.architectures()):
        nodes = cluster.nodes_by_arch(arch_name)
        print(f"  {arch_name}: {len(nodes)} nodes ({nodes[0]}..{nodes[-1]})")
    print(f"system profile stored: {db.has_system_profile(cluster.name)}")
    apps = db.applications()
    print(f"stored application profiles: {', '.join(apps) if apps else '(none)'}")
    return 0


def cmd_demo(args) -> int:
    print("== CBES demo: LU on Orange Grove ==")
    cluster = orange_grove()
    service = CBES(cluster)
    report = service.calibrate(seed=1)
    print(f"calibrated in {report.rounds} clique rounds")
    app = LU("A")
    service.profile_application(app, 8, seed=0)
    pool = cluster.nodes_by_arch("alpha-533")
    cs = service.schedule(app.name, SCHEDULERS["cs"](), pool, seed=args.seed)
    rs = service.schedule(app.name, SCHEDULERS["rs"](), pool, seed=args.seed)
    t_cs = service.simulator.run(
        app.program(8), cs.mapping.as_dict(), seed=42, arch_affinity=app.arch_affinity
    ).total_time
    t_rs = service.simulator.run(
        app.program(8), rs.mapping.as_dict(), seed=42, arch_affinity=app.arch_affinity
    ).total_time
    print(f"CS: predicted {cs.predicted_time:.1f}s, measured {t_cs:.1f}s")
    print(f"RS: predicted {rs.predicted_time:.1f}s, measured {t_rs:.1f}s")
    print(f"speedup from CBES scheduling: {(t_rs - t_cs) / t_rs * 100:.1f}%")
    return 0


# -- service commands ---------------------------------------------------
def configure_logging(level_name: str) -> None:
    """Enable the structured ``repro.server`` logs on stderr."""
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        raise SystemExit(f"error: unknown log level {level_name!r}")
    logging.basicConfig(
        level=level, format="%(asctime)s %(levelname)-7s %(name)s: %(message)s"
    )


def cmd_serve(args) -> int:
    configure_logging(args.log_level)
    service, _ = open_service(args)
    monitor_kwargs = None
    if args.monitor:
        monitor_kwargs = {"forecaster": args.forecaster, "seed": args.seed}
        service.start_monitoring(**monitor_kwargs)
    daemon = CbesDaemon(
        service,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        job_ttl_s=args.job_ttl,
        refresh_interval_s=args.refresh_interval if args.refresh_interval > 0 else None,
        monitor_kwargs=monitor_kwargs,
        data_dir=args.data_dir,
        fsync=args.fsync,
        replica_id=args.replica_id,
        max_body_bytes=args.max_body_bytes,
    )

    async def _serve() -> int:
        host, port = await daemon.start()
        print(f"serving on http://{host}:{port}", flush=True)
        await daemon.serve_forever()
        return 0

    return asyncio.run(_serve())


def cmd_fleet(args) -> int:
    configure_logging(args.log_level)
    from repro.fleet import FleetRouter, FleetSupervisor

    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
        supervisor = None
    elif args.replicas >= 1:
        supervisor = FleetSupervisor(
            replicas=args.replicas,
            db=args.db,
            cluster=args.cluster,
            seed=args.seed,
            workers=args.workers,
            queue_limit=args.queue_limit,
            data_root=args.data_root,
            fsync=args.fsync,
            log_level=args.log_level,
        )
        backends = supervisor.start()
    else:
        raise SystemExit("error: give --replicas N or --backends host:port,...")
    router = FleetRouter(backends, host=args.host, port=args.port)

    async def _serve() -> int:
        host, port = await router.start()
        print(f"fleet router on http://{host}:{port} ({len(backends)} replica(s))", flush=True)
        try:
            await router.serve_forever()
        finally:
            if supervisor is not None:
                supervisor.stop()
        return 0

    return asyncio.run(_serve())


def _client(args) -> CbesClient:
    return CbesClient(args.host, args.port, timeout_s=args.timeout)


def cmd_submit(args) -> int:
    client = _client(args)
    payload: dict = {"app": args.app, "seed": args.seed}
    nodes = [n.strip() for n in args.nodes.split(",")] if args.nodes else None
    if args.kind == "schedule":
        payload["scheduler"] = args.scheduler
        if nodes:
            payload["pool"] = nodes
        elif args.arch:
            payload["arch"] = args.arch
        if args.workers is not None:
            payload["workers"] = args.workers
        if args.time_budget is not None:
            payload["time_budget"] = args.time_budget
    else:  # predict
        if not nodes:
            raise SystemExit("error: `submit --kind predict` requires --nodes")
        payload["nodes"] = nodes
    try:
        job = client.submit(args.kind, **payload)
    except BackpressureError as exc:
        raise SystemExit(
            f"error: daemon queue is full; retry in {exc.retry_after_s:.0f}s"
        ) from None
    except ServerError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"error: cannot reach daemon at {args.host}:{args.port}: {exc}") from None
    print(f"job {job['id']} {job['state']}")
    if args.no_wait:
        return 0
    try:
        job = client.wait(job["id"], timeout_s=args.timeout)
    except JobFailed as exc:
        raise SystemExit(f"error: {exc}") from None
    result = job["result"]
    if args.kind == "schedule":
        print(
            f"scheduler: {result['scheduler']} ({result['evaluations']} evaluations, "
            f"{result['wall_time_s']:.2f}s)"
        )
        print(f"predicted execution time: {result['predicted_time']:.2f} s")
        for rank, node in enumerate(result["mapping"]):
            print(f"  rank {rank} -> {node}")
    else:
        print(f"predicted execution time: {result['execution_time']:.2f} s")
        crit = result["critical_breakdown"]
        print(
            f"critical rank {result['critical_rank']} on {crit['node']}: "
            f"R={crit['computation']:.2f}s C={crit['communication']:.2f}s"
        )
    return 0


def cmd_jobs(args) -> int:
    client = _client(args)
    try:
        if args.job_id:
            print(json.dumps(client.job(args.job_id), indent=2, sort_keys=True))
            return 0
        health = client.healthz()
        print(
            f"daemon {health['status']}: uptime {health['uptime_s']:.0f}s, "
            f"queue {health['queue_depth']}/{health['queue_limit']}, jobs {health['jobs']}"
        )
        for job in client.jobs(state=args.state, limit=args.limit, after=args.after):
            line = f"  {job['id']}  {job['kind']:<9} {job['state']:<8}"
            if job["state"] == "done" and "result" in job:
                time_key = "predicted_time" if "predicted_time" in job["result"] else "execution_time"
                if time_key in job["result"]:
                    line += f" {job['result'][time_key]:8.2f} s"
            elif job["state"] == "failed":
                line += f" {job.get('error', '')}"
            print(line)
        return 0
    except ServerError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"error: cannot reach daemon at {args.host}:{args.port}: {exc}") from None


def _parse_load_spec(spec: str) -> list[dict]:
    """Parse ``node=cpu[:nic],node=cpu[:nic],...`` into event documents."""
    events = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        node, sep, loads = part.partition("=")
        if not sep or not node:
            raise SystemExit(f"error: bad load spec {part!r} (want node=cpu or node=cpu:nic)")
        cpu_text, _, nic_text = loads.partition(":")
        try:
            cpu = float(cpu_text)
            nic = float(nic_text) if nic_text else 0.0
        except ValueError:
            raise SystemExit(f"error: bad load numbers in {part!r}") from None
        events.append({"node": node, "cpu_load": cpu, "nic_load": nic})
    if not events:
        raise SystemExit("error: load spec names no nodes")
    return events


def cmd_remap(args) -> int:
    client = _client(args)
    try:
        if args.remap_command == "inject":
            result = client.inject_load(_parse_load_spec(args.load))
            for event in result["applied"]:
                print(
                    f"{event['node']}: cpu_load={event['cpu_load']:g} "
                    f"nic_load={event['nic_load']:g}"
                )
            print(f"snapshot {result['snapshot_fingerprint'][:12]} adopted")
            return 0
        if args.remap_command == "wait":
            try:
                decision = client.wait_decision(args.watch_id, timeout_s=args.timeout)
            except TimeoutError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(json.dumps(decision, indent=2, sort_keys=True))
            return 0
        if args.remap_command == "decisions":
            decisions = client.remap_decisions(args.limit)
            if args.json:
                print(json.dumps(decisions, indent=2, sort_keys=True))
                return 0
            if not decisions:
                print("no remap decisions recorded")
                return 0
            for doc in decisions:
                verdict = "remap" if doc["remap"] else "stay"
                print(
                    f"{doc['watch_id']} tick {doc['tick']:>3} ({doc['app']}): {verdict}  "
                    f"drift {doc['drift'] * 100:+.1f}%  savings {doc['savings_s']:.2f}s  "
                    f"cost {doc['migration_cost_s']:.2f}s  moves {len(doc['moves'])}"
                )
            return 0
        # watch
        mapping = [n.strip() for n in args.mapping.split(",") if n.strip()]
        pool = [n.strip() for n in args.pool.split(",") if n.strip()] if args.pool else None
        watch = client.remap_watch(
            args.app,
            mapping,
            pool=pool,
            interval_s=args.interval,
            threshold=args.threshold,
            cooldown_s=args.cooldown,
            safety_factor=args.safety_factor,
            seed=args.seed,
            max_ticks=args.ticks,
        )
        print(
            f"watch {watch['id']} on {watch['app']}: baseline "
            f"{watch['baseline_s']:.2f}s, every {watch['interval_s']:g}s"
        )
        if not args.wait:
            return 0
        try:
            decision = client.wait_decision(watch["id"], timeout_s=args.timeout)
        except TimeoutError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        verdict = "remap" if decision["remap"] else "stay"
        print(
            f"decision at tick {decision['tick']}: {verdict} "
            f"(drift {decision['drift'] * 100:+.1f}%, savings {decision['savings_s']:.2f}s, "
            f"migration cost {decision['migration_cost_s']:.2f}s)"
        )
        if decision["remap"]:
            for move in decision["moves"]:
                print(
                    f"  rank {move['rank']}: {move['source']} -> {move['destination']} "
                    f"({move['seconds'] * 1e3:.1f} ms)"
                )
        return 0
    except ServerError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"error: cannot reach daemon at {args.host}:{args.port}: {exc}") from None


def cmd_metrics(args) -> int:
    client = _client(args)
    try:
        if args.raw:
            print(client.metrics_text(), end="")
            return 0
        metrics = client.metrics()
    except ServerError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"error: cannot reach daemon at {args.host}:{args.port}: {exc}") from None
    for name, family in metrics.items():
        print(f"{name} ({family['type']})")
        for sample in family["samples"]:
            labels = sample["labels"]
            tag = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if family["type"] == "histogram":
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                print(f"  {tag or '(all)'}  count={count}  mean={mean * 1e3:.2f} ms")
            else:
                print(f"  {tag or '(all)'}  {sample['value']:g}")
    return 0


# -- parser ---------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CBES reproduction: calibrate, profile, and schedule on simulated clusters.",
    )
    parser.add_argument("--db", default=".cbes-db", help="profile database directory")
    parser.add_argument(
        "--cluster", default="orange-grove", choices=sorted(CLUSTERS), help="target cluster"
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("calibrate", help="run the off-line calibration phase")
    p.add_argument("--noise", type=float, default=0.01, help="measurement noise sigma")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("profile", help="profile an application")
    p.add_argument("app", help="application spec, e.g. lu.A, hpl.5000, aztec.500")
    p.add_argument("--nprocs", type=int, default=8)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("schedule", help="pick a mapping for a profiled application")
    p.add_argument("app")
    p.add_argument("--scheduler", default="cs", choices=sorted(SCHEDULERS))
    p.add_argument("--arch", default=None, help="restrict the pool to one architecture")
    p.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="search worker processes (SA restarts / GA islands fan out)",
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds; returns the best-so-far at expiry",
    )
    p.add_argument(
        "--islands",
        type=int,
        default=1,
        help="GA island populations with ring migration (ga scheduler only)",
    )
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("predict", help="evaluate an explicit mapping")
    p.add_argument("app")
    p.add_argument("nodes", help="comma-separated node ids, rank order")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("inspect", help="show cluster facts and stored profiles")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("demo", help="end-to-end walkthrough")
    p.set_defaults(func=cmd_demo)

    def add_endpoint_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1", help="daemon address")
        p.add_argument("--port", type=int, default=8080, help="daemon port")
        p.add_argument("--timeout", type=float, default=300.0, help="request/wait timeout (s)")

    p = sub.add_parser("serve", help="run the scheduling daemon")
    add_endpoint_args(p)
    p.add_argument("--workers", type=int, default=2, help="job worker threads")
    p.add_argument("--queue-limit", type=int, default=16, help="max queued jobs before 429")
    p.add_argument("--job-ttl", type=float, default=600.0, help="finished-job retention (s)")
    p.add_argument(
        "--refresh-interval",
        type=float,
        default=10.0,
        help="snapshot refresh period in seconds (0 disables refresh)",
    )
    p.add_argument(
        "--no-monitor",
        dest="monitor",
        action="store_false",
        help="serve oracle snapshots instead of monitored/forecast ones",
    )
    p.add_argument("--forecaster", default="last-value", help="monitor forecaster kind")
    p.add_argument("--log-level", default="info", help="repro.server log level")
    p.add_argument(
        "--data-dir",
        default=None,
        help="journal job state to this directory (crash-recoverable; default in-memory)",
    )
    p.add_argument(
        "--fsync",
        default="interval",
        choices=["always", "interval", "never"],
        help="journal fsync policy (with --data-dir)",
    )
    p.add_argument(
        "--replica-id", default="", help="identity reported in /v1/healthz (fleet replicas)"
    )
    p.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="largest accepted request body (413 beyond it)",
    )
    p.set_defaults(func=cmd_serve, monitor=True)

    p = sub.add_parser("fleet", help="run a sharded multi-daemon router")
    p.add_argument("--host", default="127.0.0.1", help="router bind address")
    p.add_argument("--port", type=int, default=8080, help="router port")
    p.add_argument(
        "--replicas", type=int, default=0, help="spawn N `repro serve` replica subprocesses"
    )
    p.add_argument(
        "--backends",
        default=None,
        help="route to these already-running daemons (comma-separated host:port)",
    )
    p.add_argument("--workers", type=int, default=2, help="job worker threads per replica")
    p.add_argument(
        "--queue-limit", type=int, default=16, help="max queued jobs per replica before 429"
    )
    p.add_argument(
        "--data-root",
        default=None,
        help="per-replica journal directories under this root (crash-recoverable replicas)",
    )
    p.add_argument(
        "--fsync",
        default="interval",
        choices=["always", "interval", "never"],
        help="replica journal fsync policy (with --data-root)",
    )
    p.add_argument("--log-level", default="info", help="repro.fleet log level")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("submit", help="submit a job to a running daemon")
    add_endpoint_args(p)
    p.add_argument("app", help="profiled application name, e.g. lu.A")
    p.add_argument("--kind", default="schedule", choices=["schedule", "predict"])
    p.add_argument("--scheduler", default="cs", choices=sorted(SCHEDULERS))
    p.add_argument("--arch", default=None, help="restrict the pool to one architecture")
    p.add_argument(
        "--nodes",
        default=None,
        help="comma-separated node ids (the pool for schedule, the mapping for predict)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="search worker processes for schedule jobs",
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds for schedule jobs",
    )
    p.add_argument("--no-wait", action="store_true", help="print the job id and return")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("metrics", help="pretty-print a running daemon's metrics")
    add_endpoint_args(p)
    p.add_argument(
        "--raw", action="store_true", help="print the Prometheus text exposition verbatim"
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("jobs", help="list a running daemon's jobs")
    add_endpoint_args(p)
    p.add_argument("job_id", nargs="?", default=None, help="show one job as JSON")
    p.add_argument(
        "--state",
        default=None,
        choices=["queued", "running", "done", "failed"],
        help="list only jobs in this state",
    )
    p.add_argument("--limit", type=int, default=None, help="page size")
    p.add_argument("--after", default=None, help="list jobs submitted after this job id")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("remap", help="drive a running daemon's online-remapping loop")
    rsub = p.add_subparsers(dest="remap_command", required=True)

    rw = rsub.add_parser("watch", help="register a remap watch on a running application")
    add_endpoint_args(rw)
    rw.add_argument("app", help="profiled application name, e.g. lu.A")
    rw.add_argument("mapping", help="comma-separated node ids, rank order (current mapping)")
    rw.add_argument("--pool", default=None, help="comma-separated candidate node pool")
    rw.add_argument("--interval", type=float, default=1.0, help="watch tick period (s)")
    rw.add_argument("--threshold", type=float, default=0.10, help="relative drift that fires")
    rw.add_argument("--cooldown", type=float, default=0.0, help="min seconds between firings")
    rw.add_argument(
        "--safety-factor",
        type=float,
        default=1.5,
        help="migration cost inflation in the remap rule",
    )
    rw.add_argument("--ticks", type=int, default=None, help="stop the watch after N ticks")
    rw.add_argument(
        "--wait",
        action="store_true",
        help="block until the watch records a decision (exit 1 if it never does)",
    )
    rw.set_defaults(func=cmd_remap)

    rp = rsub.add_parser("wait", help="block until a watch records a decision")
    add_endpoint_args(rp)
    rp.add_argument("watch_id", help="watch id printed by `repro remap watch`")
    rp.set_defaults(func=cmd_remap)

    rd = rsub.add_parser("decisions", help="list recorded remap decisions")
    add_endpoint_args(rd)
    rd.add_argument("--limit", type=int, default=None, help="newest N decisions only")
    rd.add_argument("--json", action="store_true", help="print raw decision documents")
    rd.set_defaults(func=cmd_remap)

    ri = rsub.add_parser("inject", help="inject background load (drift) into the daemon's cluster")
    add_endpoint_args(ri)
    ri.add_argument(
        "load",
        help="comma-separated node=cpu[:nic] assignments, e.g. 'grove-n00=1.5,grove-n01=1.5'",
    )
    ri.set_defaults(func=cmd_remap)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
