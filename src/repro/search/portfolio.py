"""Process-parallel portfolio of search restarts with deterministic reduction.

The portfolio fans independent SA restarts (and GA island epochs, via
:mod:`repro.search.islands`) across a :class:`~concurrent.futures.
ProcessPoolExecutor` and reduces the outcomes with a deterministic
best-of: ties on energy break by task index, results come back through
the order-preserving ``Executor.map``, and every task owns a seed
substream — so ``workers=1`` and ``workers=N`` produce byte-identical
mappings for the same master seed.  ``workers=1`` does not start a pool
at all: it runs the very same :class:`~repro.search.worker.TaskRunner`
inline.

Two opt-in features trade that determinism for throughput and are
therefore off by default: ``share_bound`` (chains publish their best
cost through a shared value and abandon basins they have already lost)
and per-task deadlines (set by the scheduler's ``time_budget``).

By default the pooled paths run on the process-wide *warm* pool
(:mod:`repro.search.pool`): the executor persists across calls and its
workers cache their ``TaskRunner`` per spec fingerprint, so repeat
schedule calls skip both the pool spawn and the context rebuild.
``reuse_pool=False`` (or ``REPRO_WARM_POOL=0``) restores the historical
per-call executor; ``share_bound=True`` implies it, because the shared
ctypes value must thread through a dedicated pool initializer.
"""

from __future__ import annotations

import math
import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import telemetry
from repro.core.fast_eval import EvaluationContext
from repro.core.mapping import TaskMapping
from repro.search.bound import LocalBound
from repro.search.pool import (
    default_start_method,
    effective_workers,
    get_pool,
    warm_pool_enabled,
)
from repro.search.spec import SearchSpec
from repro.search.worker import (
    SaOutcome,
    SaTask,
    ScanOutcome,
    ScanTask,
    TaskRunner,
    _initialize_worker,
    _run_sa_task,
    _run_scan_task,
)

__all__ = [
    "ParallelPortfolio",
    "PortfolioResult",
    "ScanResult",
    "default_start_method",
    "effective_workers",
]


@dataclass(frozen=True)
class PortfolioResult:
    """Reduced outcome of one portfolio run."""

    mapping: TaskMapping
    energy: float
    #: Per-restart best-energy trajectories concatenated in task order
    #: (stable across parallel degrees, unlike completion order).
    history: list[float]
    evaluations: int
    outcomes: tuple[SaOutcome, ...]


@dataclass(frozen=True)
class ScanResult:
    """Energies for a candidate scan, in candidate submission order."""

    energies: list[float]
    evaluations: int
    #: Index of the best (lowest-energy) candidate; ties by position.
    best_index: int


class ParallelPortfolio:
    """Runs a batch of search tasks over one spec, inline or in a pool."""

    def __init__(
        self,
        workers: int = 1,
        *,
        mp_context: str | None = None,
        share_bound: bool = False,
        bound_margin: float = 0.05,
        reuse_pool: bool | None = None,
    ):
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(f"workers must be an integer >= 1, got {workers!r}")
        if bound_margin < 0.0:
            raise ValueError("bound_margin must be >= 0")
        self._workers = workers
        self._mp_context = mp_context
        self._share_bound = share_bound
        self._margin = bound_margin
        # share_bound needs the legacy per-call executor: the shared
        # ctypes value can only reach workers through an initializer.
        self._reuse_pool = (
            (warm_pool_enabled() if reuse_pool is None else reuse_pool)
            and not share_bound
        )

    @property
    def workers(self) -> int:
        return self._workers

    def run_sa(
        self,
        spec: SearchSpec,
        tasks: list[SaTask],
        *,
        direction: str = "minimize",
        context: EvaluationContext | None = None,
    ) -> PortfolioResult:
        """Execute *tasks* and reduce to the single best outcome.

        *context* is an optional pre-built evaluation context for the
        inline (``workers == 1``) path, so a scheduler can hand over its
        evaluator's cached context instead of rebuilding one; it is
        ignored when a pool is used (workers build their own).
        """
        if not tasks:
            raise ValueError("portfolio needs at least one task")
        if direction not in ("minimize", "maximize"):
            raise ValueError("direction must be 'minimize' or 'maximize'")
        nworkers = min(self._workers, len(tasks))
        if nworkers <= 1:
            bound = LocalBound(self._margin) if self._share_bound else None
            runner = TaskRunner(spec, bound=bound, context=context)
            outcomes = [runner.run_sa(task) for task in tasks]
        elif self._reuse_pool:
            outcomes = get_pool(self._mp_context).run(spec, "sa", tasks, workers=nworkers)
        else:
            outcomes = self._run_pool(spec, tasks)
        return reduce_outcomes(outcomes, direction)

    def run_scan(
        self,
        spec: SearchSpec,
        candidates: list[TaskMapping],
        *,
        context: EvaluationContext | None = None,
    ) -> ScanResult:
        """Score *candidates* as batched sweeps, preserving order.

        The inline path submits the whole population as one
        ``evaluate_many`` call; with a pool the candidates are split into
        one contiguous slice per worker, each scored as a single batch,
        and reassembled in slice order — so the energies (and the
        deterministic ``best_index``) are identical at every parallel
        degree.
        """
        if not candidates:
            raise ValueError("scan needs at least one candidate mapping")
        nworkers = min(self._workers, len(candidates))
        if nworkers <= 1:
            runner = TaskRunner(spec, context=context)
            outcomes = [runner.run_scan(ScanTask(0, tuple(candidates)))]
        else:
            step = (len(candidates) + nworkers - 1) // nworkers
            tasks = [
                ScanTask(i, tuple(candidates[i * step : (i + 1) * step]))
                for i in range(nworkers)
                if candidates[i * step : (i + 1) * step]
            ]
            if self._reuse_pool:
                outcomes = get_pool(self._mp_context).run(
                    spec, "scan", tasks, workers=nworkers
                )
            else:
                outcomes = self._run_scan_pool(spec, tasks)
        ordered = sorted(outcomes, key=lambda o: o.index)
        registry = telemetry.get_registry()
        for outcome in ordered:
            if outcome.metrics is not None:
                registry.apply_delta(outcome.metrics)
        energies = [e for outcome in ordered for e in outcome.energies]
        best_index = min(range(len(energies)), key=lambda i: (energies[i], i))
        return ScanResult(
            energies=energies,
            evaluations=sum(o.evaluations for o in ordered),
            best_index=best_index,
        )

    def _run_scan_pool(self, spec: SearchSpec, tasks: list[ScanTask]) -> list[ScanOutcome]:
        spec.ensure_picklable()
        ctx = mp.get_context(self._mp_context or default_start_method())
        max_workers = len(tasks)
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=ctx,
            initializer=_initialize_worker,
            initargs=(spec, None, 0.0, telemetry.enabled()),
        ) as executor:
            # Explicit chunksize: ship each worker its whole task share
            # in one IPC round-trip instead of the map() default of one
            # message per task.  Chunking only changes which process
            # runs which slice — slice contents (and therefore energies
            # and best_index) are already fixed, so determinism holds.
            chunksize = math.ceil(len(tasks) / max_workers)
            return list(executor.map(_run_scan_task, tasks, chunksize=chunksize))

    def _run_pool(self, spec: SearchSpec, tasks: list[SaTask]) -> list[SaOutcome]:
        spec.ensure_picklable()
        ctx = mp.get_context(self._mp_context or default_start_method())
        bound_value = ctx.Value("d", math.inf) if self._share_bound else None
        max_workers = min(self._workers, len(tasks))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=ctx,
            initializer=_initialize_worker,
            initargs=(spec, bound_value, self._margin, telemetry.enabled()),
        ) as executor:
            # Executor.map preserves task order regardless of which
            # worker finishes first — half of the determinism story.
            # The explicit chunksize batches each worker's expected task
            # share into one IPC message; outcomes are a pure function
            # of the task, so placement cannot change the reduction.
            chunksize = math.ceil(len(tasks) / max_workers)
            return list(executor.map(_run_sa_task, tasks, chunksize=chunksize))


def reduce_outcomes(outcomes: list[SaOutcome], direction: str) -> PortfolioResult:
    """Deterministic best-of: best energy, ties broken by task index."""
    sign = 1.0 if direction == "minimize" else -1.0
    ordered = sorted(outcomes, key=lambda o: o.index)
    best = min(ordered, key=lambda o: (sign * o.energy, o.index))
    # Fold each task's telemetry into the ambient registry in task-index
    # order — deterministic regardless of worker count or finish order.
    registry = telemetry.get_registry()
    for outcome in ordered:
        if outcome.metrics is not None:
            registry.apply_delta(outcome.metrics)
    history: list[float] = []
    for outcome in ordered:
        history.extend(outcome.history)
    return PortfolioResult(
        mapping=best.mapping,
        energy=best.energy,
        history=history,
        evaluations=sum(o.evaluations for o in ordered),
        outcomes=tuple(ordered),
    )
