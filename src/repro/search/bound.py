"""Best-so-far bounds shared between concurrent search chains.

Both implement the :class:`repro.schedulers.annealing.CostBound`
protocol and work in *cost* space (the sign-adjusted energy the annealer
minimizes, so one bound serves both search directions).  A chain is
pruned when its own best cost trails the global best by more than a
relative *margin* — it publishes what it has and stops burning CPU on a
basin it has already lost.

Pruning is a throughput heuristic, not part of the determinism contract:
which chain crosses the margin first depends on scheduling, so the
portfolio only installs a bound when ``share_bound=True`` is requested
explicitly.
"""

from __future__ import annotations

import math

__all__ = ["LocalBound", "SharedBound"]


def _beaten(cost: float, best: float, margin: float) -> bool:
    """Whether *cost* trails *best* by more than the relative margin."""
    if not math.isfinite(best):
        return False
    return cost - best > margin * max(abs(best), 1e-12)


class LocalBound:
    """In-process bound, used when the portfolio runs inline."""

    def __init__(self, margin: float = 0.05):
        if margin < 0.0:
            raise ValueError("margin must be >= 0")
        self.margin = margin
        self._best = math.inf

    def update(self, cost: float) -> None:
        if cost < self._best:
            self._best = cost

    def should_prune(self, cost: float) -> bool:
        return _beaten(cost, self._best, self.margin)


class SharedBound:
    """Cross-process bound over a ``multiprocessing`` double value.

    The value must be created by the *parent* (``ctx.Value("d", inf)``)
    and handed to workers through the pool initializer — shared ctypes
    cannot travel through the task queue.
    """

    def __init__(self, value, margin: float = 0.05):
        if margin < 0.0:
            raise ValueError("margin must be >= 0")
        self.margin = margin
        self._value = value

    def update(self, cost: float) -> None:
        with self._value.get_lock():
            if cost < self._value.value:
                self._value.value = cost

    def should_prune(self, cost: float) -> bool:
        # A torn read cannot happen for an aligned double on any platform
        # we support, but take the lock anyway: update() holds it and the
        # read is vastly off the hot path (once per temperature step).
        with self._value.get_lock():
            best = self._value.value
        return _beaten(cost, best, self.margin)
