"""Persistent warm worker pool with fingerprint-cached contexts.

The portfolio historically created a fresh ``ProcessPoolExecutor`` per
``schedule()`` call and every worker rebuilt its
:class:`~repro.core.fast_eval.EvaluationContext` from the pickled
:class:`~repro.search.spec.SearchSpec` — the service paid full
cold-start on every request.  This module keeps one module-level
:class:`WorkerPool` alive across calls:

* the executor is spawned lazily on first use, reused by every
  subsequent portfolio/island run (including the daemon's job worker
  threads), grown in place when a caller asks for more parallelism, and
  reaped after :data:`DEFAULT_IDLE_TIMEOUT_S` of inactivity;
* each worker process holds a small LRU cache of
  :class:`~repro.search.worker.TaskRunner`s keyed by
  :meth:`SearchSpec.fingerprint` — the spec ships once per fingerprint
  and subsequent tasks reference it by key.  A worker that has not seen
  the key yet answers with a ``missing_spec`` reply and the master
  resends that task with the spec attached (an executor cannot target a
  specific worker, so the "ship once" protocol needs a retry path);
* cache hit/miss/eviction counts ride back on every reply and are folded
  into the ambient :mod:`repro.telemetry` registry by the master.

Determinism is untouched: a task's outcome is a pure function of the
task and the spec (runners carry no cross-task state that reaches the
result — evaluation counts are reported as per-task deltas), so which
worker, which cache entry, or how warm the pool is cannot change the
reduced mapping.  ``parallel=1`` keeps bypassing the pool entirely.

The shared best-so-far bound of ``share_bound=True`` still uses the
legacy per-call executor: shared ctypes must thread through a pool
*initializer*, which a long-lived multi-spec pool cannot re-run per
call.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace

from repro import telemetry
from repro.search.spec import SearchSpec
from repro.search.worker import GaEpochTask, SaTask, ScanTask, TaskRunner

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_IDLE_TIMEOUT_S",
    "PoolTask",
    "PoolReply",
    "WorkerPool",
    "default_start_method",
    "effective_workers",
    "get_pool",
    "shutdown_pool",
]

#: TaskRunners kept per worker process (override: REPRO_WORKER_CACHE).
DEFAULT_CACHE_CAPACITY = 8
#: Idle seconds before the warm executor is reaped (REPRO_POOL_IDLE_S).
DEFAULT_IDLE_TIMEOUT_S = 300.0

#: Metric family declarations (name, help, labelnames) — shared with the
#: daemon, which pre-declares them for first-scrape visibility.
WORKER_CACHE_EVENTS_TOTAL = (
    "cbes_worker_cache_events_total",
    "Fingerprint-keyed TaskRunner cache events inside pool workers.",
    ("event",),
)
POOL_SPAWNS_TOTAL = (
    "cbes_pool_spawns_total",
    "Warm worker pool executors created (cold starts).",
)
SPEC_RESENDS_TOTAL = (
    "cbes_pool_spec_resends_total",
    "Tasks resent with the full spec after a worker-side cache miss.",
)


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the code for free),
    ``spawn`` elsewhere."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def effective_workers(requested: int) -> int:
    """Clamp a worker request to the CPUs actually schedulable here."""
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        available = os.cpu_count() or 1
    return max(1, min(requested, available))


def warm_pool_enabled() -> bool:
    """Whether the persistent pool is on (REPRO_WARM_POOL, default on)."""
    value = os.environ.get("REPRO_WARM_POOL", "").strip().lower()
    if not value:
        return True
    return value not in ("0", "false", "no", "off")


def _cache_capacity() -> int:
    try:
        value = int(os.environ.get("REPRO_WORKER_CACHE", DEFAULT_CACHE_CAPACITY))
    except ValueError:
        return DEFAULT_CACHE_CAPACITY
    return max(1, value)


def _idle_timeout() -> float | None:
    raw = os.environ.get("REPRO_POOL_IDLE_S", "").strip()
    if not raw:
        return DEFAULT_IDLE_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_IDLE_TIMEOUT_S
    return value if value > 0 else None


@dataclass(frozen=True)
class PoolTask:
    """Envelope shipping one search task to a warm worker.

    ``spec`` is attached only the first time the master ships a given
    ``key`` (and on miss-retries); every other envelope carries the key
    alone, so a cached worker pays one short string instead of a full
    spec pickle per task.
    """

    key: str
    kind: str  # "sa" | "scan" | "ga"
    task: SaTask | ScanTask | GaEpochTask
    spec: SearchSpec | None = None
    telemetry_enabled: bool = False


@dataclass(frozen=True)
class PoolReply:
    """One task's outcome plus the worker-side cache events it caused."""

    outcome: object = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: The worker had no runner for ``key`` and no spec to build one;
    #: the master must resend the task with the spec attached.
    missing_spec: bool = False


# -- worker-process side -------------------------------------------------
#: This process's fingerprint -> TaskRunner LRU (most recent last).
_CACHE: "OrderedDict[str, TaskRunner]" = OrderedDict()


def _initialize_pool_worker() -> None:
    """Executor initializer: start every worker with an empty cache."""
    global _CACHE
    _CACHE = OrderedDict()


def _run_pool_task(pt: PoolTask) -> PoolReply:
    """Execute one envelope against this worker's cached runners."""
    hits = misses = evictions = 0
    runner = _CACHE.get(pt.key)
    if runner is not None:
        _CACHE.move_to_end(pt.key)
        hits = 1
    else:
        if pt.spec is None:
            return PoolReply(missing_spec=True)
        runner = TaskRunner(pt.spec, telemetry_enabled=pt.telemetry_enabled)
        misses = 1
        _CACHE[pt.key] = runner
        while len(_CACHE) > _cache_capacity():
            _CACHE.popitem(last=False)
            evictions += 1
    # The master's telemetry setting can change between calls that hit
    # the same cached runner; honor the per-task flag, not the cached one.
    runner.telemetry_enabled = pt.telemetry_enabled
    task = pt.task
    if isinstance(task, SaTask):
        outcome: object = runner.run_sa(task)
    elif isinstance(task, ScanTask):
        outcome = runner.run_scan(task)
    else:
        outcome = runner.run_ga_epoch(task)
    return PoolReply(outcome=outcome, hits=hits, misses=misses, evictions=evictions)


# -- master side ---------------------------------------------------------
class WorkerPool:
    """A lazily spawned, reusable ProcessPoolExecutor with warm workers.

    Thread-safe: the daemon's job worker threads share one instance.  The
    executor grows (by replacement) when a run asks for more workers than
    it currently has and shrinks only through the idle reaper or an
    explicit :meth:`shutdown`.
    """

    def __init__(
        self,
        *,
        mp_context: str | None = None,
        idle_timeout_s: float | None = None,
    ) -> None:
        self._mp_context = mp_context or default_start_method()
        self._idle_timeout = idle_timeout_s if idle_timeout_s is not None else _idle_timeout()
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._size = 0
        #: Spec fingerprints already shipped to the *current* executor.
        self._shipped: set[str] = set()
        self._reaper: threading.Timer | None = None
        self._active = 0
        self._spawns = 0
        self._last_used = time.monotonic()

    @property
    def mp_context(self) -> str:
        return self._mp_context

    @property
    def workers(self) -> int:
        """Current executor size (0 when cold)."""
        return self._size

    @property
    def spawns(self) -> int:
        """How many executors this pool has created (cold starts)."""
        return self._spawns

    def run(self, spec: SearchSpec, kind: str, tasks: list, *, workers: int) -> list:
        """Execute *tasks* for *spec* on warm workers; outcomes in order.

        At most *workers* tasks are in flight at once even when the
        resident executor is larger (a previous caller may have grown
        it), so a run's parallelism matches what its caller asked for.
        """
        if not tasks:
            return []
        spec.ensure_picklable()
        key = spec.fingerprint()
        workers = max(1, min(workers, len(tasks)))
        with self._lock:
            self._active += 1
        try:
            executor = self._executor_for(workers)
            with self._lock:
                first_time = key not in self._shipped
                self._shipped.add(key)
            enabled = telemetry.enabled()
            envelopes = [
                PoolTask(
                    key=key,
                    kind=kind,
                    task=task,
                    spec=spec if first_time else None,
                    telemetry_enabled=enabled,
                )
                for task in tasks
            ]
            replies = self._submit_windowed(executor, envelopes, window=workers)
            missed = [i for i, reply in enumerate(replies) if reply.missing_spec]
            if missed:
                # A worker the key never reached (new process, evicted
                # entry, or a raced first ship) asked for the spec.
                redo = [replace(envelopes[i], spec=spec) for i in missed]
                for i, reply in zip(missed, self._submit_windowed(executor, redo, window=workers)):
                    replies[i] = reply
                telemetry.get_registry().counter(*SPEC_RESENDS_TOTAL).inc(len(missed))
            self._record_cache_events(replies)
            return [reply.outcome for reply in replies]
        finally:
            self._touch()

    def shutdown(self, *, wait: bool = True) -> None:
        """Tear the executor down now; the next run starts cold."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._size = 0
            self._shipped.clear()
            if self._reaper is not None:
                self._reaper.cancel()
                self._reaper = None
        if executor is not None:
            executor.shutdown(wait=wait)

    # -- internals -------------------------------------------------------
    def _executor_for(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is not None and self._size < workers and self._active == 1:
                # Grow by replacement: the old executor finishes any
                # in-flight tasks on its own processes, the new one
                # starts cold (caches re-fill on first use).  Only safe
                # when this run is the sole active user — a concurrent
                # run still submitting to the old executor would hit its
                # closed state, so it keeps the smaller pool instead
                # (the submit window caps its parallelism anyway).
                self._executor.shutdown(wait=False)
                self._executor = None
                self._shipped.clear()
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=mp.get_context(self._mp_context),
                    initializer=_initialize_pool_worker,
                )
                self._size = workers
                self._spawns += 1
                telemetry.get_registry().counter(*POOL_SPAWNS_TOTAL).inc()
            return self._executor

    @staticmethod
    def _submit_windowed(
        executor: ProcessPoolExecutor, envelopes: list[PoolTask], *, window: int
    ) -> list[PoolReply]:
        """Run envelopes with a bounded in-flight window; replies in order."""
        replies: list[PoolReply | None] = [None] * len(envelopes)
        pending: dict = {}
        cursor = 0
        window = max(1, window)
        while cursor < len(envelopes) or pending:
            while cursor < len(envelopes) and len(pending) < window:
                pending[executor.submit(_run_pool_task, envelopes[cursor])] = cursor
                cursor += 1
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                replies[pending.pop(future)] = future.result()
        return replies  # type: ignore[return-value]

    @staticmethod
    def _record_cache_events(replies: list[PoolReply]) -> None:
        registry = telemetry.get_registry()
        counter = registry.counter(*WORKER_CACHE_EVENTS_TOTAL)
        hits = sum(reply.hits for reply in replies)
        misses = sum(reply.misses for reply in replies)
        evictions = sum(reply.evictions for reply in replies)
        if hits:
            counter.inc(hits, event="hit")
        if misses:
            counter.inc(misses, event="miss")
        if evictions:
            counter.inc(evictions, event="evicted")

    def _touch(self) -> None:
        """Mark activity and (re)arm the idle reaper."""
        with self._lock:
            self._active -= 1
            self._last_used = time.monotonic()
            if self._reaper is not None:
                self._reaper.cancel()
                self._reaper = None
            if self._idle_timeout is not None and self._executor is not None:
                self._reaper = threading.Timer(self._idle_timeout, self._reap)
                self._reaper.daemon = True
                self._reaper.start()

    def _reap(self) -> None:
        with self._lock:
            if self._executor is None or self._active > 0:
                return
            if time.monotonic() - self._last_used < self._idle_timeout:
                return
            executor, self._executor = self._executor, None
            self._size = 0
            self._shipped.clear()
            self._reaper = None
        executor.shutdown(wait=False)


# -- module-level singleton ----------------------------------------------
_POOL: WorkerPool | None = None
_POOL_LOCK = threading.Lock()


def get_pool(mp_context: str | None = None) -> WorkerPool:
    """The process-wide warm pool (created on first call).

    A caller that names a different ``mp_context`` than the resident
    pool's replaces it — start methods cannot be mixed in one executor.
    """
    global _POOL
    wanted = mp_context or default_start_method()
    stale: WorkerPool | None = None
    with _POOL_LOCK:
        if _POOL is not None and _POOL.mp_context != wanted:
            stale, _POOL = _POOL, None
        if _POOL is None:
            _POOL = WorkerPool(mp_context=wanted)
        pool = _POOL
    if stale is not None:
        stale.shutdown(wait=False)
    return pool


def shutdown_pool(*, wait: bool = True) -> None:
    """Tear down the process-wide pool (next schedule call starts cold)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_pool)
