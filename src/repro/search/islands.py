"""Island-model GA: independent populations with ring migration.

Each island is a self-contained GA population with its own RNG
substream.  Islands evolve in *epochs* of ``migration_interval``
generations — inside an epoch an island never communicates, so epochs of
different islands run in different worker processes.  At each epoch
boundary the master performs a deterministic ring migration: island
``i``'s top ``migrants`` individuals (ties by member index) replace the
worst individuals of island ``(i + 1) % islands``, all computed from the
pre-migration snapshot so the exchange is order-independent.

Determinism: an island's trajectory is a pure function of its initial
RNG state and the migrants it receives, and migration is a pure function
of the epoch outputs — so the final result is identical whether epochs
run inline (``workers=1``) or across any number of processes.

The epoch barrier is the price of migration; unlike the SA portfolio
there *is* a synchronisation point per epoch.  The per-island patience
early-stop of the serial GA is intentionally absent here: islands must
stay in lockstep for migration to be deterministic.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import telemetry
from repro._util import spawn_rng
from repro.core.mapping import TaskMapping
from repro.schedulers.genetic import GeneticParams
from repro.search.pool import default_start_method, get_pool, warm_pool_enabled
from repro.search.spec import SearchSpec
from repro.search.worker import (
    GaEpochTask,
    IslandState,
    TaskRunner,
    _initialize_worker,
    _run_ga_epoch_task,
)

__all__ = ["IslandResult", "run_island_ga"]


@dataclass(frozen=True)
class IslandResult:
    """Reduced outcome of one island-GA run."""

    mapping: TaskMapping
    energy: float
    #: Per-island best-so-far trajectories concatenated in island order.
    history: list[float]
    evaluations: int
    islands: tuple[IslandState, ...]


def run_island_ga(
    spec: SearchSpec,
    params: GeneticParams,
    *,
    islands: int,
    migration_interval: int,
    migrants: int,
    seed: int,
    rng_parts: tuple,
    workers: int = 1,
    mp_context: str | None = None,
    deadline: float | None = None,
    reuse_pool: bool | None = None,
) -> IslandResult:
    """Evolve *islands* populations with ring migration; reduce to best.

    ``reuse_pool`` (default: the ``REPRO_WARM_POOL`` setting, on) runs
    epochs on the process-wide warm pool instead of a per-call executor.
    """
    if islands < 2:
        raise ValueError("island GA needs at least 2 islands")
    if migration_interval < 1:
        raise ValueError("migration_interval must be >= 1")
    if not 0 < migrants < params.population:
        raise ValueError("migrants must be in (0, population)")

    states = [
        IslandState(index=i, rng=spawn_rng(seed, *rng_parts, "island", i))
        for i in range(islands)
    ]
    generations = params.generations

    def epochs(mapper) -> list[IslandState]:
        nonlocal states
        done = 0
        # The +1 covers population initialisation, which the first epoch
        # performs inside the workers (so it uses each island's own RNG).
        while done < generations:
            if deadline is not None and time.monotonic() >= deadline and done > 0:
                break
            span = min(migration_interval, generations - done)
            tasks = [GaEpochTask(state, params, span, deadline) for state in states]
            states = mapper(tasks)
            _drain_metrics(states)
            done += span
            if done < generations:
                _ring_migrate(states, migrants)
        return states

    nworkers = min(workers, islands)
    if reuse_pool is None:
        reuse_pool = warm_pool_enabled()
    if nworkers <= 1:
        runner = TaskRunner(spec)
        states = epochs(lambda tasks: [runner.run_ga_epoch(t) for t in tasks])
    elif reuse_pool:
        pool = get_pool(mp_context)
        states = epochs(lambda tasks: pool.run(spec, "ga", tasks, workers=nworkers))
    else:
        spec.ensure_picklable()
        ctx = mp.get_context(mp_context or default_start_method())
        with ProcessPoolExecutor(
            max_workers=nworkers,
            mp_context=ctx,
            initializer=_initialize_worker,
            initargs=(spec, None, 0.0, telemetry.enabled()),
        ) as executor:
            # Explicit chunksize batches each worker's island share into
            # one IPC message per epoch (see ParallelPortfolio._run_pool).
            chunksize = math.ceil(islands / nworkers)
            states = epochs(
                lambda tasks: list(
                    executor.map(_run_ga_epoch_task, tasks, chunksize=chunksize)
                )
            )

    return _reduce(states)


def _drain_metrics(states: list[IslandState]) -> None:
    """Fold each island's epoch telemetry into the ambient registry.

    Applied in island order at every epoch barrier (deterministic across
    worker counts) and cleared so a delta never rides back out to the
    workers with the next epoch's state.
    """
    registry = telemetry.get_registry()
    for state in states:
        if state.metrics is not None:
            registry.apply_delta(state.metrics)
            state.metrics = None


def _ring_migrate(states: list[IslandState], migrants: int) -> None:
    """Deterministic elite exchange along the ring, in place.

    All migrant packs are taken from the pre-migration snapshot before
    any island is modified, so the result cannot depend on visit order.
    """
    packs = []
    for state in states:
        order = sorted(
            range(len(state.population)), key=lambda k: (state.fitness[k], k)
        )
        packs.append(
            [(state.population[k], state.fitness[k]) for k in order[:migrants]]
        )
    for i, state in enumerate(states):
        incoming = packs[(i - 1) % len(states)]
        worst_first = sorted(
            range(len(state.population)), key=lambda k: (-state.fitness[k], k)
        )
        for slot, (member, fitness) in zip(worst_first, incoming, strict=False):
            state.population[slot] = member
            state.fitness[slot] = fitness


def _reduce(states: list[IslandState]) -> IslandResult:
    """Best individual over all islands; ties by (island, member) index."""
    best_key = (math.inf, -1, -1)
    best_mapping: TaskMapping | None = None
    for state in states:
        for k, fitness in enumerate(state.fitness):
            key = (fitness, state.index, k)
            if key < best_key:
                best_key = key
                best_mapping = state.population[k]
    assert best_mapping is not None
    history: list[float] = []
    for state in states:
        history.extend(state.history)
    return IslandResult(
        mapping=best_mapping,
        energy=best_key[0],
        history=history,
        evaluations=sum(s.evaluations for s in states),
        islands=tuple(states),
    )
