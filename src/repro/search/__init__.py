"""Process-parallel search engine for CBES schedulers.

Layers on the PR-1 fast-evaluation machinery: a
:class:`~repro.search.spec.SearchSpec` ships one search problem to
worker processes, :class:`~repro.search.portfolio.ParallelPortfolio`
fans SA restarts out with a deterministic best-of reduction, and
:func:`~repro.search.islands.run_island_ga` runs the island-model GA
with ring migration.  ``parallel=1`` and ``parallel=N`` produce
byte-identical mappings for the same master seed.
"""

from repro.search.bound import LocalBound, SharedBound
from repro.search.islands import IslandResult, run_island_ga
from repro.search.pool import WorkerPool, get_pool, shutdown_pool
from repro.search.portfolio import ParallelPortfolio, PortfolioResult, effective_workers
from repro.search.spec import SearchSpec, draw_initial_mapping, greedy_mapping
from repro.search.worker import GaEpochTask, IslandState, SaOutcome, SaTask, TaskRunner

__all__ = [
    "SearchSpec",
    "draw_initial_mapping",
    "greedy_mapping",
    "LocalBound",
    "SharedBound",
    "ParallelPortfolio",
    "PortfolioResult",
    "effective_workers",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "SaTask",
    "SaOutcome",
    "TaskRunner",
    "GaEpochTask",
    "IslandState",
    "IslandResult",
    "run_island_ga",
]
