"""Self-contained search problem descriptions for worker processes.

The parallel portfolio runs SA restarts and GA islands in separate
processes.  A worker cannot share the master's
:class:`~repro.core.evaluation.MappingEvaluator` (it is full of live
caches), so instead it receives a :class:`SearchSpec` — the minimal
picklable closure of one search problem: the application profile, the
calibrated latency model, the static node table, one frozen resource
snapshot, the candidate pool, and the energy configuration.  From that a
worker rebuilds its own :class:`~repro.core.fast_eval.EvaluationContext`
(cheaper than shipping memoized latency tables, and byte-identical in
arithmetic to the master's, which is what makes the deterministic
best-of reduction possible).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field

from repro._rng import Rng
from repro.core.evaluation import EvaluationOptions, MappingEvaluator
from repro.core.mapping import TaskMapping
from repro.monitoring.snapshot import SystemSnapshot
from repro.profiling.profile import ApplicationProfile
from repro.schedulers.base import MappingConstraint, random_mapping

__all__ = ["SearchSpec", "draw_initial_mapping", "greedy_mapping"]


@dataclass(frozen=True)
class SearchSpec:
    """Everything a worker needs to evaluate mappings for one search.

    All fields are plain data (or picklable callables): the spec must
    survive a trip through :mod:`pickle` into a fresh worker process.
    """

    profile: ApplicationProfile
    latency_model: object  # repro.cluster.latency.LatencyModel
    nodes: dict  # node id -> repro.cluster.node.Node
    snapshot: SystemSnapshot
    pool: tuple[str, ...]
    #: The *energy* options the search anneals on (already resolved —
    #: never ``None``; e.g. NCS drops the communication term here).
    options: EvaluationOptions = field(default_factory=EvaluationOptions)
    #: Whether workers may use the incremental fast path.
    use_fast_path: bool = True
    #: Optional feasibility predicate.  Must be picklable (a module-level
    #: function, not a lambda) when the search runs with ``parallel > 1``.
    constraint: MappingConstraint | None = None

    @classmethod
    def from_evaluator(
        cls,
        evaluator: MappingEvaluator,
        pool: list[str] | tuple[str, ...],
        *,
        options: EvaluationOptions | None = None,
        use_fast_path: bool = True,
        constraint: MappingConstraint | None = None,
    ) -> "SearchSpec":
        """Snapshot one evaluator's inputs into a shippable spec.

        ``options=None`` resolves to the evaluator's own options, exactly
        like :meth:`MappingEvaluator.predict` treats a ``None`` override.
        """
        return cls(
            profile=evaluator.profile,
            latency_model=evaluator.latency_model,
            nodes=dict(evaluator.nodes),
            snapshot=evaluator.snapshot.freeze(),
            pool=tuple(pool),
            options=options if options is not None else evaluator.options,
            use_fast_path=use_fast_path,
            constraint=constraint,
        )

    def fingerprint(self) -> str:
        """Stable content digest identifying this search problem.

        Two specs share a fingerprint exactly when a worker-side
        :class:`~repro.search.worker.TaskRunner` built for one is valid
        for the other — same profile, latency model, node table, pool,
        energy options, constraint, and *snapshot content*.  The snapshot
        enters through its own :meth:`SystemSnapshot.fingerprint` rather
        than its pickle bytes, so a refreshed-but-identical cluster state
        still keys the same cache entry while any availability change
        produces a new one.  Memoized (the dataclass is frozen, so the
        inputs cannot drift after the first call).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.snapshot.fingerprint().encode("ascii"))
        digest.update(
            pickle.dumps(
                (
                    self.profile,
                    self.latency_model,
                    self.nodes,
                    self.pool,
                    self.options,
                    self.use_fast_path,
                    self.constraint,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        value = digest.hexdigest()
        object.__setattr__(self, "_fingerprint", value)
        return value

    def build_evaluator(self) -> MappingEvaluator:
        """A fresh reference evaluator (the worker-side fallback path)."""
        return MappingEvaluator(
            self.profile, self.latency_model, self.nodes, self.snapshot, self.options
        )

    def feasible(self, mapping: TaskMapping) -> bool:
        return self.constraint is None or self.constraint(mapping)

    def ensure_picklable(self) -> None:
        """Fail fast, with a pointed message, before a pool ever spawns."""
        try:
            pickle.dumps(self)
        except Exception as exc:
            raise ValueError(
                "search spec cannot be pickled for worker processes "
                f"({type(exc).__name__}: {exc}); constraints must be module-level "
                "functions, not lambdas or closures, when parallel > 1"
            ) from exc


def draw_initial_mapping(spec: SearchSpec, rng: Rng) -> TaskMapping:
    """A random feasible start (rejection sampling, mirrors Scheduler)."""
    nprocs = spec.profile.nprocs
    pool = list(spec.pool)
    for _ in range(10_000):
        mapping = random_mapping(pool, nprocs, rng)
        if spec.feasible(mapping):
            return mapping
    raise RuntimeError(
        "could not draw a feasible mapping from the pool; "
        "the constraint may be unsatisfiable"
    )


def greedy_mapping(spec: SearchSpec) -> TaskMapping | None:
    """Fastest-available-nodes construction, if it is feasible.

    The same ranking the CS scheduler seeds its first restart with:
    nodes ordered by profiled speed times current CPU availability.
    """
    profile = spec.profile
    ranked = sorted(
        spec.pool,
        key=lambda nid: (
            -spec.nodes[nid].speed_for(profile.arch_speed_ratios) * spec.snapshot.acpu(nid),
            nid,
        ),
    )
    mapping = TaskMapping(ranked[: profile.nprocs])
    return mapping if spec.feasible(mapping) else None
