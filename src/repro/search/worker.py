"""Per-process task execution for the parallel search portfolio.

A :class:`TaskRunner` is the unit of worker-side state: it builds its
own :class:`~repro.core.fast_eval.EvaluationContext` from the pickled
:class:`~repro.search.spec.SearchSpec` (falling back to a reference
:class:`~repro.core.evaluation.MappingEvaluator` when the fast path is
unavailable) and then executes search tasks against it.  The master
process runs the *same* runner inline when ``parallel == 1`` — identical
code path, identical arithmetic, which is what lets the portfolio
promise byte-identical results across parallel degrees.

Module-level ``_initialize_worker`` / ``_run_sa_task`` /
``_run_ga_epoch_task`` are the :class:`~concurrent.futures.
ProcessPoolExecutor` entry points (they must be importable by name in a
fresh interpreter, hence no closures).  The shared best-so-far value is
threaded through the pool *initializer* because ``multiprocessing``
shared ctypes cannot travel through the task queue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro import telemetry
from repro._rng import Rng
from repro._util import spawn_rng
from repro.core.fast_eval import (
    EvaluationContext,
    FastEvalUnavailable,
    IncrementalEvaluator,
)
from repro.core.mapping import TaskMapping
from repro.schedulers.annealing import AnnealingSchedule, CostBound, anneal
from repro.schedulers.genetic import GeneticParams, ga_generation, score_population
from repro.schedulers.moves import MoveGenerator
from repro.search.bound import SharedBound
from repro.search.spec import SearchSpec, draw_initial_mapping, greedy_mapping
from repro.telemetry import MetricsDelta, MetricsRegistry

__all__ = [
    "SaTask",
    "SaOutcome",
    "IslandState",
    "GaEpochTask",
    "ScanTask",
    "ScanOutcome",
    "TaskRunner",
]


@dataclass(frozen=True)
class SaTask:
    """One simulated-annealing restart, fully specified.

    ``rng_parts`` feeds :func:`repro._util.spawn_rng` together with
    ``seed``: every restart gets its own substream, independent of which
    process runs it and of how many restarts run beside it.
    """

    index: int
    seed: int
    rng_parts: tuple
    schedule: AnnealingSchedule = AnnealingSchedule()
    swap_probability: float = 0.5
    greedy_start: bool = False
    #: When > 0, draw this many random candidate starts, score them as
    #: one batched ``evaluate_many`` sweep, and start SA from the best
    #: (the greedy start, when requested and feasible, still wins).
    seed_scan: int = 0
    direction: str = "minimize"
    #: Explicit start mapping (warm start).  Takes precedence over
    #: ``greedy_start`` and ``seed_scan``; the remapper uses it to
    #: anneal outward from a running application's current mapping.
    start: TaskMapping | None = None
    #: Absolute ``time.monotonic()`` deadline (CLOCK_MONOTONIC is
    #: system-wide on the platforms we support, so the instant computed
    #: by the master is meaningful inside a worker).
    deadline: float | None = None


@dataclass(frozen=True)
class SaOutcome:
    """What one restart reports back to the reducer."""

    index: int
    mapping: TaskMapping
    energy: float
    history: tuple[float, ...]
    evaluations: int
    #: Telemetry recorded while running this task (None when disabled).
    #: The reducer merges deltas in task-index order, so aggregates are
    #: independent of worker count.
    metrics: MetricsDelta | None = None


@dataclass
class IslandState:
    """One GA island's full evolutionary state between epochs.

    The state round-trips master → worker → master every epoch; the RNG
    generator pickles with its position, so an island's trajectory does
    not depend on which worker process hosts which epoch.
    """

    index: int
    rng: Rng
    population: list[TaskMapping] | None = None
    fitness: list[float] | None = None
    history: list[float] = field(default_factory=list)
    evaluations: int = 0
    #: Telemetry recorded during the *last* epoch only (None when
    #: disabled); the master drains it after each epoch barrier so it is
    #: never shipped back to the workers.
    metrics: MetricsDelta | None = None


@dataclass(frozen=True)
class GaEpochTask:
    """Evolve one island for *generations* generations."""

    state: IslandState
    params: GeneticParams
    generations: int
    deadline: float | None = None


@dataclass(frozen=True)
class ScanTask:
    """Score one slice of a candidate-mapping scan as a single batch."""

    index: int
    mappings: tuple[TaskMapping, ...]


@dataclass(frozen=True)
class ScanOutcome:
    """Energies for one scan slice, in submission order."""

    index: int
    energies: tuple[float, ...]
    evaluations: int
    metrics: MetricsDelta | None = None


class TaskRunner:
    """Executes search tasks against one spec, counting evaluations."""

    def __init__(
        self,
        spec: SearchSpec,
        *,
        bound: CostBound | None = None,
        context: EvaluationContext | None = None,
        telemetry_enabled: bool | None = None,
    ):
        self.spec = spec
        self.bound = bound
        self.count = 0
        # Decided once at construction: worker processes inherit the
        # master's setting through the pool initializer (the ambient
        # registry itself does not cross process boundaries).
        self.telemetry_enabled = (
            telemetry.enabled() if telemetry_enabled is None else telemetry_enabled
        )
        self._incremental: IncrementalEvaluator | None = None
        self._evaluator = None
        if spec.use_fast_path:
            try:
                ctx = context
                if ctx is None:
                    ctx = EvaluationContext(
                        spec.profile, spec.latency_model, spec.nodes, spec.snapshot, spec.options
                    )
                self._incremental = IncrementalEvaluator(ctx, on_evaluate=self._tick)
            except FastEvalUnavailable:
                self._incremental = None
        if self._incremental is None:
            self._evaluator = spec.build_evaluator()

    # -- evaluation plumbing --------------------------------------------
    def _tick(self) -> None:
        self.count += 1

    def _reference_energy(self, mapping: TaskMapping) -> float:
        self.count += 1
        return self._evaluator.execution_time(mapping)

    def _energy(self):
        """The annealing energy: incremental protocol or plain callable."""
        if self._incremental is not None:
            return self._incremental
        return self._reference_energy

    def batch_energies(self, mappings: list[TaskMapping]) -> list[float]:
        """Energies of *mappings* as one sweep (fast path: evaluate_many)."""
        return score_population(self._energy(), mappings)

    # -- task telemetry --------------------------------------------------
    def _record_task(self, registry, kind: str, seconds: float) -> None:
        registry.counter(
            "cbes_search_tasks_total", "Search tasks executed by runners.", ("kind",)
        ).inc(kind=kind)
        registry.histogram(
            "cbes_search_task_seconds", "Wall time of one search task.", ("kind",)
        ).observe(seconds, kind=kind)

    # -- SA restarts ----------------------------------------------------
    def run_sa(self, task: SaTask) -> SaOutcome:
        """Run one SA restart; attaches a MetricsDelta when telemetry is on."""
        if not self.telemetry_enabled:
            return self._run_sa(task)
        local = MetricsRegistry()
        started = time.perf_counter()
        with telemetry.use_registry(local):
            outcome = self._run_sa(task)
            self._record_task(local, "sa-restart", time.perf_counter() - started)
        return replace(outcome, metrics=local.collect_delta())

    def _run_sa(self, task: SaTask) -> SaOutcome:
        start_count = self.count
        rng = spawn_rng(task.seed, *task.rng_parts)
        moves = MoveGenerator(list(self.spec.pool), swap_probability=task.swap_probability)
        start = None
        if task.start is not None and self.spec.feasible(task.start):
            # Warm start: anneal outward from an explicitly given mapping
            # (e.g. a running application's current placement).
            start = task.start
        if start is None and task.greedy_start:
            start = greedy_mapping(self.spec)
        if start is None and task.seed_scan > 0:
            # Batched restart seeding: score all candidate starts in one
            # evaluate_many sweep and begin from the best (ties by draw
            # order keep this deterministic).
            candidates = [draw_initial_mapping(self.spec, rng) for _ in range(task.seed_scan)]
            energies = self.batch_energies(candidates)
            sign = 1.0 if task.direction == "minimize" else -1.0
            best = min(range(len(candidates)), key=lambda i: (sign * energies[i], i))
            start = candidates[best]
        if start is None:
            start = draw_initial_mapping(self.spec, rng)
        best, energy_value, history = anneal(
            self._energy(),
            start,
            moves,
            rng,
            schedule=task.schedule,
            feasible=self.spec.feasible,
            direction=task.direction,
            deadline=task.deadline,
            bound=self.bound,
        )
        return SaOutcome(
            index=task.index,
            mapping=best,
            energy=energy_value,
            history=tuple(history),
            evaluations=self.count - start_count,
        )

    # -- candidate scans -------------------------------------------------
    def run_scan(self, task: ScanTask) -> ScanOutcome:
        """Score one scan slice; attaches a MetricsDelta when telemetry is on."""
        if not self.telemetry_enabled:
            return self._run_scan(task)
        local = MetricsRegistry()
        started = time.perf_counter()
        with telemetry.use_registry(local):
            outcome = self._run_scan(task)
            self._record_task(local, "scan", time.perf_counter() - started)
        return replace(outcome, metrics=local.collect_delta())

    def _run_scan(self, task: ScanTask) -> ScanOutcome:
        start_count = self.count
        energies = self.batch_energies(list(task.mappings))
        return ScanOutcome(
            index=task.index,
            energies=tuple(energies),
            evaluations=self.count - start_count,
        )

    # -- GA island epochs -----------------------------------------------
    def run_ga_epoch(self, task: GaEpochTask) -> IslandState:
        """Evolve one island epoch; attaches a MetricsDelta when telemetry is on."""
        if not self.telemetry_enabled:
            return self._run_ga_epoch(task)
        local = MetricsRegistry()
        started = time.perf_counter()
        with telemetry.use_registry(local):
            state = self._run_ga_epoch(task)
            self._record_task(local, "ga-epoch", time.perf_counter() - started)
        state.metrics = local.collect_delta()
        return state

    def _run_ga_epoch(self, task: GaEpochTask) -> IslandState:
        state = task.state
        p = task.params
        start_count = self.count
        rng = state.rng
        moves = MoveGenerator(list(self.spec.pool))
        fit = self._incremental if self._incremental is not None else self._reference_energy
        pool = list(self.spec.pool)
        history = list(state.history)
        if state.population is None:
            population = [draw_initial_mapping(self.spec, rng) for _ in range(p.population)]
            fitness = score_population(fit, population)
            history.append(min(fitness))
        else:
            population = list(state.population)
            fitness = list(state.fitness)
        generations_done = 0
        for _ in range(task.generations):
            if task.deadline is not None and time.monotonic() >= task.deadline:
                break
            population, fitness = ga_generation(
                population, fitness, fit, p, moves, pool, rng, self.spec.feasible
            )
            history.append(min(min(fitness), history[-1]))
            generations_done += 1
        telemetry.get_registry().counter(
            "cbes_ga_generations_total", "GA generations evolved across all islands."
        ).inc(generations_done)
        return IslandState(
            index=state.index,
            rng=rng,
            population=population,
            fitness=fitness,
            history=history,
            evaluations=state.evaluations + (self.count - start_count),
        )


# -- ProcessPoolExecutor entry points -----------------------------------
_RUNNER: TaskRunner | None = None


def _initialize_worker(
    spec: SearchSpec, bound_value, margin: float, telemetry_enabled: bool = False
) -> None:
    """Pool initializer: build this worker's runner once, reuse per task."""
    global _RUNNER
    bound = SharedBound(bound_value, margin) if bound_value is not None else None
    _RUNNER = TaskRunner(spec, bound=bound, telemetry_enabled=telemetry_enabled)


def _run_sa_task(task: SaTask) -> SaOutcome:
    assert _RUNNER is not None, "worker used before _initialize_worker"
    return _RUNNER.run_sa(task)


def _run_ga_epoch_task(task: GaEpochTask) -> IslandState:
    assert _RUNNER is not None, "worker used before _initialize_worker"
    return _RUNNER.run_ga_epoch(task)


def _run_scan_task(task: ScanTask) -> ScanOutcome:
    assert _RUNNER is not None, "worker used before _initialize_worker"
    return _RUNNER.run_scan(task)
