"""Drift detection: when does changed load justify a remap evaluation?

A :class:`DriftWatcher` stands between the monitoring subsystem and the
remapper.  Each monitoring round, the caller feeds it the current
mapping's *predicted remaining time* under the freshest (forecasted)
snapshot together with the baseline prediction made when the mapping
was adopted; the watcher turns that stream into discrete
:class:`DriftEvent`\\ s worth spending a candidate search on.

Three guards keep transient spikes from thrashing the application:

* **threshold** — the smoothed relative degradation must exceed it;
* **hysteresis** — after firing, the watcher re-arms only once the
  signal recedes below ``threshold * hysteresis`` (a low-water mark),
  so a value oscillating around the threshold fires once, not every
  round;
* **cooldown** — at least ``cooldown_s`` of logical time must separate
  two events (and a :meth:`rebase` restarts the window), bounding the
  remap frequency no matter what the signal does.

The degradation series is smoothed through a :mod:`repro.monitoring.
forecasting` forecaster (default ``last-value`` = no smoothing), so a
bursty sensor can be tamed with ``ewma``/``mean`` without touching the
thresholds.  Time is an explicit *logical* ``now_s`` argument — the
watcher never reads a wall clock, keeping the whole loop deterministic
and replayable (the daemon passes tick times, the closed-loop
simulation passes simulated phase times).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitoring.forecasting import make_forecaster
from repro.telemetry import get_registry

__all__ = ["DriftEvent", "DriftWatcher"]

#: Metric family shared with the daemon's pre-declaration (identical
#: name/help so registry declarations stay idempotent).
DRIFT_EVENTS_TOTAL = (
    "cbes_remap_drift_events_total",
    "Drift events fired by remap watchers.",
)


@dataclass(frozen=True)
class DriftEvent:
    """One firing of the drift detector."""

    #: Logical time of the observation that fired (seconds).
    now_s: float
    #: Smoothed relative degradation that crossed the threshold
    #: (``predicted / baseline - 1`` after forecaster smoothing).
    degradation: float
    #: Raw predicted remaining time under the fresh snapshot.
    predicted_s: float
    #: Remaining time predicted when the current mapping was adopted.
    baseline_s: float


class DriftWatcher:
    """Turns a degradation series into thrash-resistant drift events."""

    def __init__(
        self,
        *,
        threshold: float = 0.10,
        hysteresis: float = 0.5,
        cooldown_s: float = 0.0,
        forecaster: str = "last-value",
    ) -> None:
        if threshold <= 0.0:
            raise ValueError("threshold must be > 0")
        if not 0.0 <= hysteresis <= 1.0:
            raise ValueError("hysteresis must be in [0, 1]")
        if cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.cooldown_s = cooldown_s
        self._kind = forecaster
        self._forecaster = make_forecaster(forecaster)
        self._armed = True
        self._last_fired: float | None = None
        self._events = 0

    @property
    def events(self) -> int:
        """Total drift events fired over this watcher's lifetime."""
        return self._events

    @property
    def armed(self) -> bool:
        """Whether the next above-threshold observation may fire."""
        return self._armed

    def observe(
        self, now_s: float, predicted_s: float, baseline_s: float
    ) -> DriftEvent | None:
        """Feed one monitoring round; returns an event when drift fires.

        *predicted_s* is the current mapping's remaining time under the
        freshest snapshot; *baseline_s* the remaining time expected when
        the mapping was adopted (scaled by the same work fraction, so
        the ratio isolates the *environmental* change).
        """
        if baseline_s <= 0.0:
            raise ValueError("baseline_s must be > 0")
        if predicted_s < 0.0:
            raise ValueError("predicted_s must be >= 0")
        degradation = predicted_s / baseline_s - 1.0
        self._forecaster.update(degradation)
        smoothed = self._forecaster.forecast()
        if smoothed <= self.threshold * self.hysteresis:
            # Signal receded below the low-water mark: re-arm.
            self._armed = True
        if smoothed <= self.threshold or not self._armed:
            return None
        if (
            self._last_fired is not None
            and now_s - self._last_fired < self.cooldown_s
        ):
            return None
        self._armed = False
        self._last_fired = now_s
        self._events += 1
        get_registry().counter(*DRIFT_EVENTS_TOTAL).inc()
        return DriftEvent(
            now_s=now_s,
            degradation=smoothed,
            predicted_s=predicted_s,
            baseline_s=baseline_s,
        )

    def rebase(self, now_s: float) -> None:
        """Reset after the watched mapping changed (remap adopted).

        Drops the stale degradation history (the new mapping defines a
        new baseline regime), re-arms the detector, and starts the
        cooldown window at *now_s* so the fresh mapping gets at least
        one quiet cooldown before the next event can fire.
        """
        self._forecaster = make_forecaster(self._kind)
        self._armed = True
        self._last_fired = now_s
