"""Topology-aware migration cost: checkpoints shipped over real links.

The seed's :class:`~repro.remap.advisor.RemapCostModel` charges a flat
``per_task_s`` for every moved rank.  This model replaces that constant
with the thing it abbreviates: each moved rank ships its checkpoint
over the *actual* source->destination path, priced by the same
calibrated ``L_c`` latency components (``alpha_src + alpha_dst +
alpha_net + size * beta``, load-adjusted) that the mapping evaluator
uses — so migrating across the federation bottleneck costs what the
bottleneck costs, and an intra-switch shuffle is nearly free.

Checkpoint sizes are derived from the application profile: the stored
profiles carry no explicit memory footprint, so the model estimates one
as a base image plus a fraction of the rank's profiled traffic volume
(communication-heavy ranks hold proportionally more live state).  Both
knobs are parameters.

Two equivalent paths produce the per-rank costs:

* :meth:`MigrationCostModel.moves` — the scalar reference, one
  :meth:`~repro.cluster.latency.LatencyModel.components` lookup per
  moved rank;
* :meth:`MigrationCostModel.moves_from_context` — the vectorized diff
  path reusing the struct-of-arrays columns of an existing
  :class:`~repro.core.fast_eval.EvaluationContext` (flat pair tables,
  ACPU curves), with no per-move object construction or dict lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.latency import LatencyModel
from repro.core.fast_eval import EvaluationContext
from repro.core.mapping import TaskMapping
from repro.monitoring.snapshot import SystemSnapshot
from repro.profiling.profile import ApplicationProfile
from repro.remap.plan import RankMove

__all__ = ["MigrationCostModel"]


@dataclass(frozen=True)
class MigrationCostModel:
    """Prices a mapping switch as per-rank checkpoint transfers.

    ``quiesce_s`` and ``restart_s`` are the fixed coordination costs of
    one remap (drain in-flight messages / barrier, then relaunch),
    charged once per plan that moves at least one rank.  A rank's
    checkpoint is ``checkpoint_base_bytes + checkpoint_traffic_fraction
    * bytes_sent`` of its profile.  With ``load_adjusted`` the transfer
    uses the load-stretched ``L_c`` (migrating off a loaded node pays
    that node's reduced CPU availability); otherwise the no-load path.
    """

    quiesce_s: float = 0.25
    restart_s: float = 0.25
    checkpoint_base_bytes: float = 32.0 * 1024 * 1024
    checkpoint_traffic_fraction: float = 0.05
    load_adjusted: bool = True

    def __post_init__(self) -> None:
        if self.quiesce_s < 0 or self.restart_s < 0:
            raise ValueError("fixed remap costs must be >= 0")
        if self.checkpoint_base_bytes < 0:
            raise ValueError("checkpoint_base_bytes must be >= 0")
        if self.checkpoint_traffic_fraction < 0:
            raise ValueError("checkpoint_traffic_fraction must be >= 0")

    @property
    def fixed_s(self) -> float:
        """The per-plan coordination cost (quiesce + restart)."""
        return self.quiesce_s + self.restart_s

    def checkpoint_bytes(self, profile: ApplicationProfile) -> tuple[float, ...]:
        """Estimated checkpoint size per rank, in rank order."""
        return tuple(
            self.checkpoint_base_bytes + self.checkpoint_traffic_fraction * p.bytes_sent
            for p in profile.processes
        )

    # -- scalar reference ------------------------------------------------
    def moves(
        self,
        profile: ApplicationProfile,
        latency_model: LatencyModel,
        current: TaskMapping,
        candidate: TaskMapping,
        *,
        snapshot: SystemSnapshot | None = None,
    ) -> tuple[RankMove, ...]:
        """Per-rank migrations of switching *current* -> *candidate*.

        The scalar reference: one latency-component lookup per moved
        rank.  *snapshot* supplies the endpoint ACPU / NIC loads for the
        load-adjusted transfer; without one (or with ``load_adjusted``
        off) the no-load latency is used.
        """
        if current.nprocs != candidate.nprocs:
            raise ValueError("mappings must place the same number of processes")
        if current.nprocs != profile.nprocs:
            raise ValueError("mappings must place the profile's process count")
        ckpt = self.checkpoint_bytes(profile)
        out: list[RankMove] = []
        for rank in range(current.nprocs):
            src, dst = current.node_of(rank), candidate.node_of(rank)
            if src == dst:
                continue
            pc = latency_model.components(src, dst)
            size = ckpt[rank]
            if self.load_adjusted and snapshot is not None:
                seconds = pc.adjusted(
                    size,
                    acpu_src=snapshot.acpu(src),
                    acpu_dst=snapshot.acpu(dst),
                    nic_src=snapshot.nic_load(src),
                    nic_dst=snapshot.nic_load(dst),
                )
            else:
                seconds = pc.no_load(size)
            out.append(RankMove(rank, src, dst, size, seconds))
        return tuple(out)

    # -- vectorized diff path --------------------------------------------
    def moves_from_context(
        self,
        context: EvaluationContext,
        current: TaskMapping,
        candidate: TaskMapping,
    ) -> tuple[RankMove, ...]:
        """The vectorized diff path over fast-eval's flat columns.

        Reuses the struct-of-arrays tables an
        :class:`~repro.core.fast_eval.EvaluationContext` already holds —
        position vectors for the diff, flat pair tables for the link
        components, the ACPU curve for endpoint stretching — so one
        remap evaluation does no per-move ``components()`` lookups.
        With ``load_adjusted`` on, the load treatment follows the
        *context's* evaluation options (``cpu_availability`` /
        ``load_adjusted_latency``), matching the snapshot the context
        was frozen from; with it off, transfers use the no-load tables.
        """
        p_cur = context.positions(current)
        p_cand = context.positions(candidate)
        a_src, a_dst, a_net, beta, binv, acpu1 = context.migration_tables()
        if not self.load_adjusted:
            # No-load pricing: raw beta slope, unit endpoint ACPU.
            binv = beta
            acpu1 = [1.0] * context.nnodes
        ckpt = self._checkpoint_from_context(context)
        node_ids = context.node_ids
        n = context.nnodes
        out: list[RankMove] = []
        for rank, (s, d) in enumerate(zip(p_cur, p_cand, strict=True)):
            if s == d:
                continue
            idx = s * n + d
            a_n = a_net[idx]
            if a_n != a_n:  # NaN: pair absent from the latency model
                raise ValueError(
                    f"no latency data for pair ({node_ids[s]!r}, {node_ids[d]!r})"
                )
            size = ckpt[rank]
            seconds = (
                a_src[idx] / acpu1[s]
                + a_dst[idx] / acpu1[d]
                + a_n
                + size * binv[idx]
            )
            out.append(RankMove(rank, node_ids[s], node_ids[d], size, seconds))
        return tuple(out)

    def _checkpoint_from_context(self, context: EvaluationContext) -> list[float]:
        """Checkpoint sizes recomputed from the context's message groups.

        ``context.groups`` carries each rank's send groups in profile
        order, so the per-rank traffic sum reproduces
        ``ProcessProfile.bytes_sent`` exactly.
        """
        base = self.checkpoint_base_bytes
        frac = self.checkpoint_traffic_fraction
        out = []
        for groups in context.groups:
            sent = sum(count * size for is_send, _, count, size in groups if is_send)
            out.append(base + frac * sent)
        return out

    # -- totals ----------------------------------------------------------
    def total_cost(self, moves: tuple[RankMove, ...]) -> float:
        """Plan-wide migration cost; exactly 0.0 when nothing moves."""
        if not moves:
            return 0.0
        return self.fixed_s + sum(m.seconds for m in moves)

    def cost(
        self,
        profile: ApplicationProfile,
        latency_model: LatencyModel,
        current: TaskMapping,
        candidate: TaskMapping,
        *,
        snapshot: SystemSnapshot | None = None,
    ) -> float:
        """One-call scalar total (reference path)."""
        return self.total_cost(
            self.moves(profile, latency_model, current, candidate, snapshot=snapshot)
        )
