"""Online remapping: drift detection, migration cost, remap plans.

The paper's stated future work — *"if system conditions, with regard to
a running application, change, there should be the capability of
generating a new mapping ... taking into account the task remapping
costs"* — as a first-class subsystem:

* :class:`MigrationCostModel` prices a mapping switch as per-rank
  checkpoint transfers over the actual source->destination links
  (:mod:`repro.remap.cost`);
* :class:`DriftWatcher` turns the monitoring stream into
  thrash-resistant drift events (:mod:`repro.remap.drift`);
* :class:`Remapper` searches candidates warm-started from the current
  mapping and returns a deterministic :class:`RemapPlan` under the rule
  ``remap <=> predicted_savings > migration_cost * safety_factor``
  (:mod:`repro.remap.remapper`);
* the flat-cost :class:`RemapAdvisor` baseline is kept for API
  stability (:mod:`repro.remap.advisor`; ``repro.core.remap`` re-exports
  it for older imports).

The daemon loop lives in :mod:`repro.server` (``POST /v1/remap/watch``)
and the closed-loop simulation in :mod:`repro.simulate.closedloop`.
"""

from repro.remap.advisor import RemapAdvisor, RemapCostModel, RemapDecision
from repro.remap.cost import MigrationCostModel
from repro.remap.drift import DriftEvent, DriftWatcher
from repro.remap.plan import RankMove, RemapPlan
from repro.remap.remapper import Remapper

__all__ = [
    "DriftEvent",
    "DriftWatcher",
    "MigrationCostModel",
    "RankMove",
    "RemapAdvisor",
    "RemapCostModel",
    "RemapDecision",
    "RemapPlan",
    "Remapper",
]
