"""Remap plans: the deterministic output of one remapping evaluation.

A :class:`RemapPlan` is everything the daemon records (and a client
needs) about one cost/benefit verdict: the mapping diff as explicit
per-rank moves, the topology-aware migration cost of each move, the
predicted remaining times, and the decision under the rule

    ``remap  <=>  predicted_savings > migration_cost * safety_factor``.

Plans are plain frozen data built from deterministic inputs, so two
evaluations of the same situation — at any search parallel degree —
produce byte-identical plans (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import TaskMapping

__all__ = ["RankMove", "RemapPlan"]


@dataclass(frozen=True)
class RankMove:
    """One rank's migration: checkpoint shipped over the src->dst link."""

    rank: int
    source: str
    destination: str
    checkpoint_bytes: float
    #: Transfer seconds over the actual source->destination link (load
    #: adjusted), excluding the plan-wide quiesce/restart fixed cost.
    seconds: float

    def to_dict(self) -> dict:
        """Plain-JSON form (stable key order via sorted dumps)."""
        return {
            "rank": self.rank,
            "source": self.source,
            "destination": self.destination,
            "checkpoint_bytes": self.checkpoint_bytes,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class RemapPlan:
    """Outcome of one online remapping evaluation."""

    remap: bool
    current: TaskMapping
    candidate: TaskMapping
    #: Per-rank migrations in rank order (empty when the candidate is
    #: the current mapping; migration cost is then exactly 0.0).
    moves: tuple[RankMove, ...]
    current_remaining_s: float
    candidate_remaining_s: float
    migration_cost_s: float
    safety_factor: float
    #: Mapping evaluations spent producing this plan (search + scoring).
    evaluations: int = 0

    @property
    def savings_s(self) -> float:
        """Predicted remaining time saved by switching (cost not charged)."""
        return self.current_remaining_s - self.candidate_remaining_s

    @property
    def net_benefit_s(self) -> float:
        """Savings minus the (uninflated) migration cost; can be negative."""
        return self.savings_s - self.migration_cost_s

    @property
    def moved_ranks(self) -> tuple[int, ...]:
        """Ranks whose assigned node changes, in rank order."""
        return tuple(m.rank for m in self.moves)

    def to_dict(self) -> dict:
        """Plain-JSON document (the daemon's decision record body)."""
        return {
            "remap": self.remap,
            "current": list(self.current.as_tuple()),
            "candidate": list(self.candidate.as_tuple()),
            "moves": [m.to_dict() for m in self.moves],
            "current_remaining_s": self.current_remaining_s,
            "candidate_remaining_s": self.candidate_remaining_s,
            "migration_cost_s": self.migration_cost_s,
            "savings_s": self.savings_s,
            "net_benefit_s": self.net_benefit_s,
            "safety_factor": self.safety_factor,
            "evaluations": self.evaluations,
        }
