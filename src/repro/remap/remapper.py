"""The remapper: candidate search + cost/benefit verdict, in one call.

:meth:`Remapper.propose` is the heart of the online remapping loop.
Given an evaluator bound to the *fresh* snapshot and the application's
current mapping, it

1. searches for a candidate mapping with a :mod:`repro.search`
   portfolio whose first restart is *warm-started from the current
   mapping* (the remaining restarts seed from greedy / batched random
   scans, so the search can both polish the incumbent and escape it),
2. scores current-vs-candidate with one batched
   :meth:`~repro.core.fast_eval.EvaluationContext.evaluate_many` sweep,
3. prices the mapping diff with the topology-aware
   :class:`~repro.remap.cost.MigrationCostModel`, and
4. applies the decision rule

       ``remap  <=>  predicted_savings > migration_cost * safety_factor``

returning everything as one deterministic :class:`~repro.remap.plan.
RemapPlan`.  Every restart owns a seed substream, so plans are
byte-identical across ``parallel`` degrees — the property the test
suite asserts for remap decisions just as the schedulers assert it for
mappings.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.evaluation import MappingEvaluator
from repro.core.fast_eval import FastEvalUnavailable
from repro.core.mapping import TaskMapping
from repro.remap.cost import MigrationCostModel
from repro.remap.plan import RankMove, RemapPlan
from repro.schedulers.annealing import AnnealingSchedule
from repro.search.portfolio import ParallelPortfolio
from repro.search.spec import SearchSpec
from repro.search.worker import SaTask
from repro.telemetry import get_registry, get_tracer

__all__ = ["Remapper"]

#: Metric families shared with the daemon's pre-declaration (identical
#: name/help strings keep registry declarations idempotent).
DECISIONS_TOTAL = (
    "cbes_remap_decisions_total",
    "Remap cost/benefit verdicts by decision.",
    ("decision",),
)
MIGRATION_SECONDS_TOTAL = (
    "cbes_remap_migration_seconds_total",
    "Predicted migration seconds charged by adopted remap plans.",
)


class Remapper:
    """Proposes remap plans for a running application.

    ``safety_factor`` inflates the migration cost in the decision rule
    (the paper's cost/benefit calculus made conservative: predictions
    err, migrations are disruptive, so demand the savings clear the
    cost with margin).  ``restarts``/``seed_scan``/``schedule`` shape
    the candidate search exactly as they do for the CS scheduler; the
    default schedule is deliberately shorter than a from-scratch
    schedule because the warm start already sits in a good basin.
    """

    def __init__(
        self,
        *,
        cost_model: MigrationCostModel | None = None,
        safety_factor: float = 1.5,
        schedule: AnnealingSchedule | None = None,
        swap_probability: float = 0.5,
        restarts: int = 3,
        seed_scan: int = 8,
        parallel: int = 1,
        mp_context: str | None = None,
        use_fast_path: bool = True,
    ) -> None:
        if safety_factor <= 0.0:
            raise ValueError("safety_factor must be > 0")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if seed_scan < 0:
            raise ValueError("seed_scan must be >= 0")
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        self.cost_model = cost_model or MigrationCostModel()
        self.safety_factor = safety_factor
        self._schedule = schedule or AnnealingSchedule(
            moves_per_temperature=40, steps=24, patience=8
        )
        self._swap_p = swap_probability
        self._restarts = restarts
        self._seed_scan = seed_scan
        self._parallel = parallel
        self._mp_context = mp_context
        self._use_fast_path = use_fast_path

    def propose(
        self,
        evaluator: MappingEvaluator,
        current: TaskMapping,
        *,
        pool: Sequence[str] | None = None,
        fraction_remaining: float = 1.0,
        seed: int = 0,
    ) -> RemapPlan:
        """Search for a better mapping and decide whether to switch.

        *evaluator* must be bound to the fresh snapshot (that is the
        point of remapping); *pool* defaults to every node the
        evaluator knows.  ``fraction_remaining`` scales both remaining-
        time predictions, so late-run remaps must clear the same
        absolute migration cost with a smaller absolute saving.
        """
        if not 0.0 < fraction_remaining <= 1.0:
            raise ValueError("fraction_remaining must be in (0, 1]")
        node_pool = tuple(pool) if pool is not None else tuple(sorted(evaluator.nodes))
        if not node_pool:
            raise ValueError("pool must contain at least one node")
        with get_tracer().trace(
            "remap.propose",
            app=evaluator.profile.app_name,
            pool=len(node_pool),
            seed=seed,
        ) as span:
            candidate, search_evals = self._search(evaluator, current, node_pool, seed)
            stay_s, move_s = evaluator.execution_times([current, candidate])
            stay_s *= fraction_remaining
            move_s *= fraction_remaining
            moves = self._moves(evaluator, current, candidate)
            cost = self.cost_model.total_cost(moves)
            savings = stay_s - move_s
            decision = bool(moves) and savings > cost * self.safety_factor
            plan = RemapPlan(
                remap=decision,
                current=current,
                candidate=candidate,
                moves=moves,
                current_remaining_s=stay_s,
                candidate_remaining_s=move_s,
                migration_cost_s=cost,
                safety_factor=self.safety_factor,
                evaluations=search_evals + 2,
            )
            registry = get_registry()
            registry.counter(*DECISIONS_TOTAL).inc(
                decision="remap" if decision else "stay"
            )
            if decision:
                registry.counter(*MIGRATION_SECONDS_TOTAL).inc(cost)
            span.set_attribute("decision", "remap" if decision else "stay")
            span.set_attribute("moved", len(moves))
            span.set_attribute("savings_s", savings)
            span.set_attribute("migration_cost_s", cost)
            span.set_attribute("evaluations", plan.evaluations)
        return plan

    # -- candidate search ------------------------------------------------
    def _search(
        self,
        evaluator: MappingEvaluator,
        current: TaskMapping,
        pool: tuple[str, ...],
        seed: int,
    ) -> tuple[TaskMapping, int]:
        spec = SearchSpec.from_evaluator(
            evaluator, list(pool), use_fast_path=self._use_fast_path
        )
        # Restart 0 warm-starts from the incumbent mapping; restart 1
        # from the fastest-nodes greedy construction; the rest from
        # batched random seed scans — polish vs escape in one portfolio.
        tasks = [
            SaTask(
                index=attempt,
                seed=seed,
                rng_parts=("remap", pool, evaluator.profile.app_name, "restart", attempt),
                schedule=self._schedule,
                swap_probability=self._swap_p,
                start=current if attempt == 0 else None,
                greedy_start=(attempt == 1),
                seed_scan=self._seed_scan if attempt >= 1 else 0,
            )
            for attempt in range(self._restarts)
        ]
        context = None
        if self._parallel == 1 and self._use_fast_path:
            try:
                context = evaluator.fast_context(evaluator.options)
            except FastEvalUnavailable:
                context = None
        portfolio = ParallelPortfolio(self._parallel, mp_context=self._mp_context)
        result = portfolio.run_sa(spec, tasks, context=context)
        evaluator.record_evaluations(result.evaluations)
        return result.mapping, result.evaluations

    # -- migration pricing -----------------------------------------------
    def _moves(
        self,
        evaluator: MappingEvaluator,
        current: TaskMapping,
        candidate: TaskMapping,
    ) -> tuple[RankMove, ...]:
        """Price the diff; vectorized context path with scalar fallback."""
        if self._use_fast_path:
            try:
                context = evaluator.fast_context(evaluator.options)
            except FastEvalUnavailable:
                context = None
            if context is not None:
                return self.cost_model.moves_from_context(context, current, candidate)
        return self.cost_model.moves(
            evaluator.profile,
            evaluator.latency_model,
            current,
            candidate,
            snapshot=evaluator.snapshot,
        )
