"""Remapping cost/benefit decisions (paper section 2 and future work).

CBES is designed so that *"if system conditions, with regard to a
running application, change, there should be the capability of
generating a new mapping ... taking into account the task remapping
costs."*  The advisor implements that calculus: given how much of the
application remains, the predicted remaining time under the current and
the candidate mapping, and the cost of moving the tasks, it recommends
whether to remap.

This is the *flat-cost* advisor kept for API stability (it predates the
topology-aware :class:`~repro.remap.cost.MigrationCostModel`); the
online remapping loop lives in :class:`~repro.remap.remapper.Remapper`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import MappingEvaluator
from repro.core.mapping import TaskMapping

__all__ = ["RemapCostModel", "RemapDecision", "RemapAdvisor"]


@dataclass(frozen=True)
class RemapCostModel:
    """Flat cost of migrating application tasks between nodes.

    ``fixed_s`` covers coordination (quiesce, barrier, restart);
    ``per_task_s`` covers checkpoint + transfer + restore of one task's
    state, charged once per task whose assigned node changes.  The
    :class:`~repro.remap.cost.MigrationCostModel` replaces the flat
    ``per_task_s`` constant with the actual checkpoint-over-link
    transfer time; this model remains the simple baseline.
    """

    fixed_s: float = 1.0
    per_task_s: float = 0.5

    def __post_init__(self) -> None:
        if self.fixed_s < 0 or self.per_task_s < 0:
            raise ValueError("remap costs must be >= 0")

    def cost(self, current: TaskMapping, candidate: TaskMapping) -> float:
        """Migration cost of switching from *current* to *candidate*."""
        if current.nprocs != candidate.nprocs:
            raise ValueError("mappings must place the same number of processes")
        moved = sum(
            1 for r in range(current.nprocs) if current.node_of(r) != candidate.node_of(r)
        )
        if moved == 0:
            return 0.0
        return self.fixed_s + self.per_task_s * moved


@dataclass(frozen=True)
class RemapDecision:
    """Outcome of a remapping evaluation."""

    remap: bool
    current_remaining_s: float
    candidate_remaining_s: float
    migration_cost_s: float
    candidate: TaskMapping

    @property
    def benefit_s(self) -> float:
        """Net time saved by remapping (can be negative)."""
        return self.current_remaining_s - (self.candidate_remaining_s + self.migration_cost_s)


class RemapAdvisor:
    """Decides whether a running application should be remapped."""

    def __init__(self, cost_model: RemapCostModel | None = None):
        self._costs = cost_model or RemapCostModel()

    def evaluate(
        self,
        evaluator: MappingEvaluator,
        current: TaskMapping,
        candidate: TaskMapping,
        *,
        fraction_remaining: float,
    ) -> RemapDecision:
        """Compare finishing on *current* vs migrating to *candidate*.

        ``fraction_remaining`` is the share of the application's work
        still to be done (application monitors report it; 1.0 means the
        run just started).  The evaluator must carry a *fresh* snapshot:
        the whole point of remapping is reacting to changed conditions.
        """
        if not 0.0 < fraction_remaining <= 1.0:
            raise ValueError("fraction_remaining must be in (0, 1]")
        stay = evaluator.execution_time(current) * fraction_remaining
        move = evaluator.execution_time(candidate) * fraction_remaining
        cost = self._costs.cost(current, candidate)
        return RemapDecision(
            remap=move + cost < stay,
            current_remaining_s=stay,
            candidate_remaining_s=move,
            migration_cost_s=cost,
            candidate=candidate,
        )
