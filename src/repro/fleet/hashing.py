"""Rendezvous (highest-random-weight) hashing for job routing.

The fleet router owns no job table: where a job lives is a pure
function of its id and the *set* of replica names.  Rendezvous hashing
gives that function two properties consistent hashing rings need extra
machinery for:

* **Stability under permutation** — scoring is per ``(key, backend)``
  pair, so the preference order depends only on set membership, never
  on the order backends were configured;
* **Minimal disruption** — removing a replica only re-routes the keys
  that ranked it first; every other key keeps its owner.

Scores come from ``blake2b`` (stdlib, keyed by nothing, stable across
processes and Python versions — unlike ``hash()``, which is salted per
process).  Ties — astronomically unlikely with 64-bit digests, but the
tie-break must still be total — fall back to the backend name, so the
ranking is fully deterministic.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

__all__ = ["rendezvous_rank", "pick_backend", "score"]


def score(key: str, backend: str) -> int:
    """The 64-bit rendezvous weight of *key* on *backend*."""
    digest = hashlib.blake2b(f"{key}|{backend}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def rendezvous_rank(key: str, backends: Sequence[str]) -> list[str]:
    """All backends ordered by preference for *key* (best first).

    The full preference order, not just the winner: lookups walk it so
    a job submitted while its first-choice replica was unhealthy is
    still found on the second choice.
    """
    if not backends:
        raise ValueError("rendezvous_rank requires at least one backend")
    return sorted(set(backends), key=lambda b: (-score(key, b), b))


def pick_backend(key: str, backends: Sequence[str]) -> str:
    """The highest-weight backend for *key*."""
    return rendezvous_rank(key, backends)[0]
