"""repro.fleet — shared-nothing scale-out for the CBES service.

One :class:`FleetRouter` fronts N independent
:class:`~repro.server.daemon.CbesDaemon` replicas.  Placement is
rendezvous hashing over the job id (:mod:`repro.fleet.hashing`), so the
router holds no routing table; :class:`FleetSupervisor` boots the
replicas as subprocesses for ``repro fleet --replicas N``.  See
``docs/FLEET.md`` for the architecture and failure semantics.
"""

from repro.fleet.hashing import pick_backend, rendezvous_rank, score
from repro.fleet.router import FleetRouter, RouterThread
from repro.fleet.supervisor import FleetSupervisor

__all__ = [
    "FleetRouter",
    "FleetSupervisor",
    "RouterThread",
    "pick_backend",
    "rendezvous_rank",
    "score",
]
