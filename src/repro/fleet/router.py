"""The fleet router: one HTTP front door over N shared-nothing replicas.

Scale-out shape: each replica is a complete, independent
:class:`~repro.server.daemon.CbesDaemon` (own job store, own worker
pool, own telemetry); the router owns **no job state**.  Placement is a
pure function — the router mints a globally-unique job id and
rendezvous-hashes it to a replica (:mod:`repro.fleet.hashing`), so any
router instance, restarted or replicated, routes the same id to the
same replica.

Request handling:

* ``POST /v1/jobs`` — mint an id (unless the client supplied one),
  submit to the best *healthy* replica in the id's preference order;
* ``POST /v1/jobs:batch`` — partition entries by target replica, fan
  the sub-batches out concurrently, merge per-job results back into
  submission order (batch atomicity becomes per-replica: see
  ``docs/FLEET.md``);
* ``GET /v1/jobs/{id}`` — walk the id's preference order until a
  replica answers 200 (a job submitted while its first choice was
  unhealthy lives on the second);
* ``GET /v1/jobs`` — scatter to healthy replicas, concatenate in
  configured replica order, apply ``state``/``after``/``limit``
  centrally;
* ``GET /v1/metrics`` — scatter, then associatively merge the replica
  snapshots (counters/gauges sum, histograms merge bucket-wise — the
  same discipline :mod:`repro.telemetry` uses within one process) and
  render them exactly like a single daemon would;
* ``GET /v1/healthz`` — fleet health: per-replica documents plus an
  aggregate ``ok`` / ``degraded`` verdict;
* ``POST /v1/schedule:best`` — race one schedule request across every
  healthy replica (distinct seeds) and reduce to the best result with
  repro.search's deterministic tie-break: ``(predicted_time,
  submission index)``;
* ``GET /v1/snapshot`` / ``/v1/profiles`` / ``/v1/traces`` — forwarded
  to one healthy replica, retried on a peer if it fails mid-request
  (idempotent reads only).

A replica is marked unhealthy after ``unhealthy_after`` consecutive
transport failures; a background probe loop keeps knocking and restores
it on the first successful health check.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
import time
import uuid

from urllib.parse import parse_qs

from repro import telemetry
from repro.fleet.hashing import rendezvous_rank
from repro.fleet.transport import BackendError, BackendPool
from repro.server.protocol import (
    ApiError,
    HttpRequest,
    RawResponse,
    read_request,
    render_response,
)
from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    merge_snapshots,
    snapshot_to_prometheus,
)

__all__ = ["FleetRouter", "RouterThread"]

log = logging.getLogger("repro.fleet.router")

#: Metric families recorded by the router (name, help[, labels]).
FLEET_REQUESTS_TOTAL = (
    "cbes_fleet_requests_total",
    "HTTP requests served by the fleet router.",
    ("method", "route", "status"),
)
FLEET_BACKEND_REQUESTS_TOTAL = (
    "cbes_fleet_backend_requests_total",
    "Requests forwarded to replicas.",
    ("backend", "outcome"),
)
FLEET_BACKEND_UNHEALTHY_TOTAL = (
    "cbes_fleet_backend_unhealthy_total",
    "Times a replica was marked unhealthy.",
    ("backend",),
)
FLEET_RETRIES_TOTAL = (
    "cbes_fleet_retries_total",
    "Idempotent reads retried on a healthy peer.",
)


class _Replica:
    """One backend and its health bookkeeping."""

    def __init__(self, backend: str, *, timeout_s: float):
        self.backend = backend
        self.pool = BackendPool(backend, timeout_s=timeout_s)
        self.healthy = True
        self.failures = 0


class FleetRouter:
    """Routes the CBES HTTP API across shared-nothing replica daemons.

    Parameters
    ----------
    backends:
        ``host:port`` strings of the replica daemons (configured order
        is the deterministic merge order for listings and health).
    host, port:
        Router bind address; port 0 picks an ephemeral port.
    unhealthy_after:
        Consecutive transport failures before a replica is routed
        around.
    probe_interval_s:
        Period of the background probe that resurrects unhealthy
        replicas.
    timeout_s:
        Per-exchange deadline on replica calls.
    keepalive_timeout_s:
        Idle client connections are reaped after this long.
    metrics:
        Router-local registry (fresh one by default); merged into the
        fleet ``/v1/metrics`` reduction alongside the replicas'.
    """

    def __init__(
        self,
        backends: list[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unhealthy_after: int = 3,
        probe_interval_s: float = 0.5,
        timeout_s: float = 30.0,
        keepalive_timeout_s: float | None = 30.0,
        metrics: telemetry.MetricsRegistry | None = None,
    ) -> None:
        if not backends:
            raise ValueError("fleet router requires at least one backend")
        if len(set(backends)) != len(backends):
            raise ValueError("backends must be unique")
        if unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be > 0")
        self._host = host
        self._port = port
        self._unhealthy_after = unhealthy_after
        self._probe_interval = probe_interval_s
        self._keepalive_timeout = keepalive_timeout_s
        self._replicas = {b: _Replica(b, timeout_s=timeout_s) for b in backends}
        self._order = list(backends)
        self._metrics = metrics if metrics is not None else telemetry.MetricsRegistry()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._probe_task: asyncio.Task | None = None
        self._shutdown_requested: asyncio.Event | None = None
        self._started_at: float | None = None
        self._instrument()

    def _instrument(self) -> None:
        m = self._metrics
        self._m_requests = m.counter(*FLEET_REQUESTS_TOTAL)
        self._m_backend = m.counter(*FLEET_BACKEND_REQUESTS_TOTAL)
        self._m_unhealthy = m.counter(*FLEET_BACKEND_UNHEALTHY_TOTAL)
        self._m_retries = m.counter(*FLEET_RETRIES_TOTAL)
        m.gauge(
            "cbes_fleet_replicas", "Configured replicas.", callback=lambda: len(self._replicas)
        )
        m.gauge(
            "cbes_fleet_replicas_healthy",
            "Replicas currently considered healthy.",
            callback=lambda: sum(r.healthy for r in self._replicas.values()),
        )

    # -- properties -----------------------------------------------------
    @property
    def backends(self) -> list[str]:
        return list(self._order)

    @property
    def metrics(self) -> telemetry.MetricsRegistry:
        return self._metrics

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("router is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            return self.address
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        self._started_at = time.monotonic()
        self._probe_task = self._loop.create_task(self._probe_loop(), name="fleet-probe")
        self._server = await asyncio.start_server(self._handle_connection, self._host, self._port)
        host, port = self.address
        log.info("fleet router on %s:%d over %s", host, port, ", ".join(self._order))
        return host, port

    def request_shutdown(self) -> None:
        loop, event = self._loop, self._shutdown_requested
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    async def wait_shutdown(self) -> None:
        assert self._shutdown_requested is not None, "router is not started"
        await self._shutdown_requested.wait()

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._probe_task is not None:
            self._probe_task.cancel()
            await asyncio.gather(self._probe_task, return_exceptions=True)
        for replica in self._replicas.values():
            replica.pool.close()
        self._server = None
        log.info("fleet router stopped")

    async def serve_forever(self) -> None:
        await self.start()
        assert self._loop is not None
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.request_shutdown)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await self.wait_shutdown()
        finally:
            for sig in installed:
                self._loop.remove_signal_handler(sig)
            await self.stop()

    # -- replica health -------------------------------------------------
    def _healthy(self) -> list[str]:
        return [b for b in self._order if self._replicas[b].healthy]

    def _note_success(self, backend: str) -> None:
        replica = self._replicas[backend]
        replica.failures = 0
        if not replica.healthy:
            replica.healthy = True
            log.info("replica %s is healthy again", backend)
        self._m_backend.inc(backend=backend, outcome="ok")

    def _note_failure(self, backend: str) -> None:
        replica = self._replicas[backend]
        replica.failures += 1
        self._m_backend.inc(backend=backend, outcome="error")
        if replica.healthy and replica.failures >= self._unhealthy_after:
            replica.healthy = False
            self._m_unhealthy.inc(backend=backend)
            log.warning(
                "replica %s marked unhealthy after %d consecutive failures",
                backend,
                replica.failures,
            )

    async def _call(
        self, backend: str, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One replica exchange with health accounting."""
        replica = self._replicas[backend]
        try:
            status, doc = await replica.pool.request_json(method, path, body)
        except BackendError:
            self._note_failure(backend)
            raise
        self._note_success(backend)
        return status, doc

    async def _probe_loop(self) -> None:
        """Knock on unhealthy replicas until they answer again."""
        while True:
            await asyncio.sleep(self._probe_interval)
            for backend in self._order:
                replica = self._replicas[backend]
                if replica.healthy:
                    continue
                try:
                    status, _doc = await replica.pool.request_json("GET", "/v1/healthz")
                except BackendError:
                    continue
                if status == 200:
                    replica.failures = 0
                    replica.healthy = True
                    log.info("replica %s resurrected by probe", backend)

    # -- HTTP front end -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                status: int | None = None
                method, path = "-", "-"
                keep_alive = False
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), self._keepalive_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except ApiError as exc:
                    status, payload, headers = exc.status, exc.to_payload(), exc.headers
                    keep_alive = exc.recoverable
                else:
                    if request is None:
                        break
                    method, path = request.method, request.path
                    try:
                        status, payload, headers = await self._dispatch(request)
                    except ApiError as exc:
                        status, payload, headers = exc.status, exc.to_payload(), exc.headers
                    except Exception:  # noqa: BLE001 - never leak a traceback
                        log.exception("unhandled error routing %s %s", method, path)
                        status = 500
                        payload = {"error": {"code": "internal", "message": "internal error"}}
                        headers = {}
                    keep_alive = (
                        status < 500
                        and request.headers.get("connection", "").lower() != "close"
                    )
                writer.write(render_response(status, payload, headers=headers, close=not keep_alive))
                await writer.drain()
                route = self._route_of(path)
                self._m_requests.inc(method=method, route=route, status=status)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown closed the server while this connection idled in
            # keep-alive; swallowing the cancellation here keeps the
            # streams connection callback from logging it as an error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    _ROUTES = (
        "/v1/jobs",
        "/v1/jobs:batch",
        "/v1/healthz",
        "/v1/metrics",
        "/v1/snapshot",
        "/v1/profiles",
        "/v1/traces",
        "/v1/load",
        "/v1/schedule:best",
    )

    @classmethod
    def _route_of(cls, path: str) -> str:
        path = path.partition("?")[0].rstrip("/") or "/"
        if path in cls._ROUTES:
            return path
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{id}"
        if path.startswith("/v1/remap"):
            return "/v1/remap"
        return "(unmatched)"

    async def _dispatch(self, request: HttpRequest) -> tuple[int, dict | RawResponse, dict]:
        method = request.method
        path, _, query_string = request.path.partition("?")
        path = path.rstrip("/") or "/"
        query = parse_qs(query_string)
        if path == "/v1/jobs":
            if method == "POST":
                return await self._submit(request)
            if method == "GET":
                return await self._list_jobs(query)
            raise ApiError(405, "method-not-allowed", f"{method} not allowed on {path}")
        if path == "/v1/jobs:batch":
            if method == "POST":
                return await self._submit_batch(request)
            raise ApiError(405, "method-not-allowed", f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise ApiError(405, "method-not-allowed", f"{method} not allowed on {path}")
            return await self._get_job(path.removeprefix("/v1/jobs/"))
        if path == "/v1/schedule:best":
            if method != "POST":
                raise ApiError(405, "method-not-allowed", f"{method} not allowed on {path}")
            return await self._schedule_best(request, query)
        if path == "/v1/load":
            if method != "POST":
                raise ApiError(405, "method-not-allowed", f"{method} not allowed on {path}")
            return await self._inject_load(request)
        if path.startswith("/v1/remap"):
            raise ApiError(
                501,
                "not-implemented",
                "remap watches are per-replica state; register them on a "
                "replica directly (the fleet router does not proxy them)",
            )
        if method != "GET":
            raise ApiError(405, "method-not-allowed", f"{method} not allowed on {path}")
        if path == "/v1/healthz":
            return await self._healthz()
        if path == "/v1/metrics":
            return await self._merged_metrics(query)
        if path in ("/v1/snapshot", "/v1/profiles", "/v1/traces"):
            return await self._forward_read(request.path)
        raise ApiError(404, "not-found", f"no route for {path}")

    # -- submission -----------------------------------------------------
    def _routed_backends(self, job_id: str) -> list[str]:
        """Healthy replicas in the id's rendezvous preference order."""
        healthy = set(self._healthy())
        ranked = [b for b in rendezvous_rank(job_id, self._order) if b in healthy]
        if not ranked:
            raise ApiError(503, "no-replicas", "no healthy replicas available")
        return ranked

    async def _submit(self, request: HttpRequest) -> tuple[int, dict, dict]:
        doc = request.json()
        job_id = doc.get("id")
        if job_id is None:
            # The id is pure identity (never a scheduling decision), so
            # OS entropy keeps it unique across routers and restarts.
            job_id = uuid.uuid4().hex  # repro: disable=RPR101
            doc = {**doc, "id": job_id}
        if not isinstance(job_id, str) or not job_id:
            raise ApiError(400, "bad-request", "payload field 'id' must be a non-empty string")
        last_error: BackendError | None = None
        for backend in self._routed_backends(job_id):
            try:
                status, payload = await self._call(backend, "POST", "/v1/jobs", doc)
            except BackendError as exc:
                last_error = exc
                continue
            if status < 500:
                return status, payload, {}
        raise ApiError(
            503, "no-replicas", f"every routed replica failed (last: {last_error})"
        )

    async def _submit_batch(self, request: HttpRequest) -> tuple[int, dict, dict]:
        doc = request.json()
        entries = doc.get("jobs")
        if not isinstance(entries, list) or not entries:
            raise ApiError(
                400, "bad-request", "payload field 'jobs' must be a non-empty list of job documents"
            )
        stamped = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ApiError(400, "bad-request", "every batch entry must be a JSON object")
            if entry.get("id") is None:
                # Identity, not a decision (see _submit).
                entry = {**entry, "id": uuid.uuid4().hex}  # repro: disable=RPR101
            stamped.append(entry)
        groups: dict[str, list[int]] = {}
        for i, entry in enumerate(stamped):
            backend = self._routed_backends(entry["id"])[0]
            groups.setdefault(backend, []).append(i)

        async def _send(backend: str, indices: list[int]) -> tuple[int, dict]:
            return await self._call(
                backend, "POST", "/v1/jobs:batch", {"jobs": [stamped[i] for i in indices]}
            )

        results = await asyncio.gather(
            *(_send(b, idx) for b, idx in groups.items()), return_exceptions=True
        )
        merged: list[dict | None] = [None] * len(stamped)
        for (backend, indices), outcome in zip(groups.items(), results):
            if isinstance(outcome, BaseException):
                if isinstance(outcome, (BackendError, ApiError)):
                    raise ApiError(
                        503,
                        "replica-failed",
                        f"sub-batch to {backend} failed ({outcome}); "
                        "other sub-batches may have been accepted",
                    )
                raise outcome
            status, payload = outcome
            if status >= 400:
                error = payload.get("error", {})
                raise ApiError(
                    status,
                    error.get("code", "replica-error"),
                    f"replica {backend}: {error.get('message', 'rejected the sub-batch')}",
                )
            for slot, job_doc in zip(indices, payload.get("jobs", [])):
                merged[slot] = job_doc
        if any(job is None for job in merged):
            raise ApiError(502, "replica-error", "a replica returned fewer jobs than submitted")
        return 202, {"jobs": merged, "count": len(merged)}, {}

    # -- lookup / listing -----------------------------------------------
    async def _get_job(self, job_id: str) -> tuple[int, dict, dict]:
        """Walk the id's preference order until someone owns it."""
        last_error: BackendError | None = None
        for rank, backend in enumerate(self._routed_backends(job_id)):
            try:
                status, payload = await self._call(backend, "GET", f"/v1/jobs/{job_id}")
            except BackendError as exc:
                last_error = exc
                continue
            if rank > 0:
                self._m_retries.inc()
            if status != 404:
                return status, payload, {}
        if last_error is not None:
            raise ApiError(503, "no-replicas", f"lookup failed on every replica ({last_error})")
        raise ApiError(404, "not-found", f"no job {job_id!r} on any replica")

    async def _list_jobs(self, query: dict[str, list[str]]) -> tuple[int, dict, dict]:
        state = query.get("state", [None])[0]
        after = query.get("after", [None])[0]
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"][0])
            except ValueError:
                raise ApiError(400, "bad-request", "limit must be an integer") from None
            if limit < 0:
                raise ApiError(400, "bad-request", "limit must be >= 0")
        suffix = f"?state={state}" if state is not None else ""
        # `after` pages over the *merged* list, so the cursor must be
        # resolved here — replicas only get the state filter (plus the
        # limit when no cursor shifts the window).
        if after is None and limit is not None:
            joiner = "&" if suffix else "?"
            suffix += f"{joiner}limit={limit}"
        backends = self._healthy()
        if not backends:
            raise ApiError(503, "no-replicas", "no healthy replicas available")
        results = await asyncio.gather(
            *(self._call(b, "GET", f"/v1/jobs{suffix}") for b in backends),
            return_exceptions=True,
        )
        jobs: list[dict] = []
        for backend, outcome in zip(backends, results):
            if isinstance(outcome, BaseException):
                if isinstance(outcome, BackendError):
                    continue  # freshly-failed replica: serve the survivors
                raise outcome
            status, payload = outcome
            if status == 200:
                jobs.extend(payload.get("jobs", []))
        if after is not None:
            index = next((i for i, job in enumerate(jobs) if job.get("id") == after), None)
            if index is None:
                raise ApiError(400, "bad-request", f"unknown 'after' job id {after!r}")
            jobs = jobs[index + 1 :]
        if limit is not None:
            jobs = jobs[:limit]
        return 200, {"jobs": jobs}, {}

    # -- aggregation ----------------------------------------------------
    async def _healthz(self) -> tuple[int, dict, dict]:
        assert self._started_at is not None

        async def _probe(backend: str) -> dict:
            try:
                status, payload = await self._call(backend, "GET", "/v1/healthz")
            except BackendError as exc:
                return {"backend": backend, "healthy": False, "error": str(exc)}
            if status != 200:
                return {"backend": backend, "healthy": False, "error": f"status {status}"}
            return {"backend": backend, "healthy": True, **payload}

        reports = await asyncio.gather(*(_probe(b) for b in self._order))
        healthy = sum(1 for r in reports if r["healthy"])
        totals: dict[str, int] = {}
        queue_depth = queue_limit = workers = 0
        for report in reports:
            for state, count in report.get("jobs", {}).items():
                totals[state] = totals.get(state, 0) + count
            # Extensive quantities: fleet capacity is the replicas' sum.
            queue_depth += report.get("queue_depth", 0)
            queue_limit += report.get("queue_limit", 0)
            workers += report.get("workers", 0)
        return 200, {
            "status": "ok" if healthy == len(reports) else "degraded",
            "role": "fleet-router",
            "uptime_s": time.monotonic() - self._started_at,
            "replicas_total": len(reports),
            "replicas_healthy": healthy,
            "jobs": totals,
            "queue_depth": queue_depth,
            "queue_limit": queue_limit,
            "workers": workers,
            "replicas": reports,
        }, {}

    async def _merged_metrics(
        self, query: dict[str, list[str]]
    ) -> tuple[int, dict | RawResponse, dict]:
        backends = self._healthy()
        results = await asyncio.gather(
            *(self._call(b, "GET", "/v1/metrics?format=json") for b in backends),
            return_exceptions=True,
        )
        snapshots = [self._metrics.snapshot()]
        for outcome in results:
            if isinstance(outcome, BaseException):
                if isinstance(outcome, BackendError):
                    continue
                raise outcome
            status, payload = outcome
            if status == 200 and isinstance(payload.get("metrics"), dict):
                snapshots.append(payload["metrics"])
        merged = merge_snapshots(snapshots)
        if query.get("format", [""])[0] == "json":
            return 200, {"metrics": merged}, {}
        text = snapshot_to_prometheus(merged)
        return 200, RawResponse(text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE), {}

    async def _forward_read(self, path: str) -> tuple[int, dict, dict]:
        """Forward an idempotent read, retrying on a healthy peer."""
        backends = self._healthy()
        if not backends:
            raise ApiError(503, "no-replicas", "no healthy replicas available")
        last_error: BackendError | None = None
        for i, backend in enumerate(backends):
            try:
                status, payload = await self._call(backend, "GET", path)
            except BackendError as exc:
                last_error = exc
                continue
            if i > 0:
                self._m_retries.inc()
            return status, payload, {}
        raise ApiError(503, "no-replicas", f"read failed on every replica ({last_error})")

    async def _inject_load(self, request: HttpRequest) -> tuple[int, dict, dict]:
        """Fan a load injection to every healthy replica.

        Each replica owns an independent simulated cluster; injecting
        everywhere keeps their snapshots telling the same story.
        """
        doc = request.json()
        backends = self._healthy()
        if not backends:
            raise ApiError(503, "no-replicas", "no healthy replicas available")
        results = await asyncio.gather(
            *(self._call(b, "POST", "/v1/load", doc) for b in backends),
            return_exceptions=True,
        )
        first: dict | None = None
        applied = 0
        for outcome in results:
            if isinstance(outcome, BaseException):
                if isinstance(outcome, BackendError):
                    continue
                raise outcome
            status, payload = outcome
            if status == 200:
                applied += 1
                if first is None:
                    first = payload
            else:
                error = payload.get("error", {})
                raise ApiError(
                    status, error.get("code", "replica-error"), error.get("message", "")
                )
        if first is None:
            raise ApiError(503, "no-replicas", "load injection failed on every replica")
        return 200, {**first, "replicas_applied": applied}, {}

    # -- best-of race ---------------------------------------------------
    async def _schedule_best(
        self, request: HttpRequest, query: dict[str, list[str]]
    ) -> tuple[int, dict, dict]:
        """Race one schedule request across the fleet; reduce to the best.

        Each healthy replica runs the same search from a distinct seed
        (``seed + replica index``), so the fleet explores different
        trajectories of the same space.  The reduction is
        deterministic — min over ``(predicted_time, submission index)``,
        the same tie-break discipline :mod:`repro.search` uses — so
        equal-quality results always resolve the same way.
        """
        doc = request.json()
        if doc.get("kind", "schedule") != "schedule":
            raise ApiError(400, "bad-request", "schedule:best accepts schedule jobs only")
        try:
            timeout_s = float(query.get("timeout_s", ["120"])[0])
        except ValueError:
            raise ApiError(400, "bad-request", "timeout_s must be a number") from None
        base_seed = doc.get("seed", 0)
        if not isinstance(base_seed, int) or isinstance(base_seed, bool):
            raise ApiError(400, "bad-request", "payload field 'seed' must be an integer")
        backends = self._healthy()
        if not backends:
            raise ApiError(503, "no-replicas", "no healthy replicas available")

        async def _race(index: int, backend: str) -> dict:
            # Identity, not a decision (see _submit).
            job_id = uuid.uuid4().hex  # repro: disable=RPR101
            body = {**doc, "kind": "schedule", "seed": base_seed + index, "id": job_id}
            status, payload = await self._call(backend, "POST", "/v1/jobs", body)
            if status >= 400:
                error = payload.get("error", {})
                raise ApiError(
                    status, error.get("code", "replica-error"),
                    f"replica {backend}: {error.get('message', '')}",
                )
            deadline = self._loop.time() + timeout_s if self._loop else timeout_s
            while True:
                status, payload = await self._call(backend, "GET", f"/v1/jobs/{job_id}")
                job = payload.get("job", {})
                if job.get("state") == "done":
                    return {"backend": backend, "seed": base_seed + index, **job["result"]}
                if job.get("state") == "failed":
                    raise ApiError(
                        500, "job-failed", f"replica {backend}: {job.get('error', '')}"
                    )
                assert self._loop is not None
                if self._loop.time() >= deadline:
                    raise ApiError(
                        503, "timeout", f"replica {backend} still running after {timeout_s:.0f}s"
                    )
                await asyncio.sleep(0.02)

        outcomes = await asyncio.gather(
            *(_race(i, b) for i, b in enumerate(backends)), return_exceptions=True
        )
        results = []
        for backend, outcome in zip(backends, outcomes):
            if isinstance(outcome, BaseException):
                if isinstance(outcome, (BackendError, ApiError)):
                    log.warning("schedule:best leg on %s failed: %s", backend, outcome)
                    continue
                raise outcome
            results.append(outcome)
        if not results:
            raise ApiError(503, "no-replicas", "every schedule:best leg failed")
        best_index = min(
            range(len(results)), key=lambda i: (results[i]["predicted_time"], i)
        )
        return 200, {
            "best": results[best_index],
            "results": results,
            "replicas_raced": len(results),
        }, {}


class RouterThread:
    """Run a :class:`FleetRouter` on a dedicated thread and event loop.

    The blocking convenience mirror of
    :class:`~repro.server.daemon.DaemonThread`, used by tests and
    benchmarks::

        with RouterThread(["127.0.0.1:8081", "127.0.0.1:8082"]) as fleet:
            client = fleet.client()
    """

    def __init__(self, backends: list[str], *, startup_timeout_s: float = 30.0, **router_kwargs):
        self.router = FleetRouter(backends, **router_kwargs)
        self._startup_timeout = startup_timeout_s
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._main, name="fleet-router", daemon=True)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        try:
            await self.router.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the starter
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self.router.wait_shutdown()
        finally:
            await self.router.stop()

    def __enter__(self) -> "RouterThread":
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise RuntimeError("fleet router did not start within the startup timeout")
        if self._error is not None:
            raise RuntimeError("fleet router failed to start") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, *, timeout_s: float = 60.0) -> None:
        self.router.request_shutdown()
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise RuntimeError("fleet router thread did not stop within the timeout")

    @property
    def host(self) -> str:
        return self.router.address[0]

    @property
    def port(self) -> int:
        return self.router.address[1]

    def client(self, **kwargs):
        """A blocking :class:`~repro.server.client.CbesClient` for the router."""
        from repro.server.client import CbesClient

        return CbesClient(self.host, self.port, **kwargs)
