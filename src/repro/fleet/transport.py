"""Asyncio HTTP/1.1 client transport for the fleet router.

One :class:`BackendPool` per replica: it dials ``asyncio``
stream connections on demand, keeps idle ones for reuse (the daemon
speaks keep-alive), and mirrors :class:`~repro.server.client.CbesClient`'s
stale-socket discipline — a *reused* connection that dies before any
response bytes arrive never reached a handler, so the request is retried
once on a fresh connection; fresh-connection failures surface
immediately.  Stdlib only, usable from any number of concurrent router
handlers (each request checks a connection out of the pool).
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["BackendError", "BackendPool", "read_response"]

#: Hard caps on response framing — the replicas are trusted, but a
#: misconfigured backend must not balloon the router.
MAX_RESPONSE_HEADER_BYTES = 64 * 1024
MAX_RESPONSE_BODY_BYTES = 64 * 1024 * 1024


class BackendError(RuntimeError):
    """A replica could not be reached or answered unparseable bytes."""

    def __init__(self, backend: str, message: str):
        super().__init__(f"{backend}: {message}")
        self.backend = backend


async def read_response(
    reader: asyncio.StreamReader, backend: str
) -> tuple[int, dict[str, str], bytes]:
    """Parse one HTTP response; returns (status, headers, body)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
        raise BackendError(backend, f"truncated response head: {exc}") from None
    if len(head) > MAX_RESPONSE_HEADER_BYTES:
        raise BackendError(backend, "response header section too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise BackendError(backend, f"malformed status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise BackendError(backend, f"malformed status line {lines[0]!r}") from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BackendError(backend, "malformed Content-Length in response") from None
        if not 0 <= length <= MAX_RESPONSE_BODY_BYTES:
            raise BackendError(backend, f"implausible response length {length}")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BackendError(backend, "response body shorter than Content-Length") from None
    return status, headers, body


class BackendPool:
    """Pooled keep-alive connections to one replica.

    Parameters
    ----------
    backend:
        ``host:port`` of the replica (also its identity in errors).
    timeout_s:
        Per-exchange deadline (connect, send, and read each response).
    max_idle:
        Idle connections kept for reuse; extras are closed on release.
    """

    def __init__(self, backend: str, *, timeout_s: float = 30.0, max_idle: int = 4):
        host, _, port_text = backend.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"backend must be host:port, got {backend!r}")
        self.backend = backend
        self.host = host
        self.port = int(port_text)
        self.timeout_s = timeout_s
        self.max_idle = max_idle
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False

    async def _dial(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise BackendError(self.backend, f"connect failed: {exc}") from None

    def _release(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        if self._closed or len(self._idle) >= self.max_idle:
            writer.close()
            return
        self._idle.append((reader, writer))

    async def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange with the replica; returns (status, headers, body).

        Reuses a pooled connection when one is idle; a reused socket
        that dies before response bytes arrive is retried once on a
        fresh connection (the request never reached a handler).
        """
        data = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.backend}\r\n"
            f"Content-Length: {len(data)}\r\n"
        )
        if data:
            head += "Content-Type: application/json\r\n"
        frame = (head + "\r\n").encode("latin-1") + data
        for _attempt in (0, 1):
            reused = bool(self._idle)
            if reused:
                reader, writer = self._idle.pop()
            else:
                reader, writer = await self._dial()
            try:
                writer.write(frame)
                await asyncio.wait_for(writer.drain(), self.timeout_s)
                status, headers, payload = await asyncio.wait_for(
                    read_response(reader, self.backend), self.timeout_s
                )
            except (BackendError, OSError, asyncio.TimeoutError) as exc:
                writer.close()
                if reused:
                    continue  # stale keep-alive socket: retry once, fresh
                if isinstance(exc, BackendError):
                    raise
                raise BackendError(self.backend, f"request failed: {exc}") from None
            if headers.get("connection", "").lower() == "close":
                writer.close()
            else:
                self._release(reader, writer)
            return status, headers, payload
        raise BackendError(self.backend, "retry loop exhausted")  # pragma: no cover

    async def request_json(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """:meth:`request` with the body parsed as a JSON object."""
        status, _headers, raw = await self.request(method, path, body)
        if not raw:
            return status, {}
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BackendError(self.backend, f"non-JSON response body: {exc}") from None
        if not isinstance(doc, dict):
            raise BackendError(self.backend, "response body is not a JSON object")
        return status, doc

    def close(self) -> None:
        """Close every idle connection (in-flight ones close themselves)."""
        self._closed = True
        while self._idle:
            _reader, writer = self._idle.pop()
            writer.close()
