"""Spawn and reap `repro serve` replica subprocesses.

``repro fleet --replicas N`` uses this to boot a self-contained fleet:
N daemon subprocesses on ephemeral ports (each its own process — own
GIL, own job store, own simulated cluster), discovered by parsing the
``serving on http://host:port`` banner each daemon prints on stdout.
With ``data_root`` set, replica *i* journals under
``data_root/r{i}``, so a restarted fleet recovers every replica's jobs.

The supervisor is deliberately synchronous (it runs before the router's
event loop starts) and stdlib-only.
"""

from __future__ import annotations

import logging
import os
import re
import signal
import subprocess
import sys
import time

__all__ = ["FleetSupervisor"]

log = logging.getLogger("repro.fleet.supervisor")

_BANNER = re.compile(r"serving on http://([0-9.]+):(\d+)")


class FleetSupervisor:
    """Owns the lifecycle of N `repro serve` replica subprocesses.

    Parameters mirror the ``repro serve`` flags each replica receives.
    Every replica gets the *same* seed: transparent scale-out means a
    job must produce the identical result no matter which replica it
    hashes to, so the replicas' simulated clusters and monitors must be
    indistinguishable.  (The ``schedule:best`` race varies *job* seeds,
    which is a different knob.)
    """

    def __init__(
        self,
        *,
        replicas: int,
        db: str = ".cbes-db",
        cluster: str = "orange-grove",
        seed: int = 0,
        workers: int = 2,
        queue_limit: int = 16,
        data_root: str | None = None,
        fsync: str = "interval",
        log_level: str = "info",
        startup_timeout_s: float = 60.0,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._replicas = replicas
        self._db = db
        self._cluster = cluster
        self._seed = seed
        self._workers = workers
        self._queue_limit = queue_limit
        self._data_root = data_root
        self._fsync = fsync
        self._log_level = log_level
        self._startup_timeout = startup_timeout_s
        self._procs: list[subprocess.Popen] = []
        self.backends: list[str] = []

    def _command(self, index: int) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "--db",
            self._db,
            "--cluster",
            self._cluster,
            "--seed",
            str(self._seed),
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            str(self._workers),
            "--queue-limit",
            str(self._queue_limit),
            "--replica-id",
            f"r{index}",
            "--log-level",
            self._log_level,
        ]
        if self._data_root is not None:
            cmd += [
                "--data-dir",
                os.path.join(self._data_root, f"r{index}"),
                "--fsync",
                self._fsync,
            ]
        return cmd

    def start(self) -> list[str]:
        """Boot every replica; returns their ``host:port`` addresses.

        Blocks until each replica prints its banner (it has bound its
        port and recovered its journal by then).  Any replica dying
        before the banner aborts the whole start.
        """
        if self._procs:
            raise RuntimeError("supervisor already started")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        try:
            for index in range(self._replicas):
                proc = subprocess.Popen(
                    self._command(index),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                    env=env,
                )
                self._procs.append(proc)
                self.backends.append(self._await_banner(proc, index))
                log.info("replica r%d serving on %s (pid %d)", index, self.backends[-1], proc.pid)
        except Exception:
            self.stop()
            raise
        return list(self.backends)

    def _await_banner(self, proc: subprocess.Popen, index: int) -> str:
        assert proc.stdout is not None
        deadline = time.monotonic() + self._startup_timeout
        while True:
            if time.monotonic() > deadline:
                raise RuntimeError(f"replica r{index} did not start within the startup timeout")
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"replica r{index} exited before serving (code {proc.poll()})"
                )
            match = _BANNER.search(line)
            if match:
                return f"{match.group(1)}:{match.group(2)}"

    def poll(self) -> list[int | None]:
        """Exit codes of the replicas (``None`` while still running)."""
        return [proc.poll() for proc in self._procs]

    def kill_replica(self, index: int, *, sig: int = signal.SIGKILL) -> None:
        """Send *sig* to replica *index* (test/chaos hook)."""
        self._procs[index].send_signal(sig)

    def stop(self, *, timeout_s: float = 10.0) -> None:
        """Terminate every replica (SIGTERM, then SIGKILL past the grace)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout_s
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
        self._procs.clear()

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
