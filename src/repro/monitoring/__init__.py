"""System monitoring: sensors, forecasting, snapshots, load injection."""

from repro.monitoring.forecasting import (
    AR1,
    AdaptiveForecaster,
    Ewma,
    Forecaster,
    LastValue,
    SlidingMean,
    SlidingMedian,
    make_forecaster,
)
from repro.monitoring.load import LoadEvent, LoadGenerator
from repro.monitoring.monitor import SystemMonitor
from repro.monitoring.network import LatencySensor, NetworkMonitor
from repro.monitoring.sensors import CpuSensor, NicSensor
from repro.monitoring.snapshot import NodeState, SystemSnapshot

__all__ = [
    "AR1",
    "AdaptiveForecaster",
    "CpuSensor",
    "Ewma",
    "Forecaster",
    "LastValue",
    "LoadEvent",
    "LatencySensor",
    "LoadGenerator",
    "NetworkMonitor",
    "NicSensor",
    "NodeState",
    "SlidingMean",
    "SlidingMedian",
    "SystemMonitor",
    "SystemSnapshot",
    "make_forecaster",
]
