"""Resource sensors: noisy measurements of node CPU and NIC load.

A sensor reads the *true* dynamic state of a simulated node (the role
of the NWS CPU sensor / the CBES MPI and network-availability sensors)
and returns it with seeded measurement noise, so monitoring sees a
realistic approximation of reality rather than the ground truth.
"""

from __future__ import annotations


from repro._util import spawn_rng
from repro.cluster.node import Node

__all__ = ["CpuSensor", "NicSensor"]


class _NoisySensor:
    """Shared machinery: additive Gaussian noise, clipped to validity."""

    def __init__(self, node: Node, *, noise: float = 0.01, seed: int = 0, stream: str = "") -> None:
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self._node = node
        self._noise = float(noise)
        self._rng = spawn_rng(seed, "sensor", stream, node.node_id)
        self._reads = 0

    @property
    def node(self) -> Node:
        return self._node

    @property
    def reads(self) -> int:
        return self._reads

    def _noisy(self, truth: float, upper: float | None) -> float:
        self._reads += 1
        if self._noise == 0.0:
            return truth
        value = truth + float(self._rng.normal(0.0, self._noise))
        value = max(value, 0.0)
        if upper is not None:
            value = min(value, upper)
        return value


class CpuSensor(_NoisySensor):
    """Measures a node's background CPU load (CPU-equivalents of other work)."""

    def __init__(self, node: Node, *, noise: float = 0.01, seed: int = 0) -> None:
        super().__init__(node, noise=noise, seed=seed, stream="cpu")

    def read(self) -> float:
        """One load measurement (>= 0, noisy)."""
        return self._noisy(self._node.background_load, upper=None)


class NicSensor(_NoisySensor):
    """Measures a node's NIC utilisation (fraction of line rate in use)."""

    def __init__(self, node: Node, *, noise: float = 0.01, seed: int = 0) -> None:
        super().__init__(node, noise=noise, seed=seed, stream="nic")

    def read(self) -> float:
        """One utilisation measurement in [0, 1]."""
        return self._noisy(self._node.nic_load, upper=1.0)
