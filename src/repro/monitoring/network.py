"""Runtime network monitoring (the NWS MPI end-to-end latency sensor).

The paper's Centurion prototype extends NWS with *"an MPI end-to-end
latency benchmark"* and *"a network connection availability sensor"*,
run periodically in non-interfering cliques.  This module is that
runtime side of the network picture (the off-line side is
:mod:`repro.cluster.calibration`):

* :class:`LatencySensor` measures one node pair's current small-message
  latency — the true load-adjusted value plus measurement noise;
* :class:`NetworkMonitor` cycles through the calibration clique rounds
  (one round per poll, so each poll touches every node at most once),
  feeds the measurements into per-pair forecasters, and reports each
  pair's *inflation* over its calibrated no-load latency — a live view
  of network availability.
"""

from __future__ import annotations

from repro._util import check_positive, spawn_rng
from repro.cluster.calibration import schedule_cliques
from repro.cluster.cluster import Cluster
from repro.cluster.latency import LatencyModel
from repro.monitoring.forecasting import Forecaster, make_forecaster

__all__ = ["LatencySensor", "NetworkMonitor"]

#: Message size used by the periodic latency probe (small, like NWS).
PROBE_BYTES = 1024.0


class LatencySensor:
    """Measures the current end-to-end latency of one node pair."""

    def __init__(self, cluster: Cluster, src: str, dst: str, *, noise: float = 0.02, seed: int = 0):
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self._cluster = cluster
        self._exact = LatencyModel.from_fabric(cluster.fabric, cluster.nodes)
        self.src = src
        self.dst = dst
        self._noise = noise
        self._rng = spawn_rng(seed, "net-sensor", src, dst)

    def read(self, size_bytes: float = PROBE_BYTES) -> float:
        """One probe: the true load-adjusted latency, observed noisily."""
        check_positive(size_bytes, "size_bytes")
        src_node = self._cluster.node(self.src)
        dst_node = self._cluster.node(self.dst)
        truth = self._exact.current(
            self.src,
            self.dst,
            size_bytes,
            acpu_src=src_node.cpu_availability,
            acpu_dst=dst_node.cpu_availability,
            nic_src=src_node.nic_load,
            nic_dst=dst_node.nic_load,
        )
        if self._noise == 0.0:
            return truth
        return abs(truth * (1.0 + float(self._rng.normal(0.0, self._noise))))


class NetworkMonitor:
    """Periodic clique-scheduled latency sensing with forecasting.

    One ``poll()`` runs a single clique round (every node participates
    in at most one probe), so a full sweep of all pairs takes ``O(N)``
    polls — the monitoring-time analogue of the calibration's wall-clock
    argument.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        forecaster: str = "last-value",
        sensor_noise: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not cluster.is_calibrated:
            raise RuntimeError("network monitoring requires a calibrated cluster")
        self._cluster = cluster
        self._rounds = schedule_cliques(cluster.node_ids())
        self._round_index = 0
        self._kind = forecaster
        self._sensors: dict[tuple[str, str], LatencySensor] = {}
        self._forecasters: dict[tuple[str, str], Forecaster] = {}
        self._noise = sensor_noise
        self._seed = seed
        self._polls = 0

    @property
    def polls(self) -> int:
        return self._polls

    @property
    def rounds_per_sweep(self) -> int:
        """Polls needed to touch every node pair once."""
        return len(self._rounds)

    def poll(self, rounds: int = 1) -> None:
        """Probe the next *rounds* clique rounds."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        for _ in range(rounds):
            for pair in self._rounds[self._round_index]:
                sensor = self._sensors.get(pair)
                if sensor is None:
                    sensor = LatencySensor(
                        self._cluster, *pair, noise=self._noise, seed=self._seed
                    )
                    self._sensors[pair] = sensor
                    self._forecasters[pair] = make_forecaster(self._kind)
                self._forecasters[pair].update(sensor.read())
            self._round_index = (self._round_index + 1) % len(self._rounds)
            self._polls += 1

    def sweep(self) -> None:
        """Probe every pair once (one full set of clique rounds)."""
        self.poll(rounds=len(self._rounds))

    # -- queries ------------------------------------------------------------
    def latency(self, a: str, b: str) -> float:
        """Forecast current latency of an unordered pair (seconds)."""
        pair = (a, b) if a <= b else (b, a)
        forecaster = self._forecasters.get(pair)
        if forecaster is None or forecaster.observations == 0:
            raise KeyError(f"pair {pair} has not been probed yet")
        return forecaster.forecast()

    def inflation(self, a: str, b: str) -> float:
        """Current latency over the calibrated no-load value (>= ~1)."""
        pair = (a, b) if a <= b else (b, a)
        no_load = self._cluster.latency_model.no_load(pair[0], pair[1], PROBE_BYTES)
        return self.latency(*pair) / no_load

    def hotspots(self, *, threshold: float = 1.3) -> list[tuple[str, str, float]]:
        """Pairs whose current latency exceeds *threshold* x no-load.

        The network-availability picture the paper's connection sensor
        provides: which parts of the fabric are currently degraded.
        """
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        found = []
        for pair, forecaster in self._forecasters.items():
            if forecaster.observations == 0:
                continue
            ratio = self.inflation(*pair)
            if ratio > threshold:
                found.append((pair[0], pair[1], ratio))
        return sorted(found, key=lambda item: -item[2])
