"""Background load generation for experiments.

The paper's third validation phase re-measures applications *after
changing the load conditions* that the prediction was made under.  The
:class:`LoadGenerator` provides the controlled way to do that to the
simulated cluster: inject CPU-hog and traffic load on chosen (or
randomly chosen) nodes, then restore.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

from repro._util import check_fraction, spawn_rng
from repro.cluster.cluster import Cluster

__all__ = ["LoadEvent", "LoadGenerator"]


@dataclass(frozen=True)
class LoadEvent:
    """One injected load condition on one node."""

    node_id: str
    cpu_load: float = 0.0
    nic_load: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_load < 0:
            raise ValueError("cpu_load must be >= 0")
        check_fraction(self.nic_load, "nic_load")


class LoadGenerator:
    """Injects and clears background load on a cluster."""

    def __init__(self, cluster: Cluster, *, seed: int = 0) -> None:
        self._cluster = cluster
        self._seed = int(seed)

    def apply(self, events: Iterable[LoadEvent]) -> list[LoadEvent]:
        """Apply the given load events; returns the prior state events."""
        previous = []
        for event in events:
            node = self._cluster.node(event.node_id)
            previous.append(LoadEvent(event.node_id, node.background_load, node.nic_load))
            node.set_background_load(event.cpu_load)
            node.set_nic_load(event.nic_load)
        return previous

    def clear(self) -> None:
        """Remove all background load from the cluster."""
        self._cluster.clear_loads()

    @contextmanager
    def loaded(self, events: Iterable[LoadEvent]):
        """Context manager: load applied inside, prior state restored after."""
        previous = self.apply(list(events))
        try:
            yield self._cluster
        finally:
            self.apply(previous)

    def random_events(
        self,
        count: int,
        *,
        cpu_range: tuple[float, float] = (0.1, 0.5),
        nic_range: tuple[float, float] = (0.0, 0.0),
        nodes: Sequence[str] | None = None,
        stream: str = "load",
    ) -> list[LoadEvent]:
        """Draw *count* random load events on distinct nodes (seeded)."""
        pool = list(nodes) if nodes is not None else self._cluster.node_ids()
        if count > len(pool):
            raise ValueError(f"cannot load {count} distinct nodes out of {len(pool)}")
        if cpu_range[0] > cpu_range[1] or nic_range[0] > nic_range[1]:
            raise ValueError("ranges must be (low, high) with low <= high")
        rng = spawn_rng(self._seed, stream, count)
        chosen = rng.choice(len(pool), size=count, replace=False)
        events = []
        for idx in chosen:
            cpu = float(rng.uniform(*cpu_range))
            nic = float(rng.uniform(*nic_range))
            events.append(LoadEvent(pool[int(idx)], cpu_load=cpu, nic_load=nic))
        return events
