"""The system monitoring daemon: periodic sensing plus forecasting.

``SystemMonitor`` plays the role of the paper's monitoring daemons: it
polls every node's CPU and NIC sensors, feeds the measurements into
per-node forecasters, and answers the core module's on-demand snapshot
requests with the forecast (Centurion/NWS style) or the latest value
(Orange Grove style), depending on the forecaster it was built with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.monitoring.forecasting import Forecaster, make_forecaster
from repro.monitoring.sensors import CpuSensor, NicSensor
from repro.monitoring.snapshot import NodeState, SystemSnapshot

__all__ = ["SystemMonitor"]


@dataclass
class _NodeChannels:
    cpu_sensor: CpuSensor
    nic_sensor: NicSensor
    cpu_forecaster: Forecaster
    nic_forecaster: Forecaster


class SystemMonitor:
    """Polls node sensors and serves availability snapshots.

    Parameters
    ----------
    cluster:
        The cluster being monitored.
    forecaster:
        Forecaster kind (see :func:`~repro.monitoring.forecasting.make_forecaster`).
        ``"last-value"`` reproduces the Orange Grove prototype,
        ``"adaptive"`` the NWS-based Centurion prototype.
    sensor_noise:
        Measurement noise sigma of the sensors.
    period_s:
        Nominal polling period; only used to advance the snapshot
        timestamp per poll.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        forecaster: str = "last-value",
        sensor_noise: float = 0.01,
        period_s: float = 10.0,
        seed: int = 0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be > 0")
        self._cluster = cluster
        self._period = float(period_s)
        self._kind = forecaster
        self._now = 0.0
        self._polls = 0
        self._channels: dict[str, _NodeChannels] = {}
        for nid, node in cluster.nodes.items():
            self._channels[nid] = _NodeChannels(
                cpu_sensor=CpuSensor(node, noise=sensor_noise, seed=seed),
                nic_sensor=NicSensor(node, noise=sensor_noise, seed=seed),
                cpu_forecaster=make_forecaster(forecaster),
                nic_forecaster=make_forecaster(forecaster),
            )

    @property
    def polls(self) -> int:
        return self._polls

    @property
    def forecaster_kind(self) -> str:
        return self._kind

    def poll(self, rounds: int = 1) -> None:
        """Run *rounds* monitoring periods: sense every node once each."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        for _ in range(rounds):
            for ch in self._channels.values():
                ch.cpu_forecaster.update(ch.cpu_sensor.read())
                ch.nic_forecaster.update(ch.nic_sensor.read())
            self._now += self._period
            self._polls += 1

    def snapshot(self) -> SystemSnapshot:
        """The monitor's current belief about system resource state.

        Requires at least one completed poll, like the real service
        (prior to any invocation the infrastructure must be running).
        """
        if self._polls == 0:
            raise RuntimeError("monitor has no measurements; call poll() first")
        states = {}
        for nid, ch in self._channels.items():
            nic = min(max(ch.nic_forecaster.forecast(), 0.0), 1.0)
            cpu = max(ch.cpu_forecaster.forecast(), 0.0)
            states[nid] = NodeState(background_load=cpu, nic_load=nic)
        return SystemSnapshot(
            timestamp=self._now,
            states=states,
            ncpus={nid: n.ncpus for nid, n in self._cluster.nodes.items()},
        )
