"""Resource-availability snapshots.

A :class:`SystemSnapshot` is the monitoring subsystem's answer to the
core module's on-demand query: for every node, the (believed) current
background CPU load and NIC utilisation.  The mapping evaluator derives
``ACPU_j`` from it.  Snapshots are plain data — they may come from the
live monitor (measured/forecast values) or be constructed directly for
what-if studies.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro._util import check_fraction
from repro.simulate.contention import cpu_share

__all__ = ["SystemSnapshot"]


@dataclass(frozen=True)
class NodeState:
    background_load: float = 0.0
    nic_load: float = 0.0

    def __post_init__(self) -> None:
        if self.background_load < 0:
            raise ValueError("background_load must be >= 0")
        check_fraction(self.nic_load, "nic_load")


@dataclass(frozen=True)
class SystemSnapshot:
    """Per-node resource availability at (or forecast for) one instant."""

    timestamp: float = 0.0
    states: Mapping[str, NodeState] = field(default_factory=dict)
    #: Per-node CPU counts, needed to turn load into availability.
    ncpus: Mapping[str, int] = field(default_factory=dict)

    # -- constructors ---------------------------------------------------
    @classmethod
    def unloaded(cls, node_ids, ncpus: Mapping[str, int] | None = None) -> "SystemSnapshot":
        """A snapshot of a completely idle system."""
        ids = list(node_ids)
        return cls(
            timestamp=0.0,
            states={nid: NodeState() for nid in ids},
            ncpus=dict(ncpus) if ncpus else {nid: 1 for nid in ids},
        )

    @classmethod
    def from_cluster(cls, cluster, timestamp: float = 0.0) -> "SystemSnapshot":
        """The *true* current state of a cluster (an oracle snapshot).

        The live monitor produces measured approximations of this; the
        difference between the two is exactly what the paper's phase-3
        experiments probe.
        """
        return cls(
            timestamp=timestamp,
            states={
                nid: NodeState(node.background_load, node.nic_load)
                for nid, node in cluster.nodes.items()
            },
            ncpus={nid: node.ncpus for nid, node in cluster.nodes.items()},
        )

    # -- queries ----------------------------------------------------------
    def background_load(self, node_id: str) -> float:
        state = self.states.get(node_id)
        return state.background_load if state else 0.0

    def nic_load(self, node_id: str) -> float:
        state = self.states.get(node_id)
        return state.nic_load if state else 0.0

    def acpu(self, node_id: str, mapped_procs: int = 1) -> float:
        """CPU availability ``ACPU_j`` for *mapped_procs* incoming processes.

        This is the quantity eq. (5) divides by: the fair CPU share one
        process receives given the node's CPU count, the believed
        background load, and how many application processes the mapping
        under evaluation co-locates there.
        """
        n = self.ncpus.get(node_id, 1)
        return cpu_share(n, mapped_procs, self.background_load(node_id))

    def fingerprint(self) -> str:
        """Stable content digest of this snapshot.

        The fast evaluation path (:mod:`repro.core.fast_eval`) freezes a
        snapshot into an :class:`~repro.core.fast_eval.EvaluationContext`
        and keys the cached context on this digest: any change to a
        node's believed load, NIC utilisation, or CPU count yields a new
        fingerprint, which invalidates every context built from the old
        one.  The digest is order-independent over nodes.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(repr(float(self.timestamp)).encode())
        for nid in sorted(self.states):
            state = self.states[nid]
            h.update(f"|{nid}:{state.background_load!r}:{state.nic_load!r}".encode())
        for nid in sorted(self.ncpus):
            h.update(f"|{nid}={self.ncpus[nid]}".encode())
        return h.hexdigest()

    def freeze(self) -> "SystemSnapshot":
        """A defensive copy with plain-dict state, safe to cache against.

        Snapshots are nominally immutable, but their ``states``/``ncpus``
        mappings may alias caller-owned dicts; ``freeze()`` severs that
        aliasing so a cached evaluation context cannot be invalidated
        silently (i.e. without the fingerprint changing).
        """
        return SystemSnapshot(
            timestamp=self.timestamp,
            states={nid: self.states[nid] for nid in self.states},
            ncpus=dict(self.ncpus),
        )

    # -- pickling -------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle as plain dicts, however exotic the source mappings.

        Snapshots cross process boundaries when parallel search workers
        rebuild their own evaluation contexts; shipping caller-owned
        mapping views (or anything non-picklable they alias) must never
        be what decides whether a snapshot can travel.
        """
        return {
            "timestamp": self.timestamp,
            "states": {nid: self.states[nid] for nid in self.states},
            "ncpus": dict(self.ncpus),
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def with_load(self, node_id: str, background_load: float, nic_load: float | None = None) -> "SystemSnapshot":
        """A copy with one node's state replaced (what-if analysis)."""
        states = dict(self.states)
        old = states.get(node_id, NodeState())
        states[node_id] = NodeState(
            background_load, old.nic_load if nic_load is None else nic_load
        )
        return SystemSnapshot(timestamp=self.timestamp, states=states, ncpus=self.ncpus)
