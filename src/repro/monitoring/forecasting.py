"""Next-period forecasters for resource time series.

The Centurion prototype uses NWS, whose distinguishing feature is
next-period *forecasting* from the measurement history with the best of
a family of simple predictors; the Orange Grove prototype simply takes
the latest measurement as valid for the next period.  Both behaviours
are available here, plus the usual NWS family members, so the
forecasting ablation (bench_ablation_forecasting) can quantify what the
choice is worth.
"""

from __future__ import annotations

import math
import statistics
from abc import ABC, abstractmethod
from collections import deque

__all__ = [
    "Forecaster",
    "LastValue",
    "SlidingMean",
    "SlidingMedian",
    "Ewma",
    "AR1",
    "AdaptiveForecaster",
    "make_forecaster",
]


class Forecaster(ABC):
    """Streaming one-step-ahead forecaster."""

    def __init__(self) -> None:
        self._n = 0

    def update(self, value: float) -> None:
        """Feed one new measurement."""
        if not math.isfinite(value):
            raise ValueError(f"measurement must be finite, got {value!r}")
        self._observe(float(value))
        self._n += 1

    @property
    def observations(self) -> int:
        return self._n

    @abstractmethod
    def _observe(self, value: float) -> None: ...

    @abstractmethod
    def forecast(self) -> float:
        """Predicted next value.  Raises if no measurement seen yet."""

    def _require_data(self) -> None:
        if self._n == 0:
            raise RuntimeError(f"{type(self).__name__} has no measurements yet")


class LastValue(Forecaster):
    """The Orange Grove prototype: latest measurement is the forecast."""

    def __init__(self) -> None:
        super().__init__()
        self._last = 0.0

    def _observe(self, value: float) -> None:
        self._last = value

    def forecast(self) -> float:
        self._require_data()
        return self._last


class SlidingMean(Forecaster):
    """Mean of the last *window* measurements."""

    def __init__(self, window: int = 10) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self._buf: deque[float] = deque(maxlen=window)

    def _observe(self, value: float) -> None:
        self._buf.append(value)

    def forecast(self) -> float:
        self._require_data()
        return math.fsum(self._buf) / len(self._buf)


class SlidingMedian(Forecaster):
    """Median of the last *window* measurements (robust to spikes)."""

    def __init__(self, window: int = 10) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self._buf: deque[float] = deque(maxlen=window)

    def _observe(self, value: float) -> None:
        self._buf.append(value)

    def forecast(self) -> float:
        self._require_data()
        return float(statistics.median(self._buf))


class Ewma(Forecaster):
    """Exponentially weighted moving average."""

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._value = 0.0

    def _observe(self, value: float) -> None:
        if self._n == 0:
            self._value = value
        else:
            self._value = self._alpha * value + (1.0 - self._alpha) * self._value

    def forecast(self) -> float:
        self._require_data()
        return self._value


class AR1(Forecaster):
    """First-order autoregressive forecast fitted over a sliding window."""

    def __init__(self, window: int = 20) -> None:
        super().__init__()
        if window < 3:
            raise ValueError("window must be >= 3")
        self._buf: deque[float] = deque(maxlen=window)

    def _observe(self, value: float) -> None:
        self._buf.append(value)

    def forecast(self) -> float:
        self._require_data()
        data = list(self._buf)
        flat = all(abs(v - data[0]) <= 1e-8 + 1e-5 * abs(data[0]) for v in data)
        if len(data) < 3 or flat:
            return data[-1]
        x, y = data[:-1], data[1:]
        n = len(x)
        mx = math.fsum(x) / n
        my = math.fsum(y) / n
        var = math.fsum((v - mx) ** 2 for v in x) / n
        if var == 0.0:
            return data[-1]
        cov = math.fsum((a - mx) * (b - my) for a, b in zip(x, y)) / n
        phi = min(1.0, max(-1.0, cov / var))
        mean = math.fsum(data) / len(data)
        return mean + phi * (data[-1] - mean)


class AdaptiveForecaster(Forecaster):
    """NWS-style ensemble: at each step, trust the member with the
    lowest mean absolute one-step error so far."""

    def __init__(self, members: list[Forecaster] | None = None) -> None:
        super().__init__()
        if members is None:
            members = [LastValue(), SlidingMean(10), SlidingMedian(10), Ewma(0.3), AR1(20)]
        if not members:
            raise ValueError("need at least one member forecaster")
        self._members = members
        self._errors = [0.0] * len(self._members)

    def _observe(self, value: float) -> None:
        for i, member in enumerate(self._members):
            if member.observations > 0:
                self._errors[i] += abs(member.forecast() - value)
            member.update(value)

    def forecast(self) -> float:
        self._require_data()
        best = min(range(len(self._members)), key=lambda i: (self._errors[i], i))
        return self._members[best].forecast()

    @property
    def best_member(self) -> Forecaster:
        self._require_data()
        best = min(range(len(self._members)), key=lambda i: (self._errors[i], i))
        return self._members[best]


def make_forecaster(kind: str) -> Forecaster:
    """Factory by name: last-value | mean | median | ewma | ar1 | adaptive."""
    factories = {
        "last-value": LastValue,
        "mean": SlidingMean,
        "median": SlidingMedian,
        "ewma": Ewma,
        "ar1": AR1,
        "adaptive": AdaptiveForecaster,
    }
    try:
        return factories[kind]()
    except KeyError:
        raise ValueError(f"unknown forecaster kind {kind!r}; valid: {sorted(factories)}") from None
