"""The project rule pack: RPR100-RPR106.

Each rule enforces an invariant the reproduction's headline claims rest
on (see docs/ANALYSIS.md for the catalog with full rationale):

* RPR100 — unused imports (the lint.py F401 detector, folded in and
  fixed: string constants only count as uses inside ``__all__`` or when
  they are parseable string annotations).
* RPR101 — determinism: scheduler/search/core code must draw randomness
  from the seeded ``spawn_rng`` substreams and must not consult wall
  clocks or entropy sources inside the search; ``min``/``max`` over a
  set breaks tie-making reproducibility.
* RPR102 — picklability: nothing unpicklable (lambdas, nested
  functions, ``self``-bound methods) may cross the process boundary via
  ``ProcessPoolExecutor.submit`` or ``SearchSpec`` fields.
* RPR103 — async-safety: ``async def`` bodies in the daemon must never
  call blocking primitives (``time.sleep``, ``subprocess.run``, ...).
* RPR104 — float equality: evaluation/energy quantities compare with
  tolerance helpers, never bare ``==`` (exact sentinel comparisons
  against the literals 0.0 / 1.0 / -1.0 are allowed).
* RPR105 — API hygiene: public functions in ``repro.core`` and
  ``repro.schedulers`` carry docstrings and no mutable default args.
* RPR106 — telemetry hygiene: metric names declared through
  ``repro.telemetry`` registries are snake_case with the conventional
  unit/kind suffixes (counters ``*_total``, histograms ``*_seconds`` /
  ``*_bytes``), and label values never interpolate runtime data
  (f-strings), which would mint unbounded label cardinality.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import Checker, CheckerContext, register

__all__ = [
    "UnusedImportChecker",
    "DeterminismChecker",
    "PicklabilityChecker",
    "AsyncSafetyChecker",
    "FloatEqualityChecker",
    "ApiHygieneChecker",
    "TelemetryHygieneChecker",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def enclosing_function(parents: list[ast.AST]) -> ast.AST | None:
    """The innermost enclosing function node, if any."""
    for node in reversed(parents):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _has_docstring(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return bool(
        node.body
        and isinstance(node.body[0], ast.Expr)
        and isinstance(node.body[0].value, ast.Constant)
        and isinstance(node.body[0].value.value, str)
    )


@register
class UnusedImportChecker(Checker):
    """RPR100: imports that no code in the module actually uses."""

    rule = "RPR100"
    name = "unused-import"
    rationale = "dead imports hide real dependencies and slow cold start"
    scopes = None  # applies everywhere, including tests/tools/benchmarks

    def start_module(self, ctx: CheckerContext) -> None:
        #: bound name -> (import node, original dotted name)
        self._imports: dict[str, tuple[ast.AST, str]] = {}
        self._used: set[str] = set()

    def applies_to(self, ctx: CheckerContext) -> bool:
        # __init__.py re-exports names by design.
        return not ctx.path.endswith("__init__.py")

    def _harvest_annotation(self, node: ast.AST) -> None:
        """Names inside a (possibly string) annotation count as uses."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return
            for sub in ast.walk(parsed):
                if isinstance(sub, ast.Name):
                    self._used.add(sub.id)
        else:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    self._used.add(sub.id)
                elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    # Nested string annotation, e.g. list["Node"].
                    self._harvest_annotation(sub)

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                self._imports.setdefault(bound, (node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__" or any(a.name == "*" for a in node.names):
                return
            for alias in node.names:
                bound = alias.asname or alias.name
                self._imports.setdefault(bound, (node, alias.name))
        elif isinstance(node, ast.Name):
            self._used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # The old tools/lint.py counted EVERY string constant as a
            # use, so any docstring mentioning an import name masked a
            # real F401.  Strings only count inside ``__all__``.
            for parent in reversed(parents):
                if isinstance(parent, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        parent.targets
                        if isinstance(parent, ast.Assign)
                        else [parent.target]
                    )
                    if any(
                        isinstance(t, ast.Name) and t.id == "__all__" for t in targets
                    ):
                        self._used.add(node.value)
                    break
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, [args.vararg, args.kwarg]),
            ]:
                if arg.annotation is not None:
                    self._harvest_annotation(arg.annotation)
            if node.returns is not None:
                self._harvest_annotation(node.returns)
        elif isinstance(node, ast.AnnAssign):
            self._harvest_annotation(node.annotation)

    def finish_module(self, ctx: CheckerContext) -> None:
        for bound, (node, original) in sorted(self._imports.items()):
            if bound not in self._used:
                ctx.report(node, self.rule, f"unused import {original!r}")


@register
class DeterminismChecker(Checker):
    """RPR101: unseeded entropy or unordered tie-breaking in the search."""

    rule = "RPR101"
    name = "determinism"
    rationale = "S_M must evaluate identically every run (paper eqs. 5-8)"
    scopes = ("repro.schedulers", "repro.search", "repro.core", "repro.remap", "repro.fleet")

    #: Calls that consult wall clocks or OS entropy.
    BANNED_CALLS = {
        "time.time": "use time.perf_counter/monotonic for timing, never for decisions",
        "os.urandom": "use the seeded spawn_rng substream instead",
        "uuid.uuid4": "use the seeded spawn_rng substream instead",
        "np.random.default_rng": "use repro._util.spawn_rng(seed, *key) instead",
        "numpy.random.default_rng": "use repro._util.spawn_rng(seed, *key) instead",
        "np.random.seed": "global numpy seeding is forbidden; thread a seeded Rng",
        "numpy.random.seed": "global numpy seeding is forbidden; thread a seeded Rng",
    }

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if not isinstance(node, ast.Call):
            return
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        root = dotted.split(".", 1)[0]
        hint = self.BANNED_CALLS.get(dotted)
        if hint is not None:
            ctx.report(node, self.rule, f"call to {dotted}() is nondeterministic; {hint}")
        elif root in ("random", "secrets"):
            ctx.report(
                node,
                self.rule,
                f"call to {dotted}() bypasses the seeded RNG; "
                "use the threaded repro._rng.Rng from spawn_rng",
            )
        elif dotted in ("min", "max") and node.args:
            first = node.args[0]
            is_set = isinstance(first, (ast.Set, ast.SetComp)) or (
                isinstance(first, ast.Call)
                and isinstance(first.func, ast.Name)
                and first.func.id in ("set", "frozenset")
            )
            if is_set:
                ctx.report(
                    node,
                    self.rule,
                    f"{dotted}() over an unordered set makes tie-breaking depend on "
                    "iteration order; reduce over sorted(...) instead",
                )


@register
class PicklabilityChecker(Checker):
    """RPR102: unpicklable callables shipped to worker processes."""

    rule = "RPR102"
    name = "picklability"
    rationale = "SearchSpec and pool tasks must survive pickling to workers"
    scopes = ("repro.schedulers", "repro.search")

    def start_module(self, ctx: CheckerContext) -> None:
        self._nested_cache: dict[int, set[str]] = {}

    def _nested_function_names(self, func: ast.AST) -> set[str]:
        """Names of functions defined inside *func* (any depth)."""
        cached = self._nested_cache.get(id(func))
        if cached is not None:
            return cached
        names = {
            sub.name
            for sub in ast.walk(func)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not func
        }
        self._nested_cache[id(func)] = names
        return names

    def _flag_argument(
        self,
        arg: ast.AST,
        parents: list[ast.AST],
        ctx: CheckerContext,
        target: str,
        *,
        flag_self_attr: bool = True,
    ) -> None:
        if isinstance(arg, ast.Lambda):
            ctx.report(
                arg,
                self.rule,
                f"lambda passed to {target} cannot be pickled into a worker "
                "process; use a module-level function",
            )
            return
        enclosing = enclosing_function(parents)
        if (
            isinstance(arg, ast.Name)
            and enclosing is not None
            and arg.id in self._nested_function_names(enclosing)
        ):
            ctx.report(
                arg,
                self.rule,
                f"locally-defined function {arg.id!r} passed to {target} cannot "
                "be pickled into a worker process; move it to module level",
            )
            return
        if (
            flag_self_attr
            and isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
        ):
            ctx.report(
                arg,
                self.rule,
                f"bound method self.{arg.attr} passed to {target} drags the whole "
                "instance through pickle; pass a module-level function and data",
            )

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        # executor.submit(fn, ...) / executor.map(fn, ...): the first
        # positional argument crosses the process boundary.
        if isinstance(func, ast.Attribute) and func.attr in ("submit", "map") and node.args:
            self._flag_argument(node.args[0], parents, ctx, f"executor.{func.attr}()")
        # SearchSpec(...) / SearchSpec.from_evaluator(...): every field
        # is pickled; the constraint keyword is the classic offender.
        # self.<attr> is NOT flagged here — spec fields routinely carry
        # plain data attributes, which pickle fine; only statically
        # certain offenders (lambdas, nested functions) are reported.
        dotted = dotted_name(func) or ""
        if dotted == "SearchSpec" or dotted.endswith("SearchSpec.from_evaluator"):
            for arg in node.args:
                self._flag_argument(arg, parents, ctx, dotted, flag_self_attr=False)
            for kw in node.keywords:
                if kw.arg is not None:
                    self._flag_argument(
                        kw.value, parents, ctx, f"{dotted}({kw.arg}=...)", flag_self_attr=False
                    )


@register
class AsyncSafetyChecker(Checker):
    """RPR103: blocking calls inside ``async def`` bodies."""

    rule = "RPR103"
    name = "async-safety"
    rationale = "one blocked event loop stalls every daemon client"
    scopes = ("repro.server", "repro.fleet")

    BLOCKING_CALLS = {
        "time.sleep": "await asyncio.sleep(...) instead",
        "subprocess.run": "use asyncio.create_subprocess_exec or a worker thread",
        "subprocess.call": "use asyncio.create_subprocess_exec or a worker thread",
        "subprocess.check_call": "use asyncio.create_subprocess_exec or a worker thread",
        "subprocess.check_output": "use asyncio.create_subprocess_exec or a worker thread",
        "subprocess.Popen": "use asyncio.create_subprocess_exec or a worker thread",
        "os.system": "use asyncio.create_subprocess_exec or a worker thread",
        "socket.create_connection": "use asyncio.open_connection instead",
        "urllib.request.urlopen": "blocking network I/O; run it in an executor",
        "requests.get": "blocking network I/O; run it in an executor",
        "requests.post": "blocking network I/O; run it in an executor",
    }

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if not isinstance(node, ast.Call):
            return
        if not isinstance(enclosing_function(parents), ast.AsyncFunctionDef):
            return
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        hint = self.BLOCKING_CALLS.get(dotted)
        if hint is not None:
            ctx.report(
                node,
                self.rule,
                f"blocking call {dotted}() inside async def stalls the event loop; {hint}",
            )
        elif dotted == "open":
            ctx.report(
                node,
                self.rule,
                "blocking file I/O via open() inside async def; "
                "run it in an executor (loop.run_in_executor)",
            )


@register
class FloatEqualityChecker(Checker):
    """RPR104: bare ``==`` between float-valued evaluation quantities."""

    rule = "RPR104"
    name = "float-equality"
    rationale = "energy/latency arithmetic differs in the last ulp across paths"
    scopes = ("repro.core", "repro.schedulers", "repro.search")

    #: Exact comparisons against these literals are accepted sentinels
    #: (e.g. ``noise == 0.0`` meaning "feature disabled").
    SENTINELS = (0.0, 1.0, -1.0)

    #: Identifier endings that mark a float evaluation quantity.
    FLOATY_SUFFIXES = ("energy", "cost", "delta", "_time", "_s", "latency")
    FLOATY_NAMES = {
        "energy",
        "cost",
        "delta",
        "predicted",
        "predicted_time",
        "execution_time",
        "best_energy",
        "wall_time_s",
    }
    FLOATY_CALLS = {"predict", "evaluate", "energy", "cost"}

    def _is_sentinel(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value in self.SENTINELS
        )

    def _is_floaty(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        ident: str | None = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is not None:
            lowered = ident.lower()
            return lowered in self.FLOATY_NAMES or lowered.endswith(self.FLOATY_SUFFIXES)
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func) or ""
            return dotted.rsplit(".", 1)[-1] in self.FLOATY_CALLS
        if isinstance(node, ast.BinOp):
            return self._is_floaty(node.left) or self._is_floaty(node.right)
        return False

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if not isinstance(node, ast.Compare):
            return
        sides = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, sides, sides[1:], strict=False):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(self._is_sentinel(side) for side in pair):
                continue
            floaty = sum(1 for side in pair if self._is_floaty(side))
            nonsentinel_literal = any(
                isinstance(side, ast.Constant) and isinstance(side.value, float)
                for side in pair
            )
            if floaty >= 2 or (floaty == 1 and nonsentinel_literal):
                ctx.report(
                    node,
                    self.rule,
                    "bare == between float evaluation quantities; use "
                    "math.isclose / a tolerance helper (exact 0.0/1.0 "
                    "sentinel checks are exempt)",
                )


@register
class ApiHygieneChecker(Checker):
    """RPR105: public API functions need docstrings and safe defaults."""

    rule = "RPR105"
    name = "api-hygiene"
    rationale = "the core/scheduler surface is the paper-facing contract"
    scopes = ("repro.core", "repro.schedulers")

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        # Mutable default arguments trip every function, public or not.
        for default in [*node.args.defaults, *filter(None, node.args.kw_defaults)]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                ctx.report(
                    default,
                    self.rule,
                    f"mutable default argument in {node.name}(); default to None "
                    "and create the container inside the body",
                )
        if node.name.startswith("_"):
            return
        # Docstrings are required on the public module/class-level
        # surface only — nested helpers are implementation detail.
        parent = parents[-1] if parents else None
        if not isinstance(parent, (ast.Module, ast.ClassDef)):
            return
        if not _has_docstring(node):
            where = f"{parent.name}.{node.name}" if isinstance(parent, ast.ClassDef) else node.name
            ctx.report(node, self.rule, f"public function {where}() is missing a docstring")


@register
class TelemetryHygieneChecker(Checker):
    """RPR106: metric naming conventions and bounded label cardinality."""

    rule = "RPR106"
    name = "telemetry-hygiene"
    rationale = "inconsistent names and unbounded labels make metrics unusable"

    #: Metric declaration methods on a registry, keyed by required suffix
    #: rule.  Counters must count (``*_total``); histograms must name
    #: their unit; gauges are instantaneous so ``*_total`` is a lie.
    DECLARATIONS = ("counter", "gauge", "histogram")
    HISTOGRAM_SUFFIXES = ("_seconds", "_bytes")
    #: Methods that take ``**labels``; their keyword values must not be
    #: interpolated from runtime data.
    LABELED_UPDATES = ("inc", "dec", "set", "observe", "labels")

    _NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method in self.DECLARATIONS:
            self._check_declaration(node, method, ctx)
        if method in self.LABELED_UPDATES:
            self._check_label_values(node, method, ctx)

    def _metric_name(self, node: ast.Call) -> str | None:
        """The declared metric name, when statically known."""
        candidates = list(node.args[:1]) + [kw.value for kw in node.keywords if kw.arg == "name"]
        for arg in candidates:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        return None

    def _check_declaration(self, node: ast.Call, kind: str, ctx: CheckerContext) -> None:
        name = self._metric_name(node)
        if name is None:
            return
        if not self._NAME_RE.match(name):
            ctx.report(
                node,
                self.rule,
                f"metric name {name!r} is not snake_case ([a-z][a-z0-9_]*)",
            )
            return
        if kind == "counter" and not name.endswith("_total"):
            ctx.report(
                node,
                self.rule,
                f"counter {name!r} must end in '_total' (it only ever increases)",
            )
        elif kind == "histogram" and not name.endswith(self.HISTOGRAM_SUFFIXES):
            ctx.report(
                node,
                self.rule,
                f"histogram {name!r} must name its unit "
                f"(suffix one of {', '.join(self.HISTOGRAM_SUFFIXES)})",
            )
        elif kind == "gauge" and name.endswith("_total"):
            ctx.report(
                node,
                self.rule,
                f"gauge {name!r} must not end in '_total'; "
                "an instantaneous reading is not a running count",
            )

    def _check_label_values(self, node: ast.Call, method: str, ctx: CheckerContext) -> None:
        for kw in node.keywords:
            if kw.arg is None:
                continue
            value = kw.value
            dynamic = isinstance(value, ast.JoinedStr) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "format"
            )
            if dynamic:
                ctx.report(
                    value,
                    self.rule,
                    f"label {kw.arg}={{interpolated string}} passed to .{method}(); "
                    "interpolating runtime data into label values mints unbounded "
                    "cardinality — use a fixed label set (e.g. a route template)",
                )
