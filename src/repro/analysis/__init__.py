"""Static invariant checkers for the CBES reproduction.

The paper's claim that CS/NCS find near-optimal mappings rests on the
evaluation ``S_M = max_i(R_i + C_i)`` (eqs. 5-8) being computed
identically on every path — serial, incremental, pooled worker, or
daemon.  PRs 1-3 added exactly the machinery that can silently break
that (seeded RNG substreams, pickled ``SearchSpec`` closures, an asyncio
event loop), so this package enforces the invariants mechanically:

* one parse + one AST walk per file feeds every registered checker
  (:mod:`repro.analysis.engine`);
* the rule pack RPR100-RPR106 (:mod:`repro.analysis.checkers`);
* inline ``# repro: disable=RPR###`` suppressions and a committed
  baseline for grandfathered findings (:mod:`repro.analysis.baseline`);
* a CLI with text/JSON output and stable exit codes
  (``python -m repro.analysis``, :mod:`repro.analysis.cli`).

See docs/ANALYSIS.md for the rule catalog and workflow.
"""

from __future__ import annotations

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import (
    Checker,
    CheckerContext,
    analyze_paths,
    analyze_source,
    module_name_for,
    register,
    registered_checkers,
)
from repro.analysis.findings import AnalysisReport, Finding

__all__ = [
    "AnalysisReport",
    "Checker",
    "CheckerContext",
    "Finding",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "load_baseline",
    "module_name_for",
    "register",
    "registered_checkers",
    "write_baseline",
]
