"""Finding model shared by the analysis engine, CLI, and baseline store.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` deliberately excludes the line/column so a
baselined finding survives unrelated edits that shift code around; the
baseline counts fingerprints instead (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, repo-relative POSIX style when possible.
    path: str
    line: int
    col: int
    #: Rule identifier, e.g. ``"RPR101"``.
    rule: str
    message: str

    def fingerprint(self) -> str:
        """Location-insensitive identity used for baseline matching."""
        return f"{self.rule}:{self.path}:{self.message}"

    def format_text(self) -> str:
        """The one-line ``path:line:col: RULE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """Aggregate outcome of one analysis run."""

    #: Findings not covered by the baseline, sorted.
    findings: list[Finding] = field(default_factory=list)
    #: Findings matched (and swallowed) by baseline entries.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline fingerprints that matched nothing (candidates for removal).
    stale_baseline: list[str] = field(default_factory=list)
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any non-baselined finding remains."""
        return 1 if self.findings else 0

    def by_rule(self) -> dict[str, int]:
        """Finding counts keyed by rule id (for summaries)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation of the whole run."""
        return {
            "version": 1,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "checked_files": self.checked_files,
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
                "rules": self.by_rule(),
            },
        }
