"""Committed baseline of grandfathered findings.

The baseline lets the suite turn on strict in CI without first fixing
every historical finding: known violations are recorded (by
location-insensitive fingerprint, with a count) in a committed JSON file
and subtracted from each run.  New findings — anything beyond the
recorded count for a fingerprint — still fail the build, and entries
that no longer match anything are reported as stale so the file only
ever shrinks.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import AnalysisReport, Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_NOTE = (
    "Grandfathered repro.analysis findings. Entries map finding "
    "fingerprints (rule:path:message) to allowed counts. Remove entries "
    "as the underlying findings are fixed; never add entries for new "
    "code — fix the finding or suppress it inline with a justification."
)


def load_baseline(path: Path | None) -> Counter[str]:
    """Fingerprint -> allowed count, or empty when *path* is missing."""
    if path is None or not path.is_file():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", {})
    if not isinstance(entries, dict):
        raise ValueError(f"baseline {path}: 'findings' must be an object")
    counts: Counter[str] = Counter()
    for fingerprint, count in entries.items():
        if not isinstance(count, int) or count < 1:
            raise ValueError(f"baseline {path}: bad count for {fingerprint!r}")
        counts[fingerprint] = count
    return counts


def write_baseline(findings: list[Finding], path: Path) -> None:
    """Record *findings* as the new baseline at *path*."""
    counts: Counter[str] = Counter(f.fingerprint() for f in findings)
    payload = {
        "version": 1,
        "note": _NOTE,
        "findings": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")


def apply_baseline(
    findings: list[Finding], baseline: Counter[str], *, checked_files: int = 0
) -> AnalysisReport:
    """Split findings into new vs. baselined and spot stale entries."""
    remaining = Counter(baseline)
    report = AnalysisReport(checked_files=checked_files)
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = sorted(
        fingerprint for fingerprint, count in remaining.items() if count > 0
    )
    return report
