"""Command-line driver: ``python -m repro.analysis``.

Exit codes are stable and documented (CI and tools/lint.py rely on
them): 0 = clean (after baseline), 1 = at least one non-baselined
finding, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import analyze_paths, registered_checkers

__all__ = ["main", "run"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

DEFAULT_BASELINE = Path("tools") / "analysis_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST invariant checkers for the CBES reproduction: determinism "
            "(RPR101), picklability (RPR102), async-safety (RPR103), float "
            "equality (RPR104), API hygiene (RPR105), unused imports (RPR100)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline JSON path (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline file to cover all current findings, then exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule, cls in registered_checkers().items():
        scope = ", ".join(cls.scopes) if cls.scopes else "all files"
        lines.append(f"{rule}  {cls.name:<16} [{scope}]  {cls.rationale}")
    return "\n".join(lines)


def run(argv: list[str] | None = None, *, stdout=None) -> int:
    """Parse *argv*, run the suite, print a report, return the exit code."""
    out = stdout if stdout is not None else sys.stdout
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pass through.
        return int(exc.code or 0)

    if args.list_rules:
        print(_list_rules(), file=out)
        return EXIT_CLEAN

    rules: set[str] | None = None
    if args.rules:
        rules = {part.strip().upper() for part in args.rules.split(",") if part.strip()}
        unknown = rules - set(registered_checkers())
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return EXIT_ERROR

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return EXIT_ERROR

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.is_file():
        baseline_path = DEFAULT_BASELINE

    try:
        findings, checked = analyze_paths(paths, rules=rules)
    except (OSError, RecursionError) as exc:
        print(f"analysis failed: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.fix_baseline:
        target = baseline_path or DEFAULT_BASELINE
        target.parent.mkdir(parents=True, exist_ok=True)
        write_baseline(findings, target)
        print(f"baseline rewritten: {target} ({len(findings)} finding(s))", file=out)
        return EXIT_CLEAN

    baseline = load_baseline(None if args.no_baseline else baseline_path)
    report = apply_baseline(findings, baseline, checked_files=checked)

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        for finding in report.findings:
            print(finding.format_text(), file=out)
        for fingerprint in report.stale_baseline:
            print(f"stale baseline entry (safe to remove): {fingerprint}", file=out)
        print(
            f"repro.analysis: {checked} file(s), {len(report.findings)} finding(s), "
            f"{len(report.baselined)} baselined",
            file=out,
        )
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro.analysis`` and tools/lint.py."""
    try:
        return run(argv)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_ERROR
