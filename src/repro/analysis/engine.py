"""Single-parse, multi-checker analysis engine.

Each file is parsed exactly once and walked exactly once; every
registered checker sees every node of that one walk, together with the
ancestor stack, so N rules cost one traversal instead of N.  Inline
``# repro: disable=RPR101[,RPR104]`` comments suppress findings reported
on that physical line (``disable=all`` silences every rule).

Checkers subclass :class:`Checker`, declare a ``rule`` id and optional
``scopes`` (dotted module prefixes they apply to), and are registered
with the :func:`register` decorator.  The registry is the single source
of truth for the CLI, :mod:`tools.lint`, and the docs rule catalog.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "Checker",
    "CheckerContext",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "module_name_for",
    "register",
    "registered_checkers",
]

#: Rule id used for files that fail to parse at all.
SYNTAX_ERROR_RULE = "RPR000"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class CheckerContext:
    """Per-file state shared by every checker during one walk."""

    #: Display path for findings (repo-relative POSIX when possible).
    path: str
    #: Dotted module name (``repro.schedulers.base``) or None for files
    #: outside the ``src`` tree (tests, tools, benchmarks).
    module: str | None
    source: str
    tree: ast.Module
    findings: list[Finding] = field(default_factory=list)

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        """Record one finding anchored at *node*."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )


class Checker:
    """Base class for one analysis rule.

    Subclasses set ``rule``/``name``/``rationale`` and implement
    :meth:`visit`; :meth:`start_module` and :meth:`finish_module` bracket
    the walk for rules that need whole-file state (e.g. import usage).
    """

    #: Rule identifier, e.g. ``"RPR101"``.
    rule: str = "RPR999"
    #: Short kebab-case name used in listings.
    name: str = "unnamed"
    #: One-line rationale shown by ``--list-rules``.
    rationale: str = ""
    #: Dotted module prefixes this rule applies to, or None for all files.
    scopes: tuple[str, ...] | None = None

    def applies_to(self, ctx: CheckerContext) -> bool:
        """Whether this rule is active for the file being walked."""
        if self.scopes is None:
            return True
        if ctx.module is None:
            return False
        return any(
            ctx.module == scope or ctx.module.startswith(scope + ".") for scope in self.scopes
        )

    def start_module(self, ctx: CheckerContext) -> None:
        """Hook called before the walk of one file begins."""

    def visit(self, node: ast.AST, parents: list[ast.AST], ctx: CheckerContext) -> None:
        """Hook called for every node of the single shared walk."""

    def finish_module(self, ctx: CheckerContext) -> None:
        """Hook called after the walk of one file completes."""


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule id {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_checkers() -> dict[str, type[Checker]]:
    """The registry, keyed by rule id, in sorted order."""
    # Import for side effect: the rule pack registers itself on import.
    from repro.analysis import checkers as _checkers  # repro: disable=RPR100

    return dict(sorted(_REGISTRY.items()))


def suppressed_rules(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled by an inline comment there."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            out[lineno] = rules
    return out


def _walk(
    node: ast.AST,
    parents: list[ast.AST],
    active: list[Checker],
    ctx: CheckerContext,
) -> None:
    for checker in active:
        checker.visit(node, parents, ctx)
    parents.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, parents, active, ctx)
    parents.pop()


def analyze_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: set[str] | None = None,
) -> list[Finding]:
    """Run every registered (or *rules*-selected) checker over *source*.

    Returns the sorted, suppression-filtered findings for one file.  A
    syntax error yields a single ``RPR000`` finding instead of raising.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=SYNTAX_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
            )
        ]

    ctx = CheckerContext(path=path, module=module, source=source, tree=tree)
    instances = [
        cls()
        for rule, cls in registered_checkers().items()
        if rules is None or rule in rules
    ]
    active = [checker for checker in instances if checker.applies_to(ctx)]
    for checker in active:
        checker.start_module(ctx)
    _walk(tree, [], active, ctx)
    for checker in active:
        checker.finish_module(ctx)

    suppressions = suppressed_rules(source)
    kept = []
    for finding in ctx.findings:
        disabled = suppressions.get(finding.line, set())
        if finding.rule in disabled or "all" in disabled:
            continue
        kept.append(finding)
    return sorted(kept)


def module_name_for(path: Path) -> str | None:
    """Dotted module name for a file under a ``src`` directory, else None."""
    parts = path.resolve().parts
    try:
        idx = len(parts) - 1 - parts[::-1].index("src")
    except ValueError:
        return None
    mod_parts = list(parts[idx + 1 :])
    if not mod_parts or not mod_parts[-1].endswith(".py"):
        return None
    mod_parts[-1] = mod_parts[-1][: -len(".py")]
    if mod_parts[-1] == "__init__":
        mod_parts.pop()
    return ".".join(mod_parts) if mod_parts else None


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``*.py`` file under *paths* (files pass through), sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" not in child.parts:
                    seen.add(child.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
    return sorted(seen)


def analyze_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    rules: set[str] | None = None,
) -> tuple[list[Finding], int]:
    """Analyze every Python file under *paths*.

    Returns ``(findings, checked_file_count)``.  Display paths are made
    relative to *root* (default: the current directory) when possible.
    """
    root = (root or Path.cwd()).resolve()
    findings: list[Finding] = []
    files = iter_python_files(paths)
    for file in files:
        try:
            display = file.relative_to(root).as_posix()
        except ValueError:
            display = file.as_posix()
        source = file.read_text(encoding="utf-8")
        findings.extend(
            analyze_source(source, path=display, module=module_name_for(file), rules=rules)
        )
    return sorted(findings), len(files)
