"""Application profiling: traces, profiles, trace analysis, speed ratios."""

from repro.profiling.analyzer import TraceAnalyzer
from repro.profiling.database import ProfileDatabase
from repro.profiling.export import (
    gantt,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
    utilization,
)
from repro.profiling.events import MarkerRecord, MessageRecord, TimeCategory, TimeRecord
from repro.profiling.profile import (
    ApplicationProfile,
    MessageGroup,
    ProcessProfile,
    theta,
)
from repro.profiling.speeds import measure_speed_ratios
from repro.profiling.trace import ExecutionTrace

__all__ = [
    "ApplicationProfile",
    "ExecutionTrace",
    "MarkerRecord",
    "MessageGroup",
    "MessageRecord",
    "ProcessProfile",
    "ProfileDatabase",
    "TimeCategory",
    "TimeRecord",
    "TraceAnalyzer",
    "gantt",
    "load_trace",
    "measure_speed_ratios",
    "save_trace",
    "theta",
    "trace_from_dict",
    "trace_to_dict",
    "utilization",
]
