"""Per-architecture application speed measurement.

The paper's footnote 1: *"The application profile also includes
experimentally measured speed ratios for all cluster node
architectures."*  On the real clusters a short compute kernel of the
application is timed once per architecture.  Here the measurement runs
the same way against the simulated hardware: each architecture executes
a fixed amount of the application's compute work and the observed rate
is recorded, including measurement noise, so the stored ratios are
*measurements*, not copies of the ground truth.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro._util import check_positive, spawn_rng
from repro.cluster.node import Architecture

__all__ = ["measure_speed_ratios"]

#: Application architecture-affinity signature: arch name -> multiplier.
AffinityFn = Callable[[str], float]


def measure_speed_ratios(
    architectures: Iterable[Architecture],
    *,
    affinity: AffinityFn | None = None,
    noise: float = 0.005,
    repetitions: int = 3,
    seed: int = 0,
    app_name: str = "",
) -> dict[str, float]:
    """Measure an application's effective speed on each architecture.

    ``affinity`` captures application-specific deviations from the
    architecture's scalar base speed (e.g. a cache-friendly code running
    relatively better on the large-cache Alpha); workload models expose
    it as ``arch_affinity``.  The returned dict maps architecture name
    to measured speed in the same work-units/second scale used by
    :class:`~repro.cluster.node.Architecture.base_speed`.
    """
    if noise < 0:
        raise ValueError("noise must be >= 0")
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    ratios: dict[str, float] = {}
    for arch in architectures:
        true_speed = arch.base_speed * (affinity(arch.name) if affinity else 1.0)
        check_positive(true_speed, f"speed on {arch.name}")
        if noise == 0.0:
            ratios[arch.name] = true_speed
            continue
        rng = spawn_rng(seed, "speed-ratio", app_name, arch.name)
        # Time a fixed kernel `repetitions` times; speed = work / mean time.
        times = [(1.0 / true_speed) * x for x in rng.normal(1.0, noise, size=repetitions)]
        ratios[arch.name] = len(times) / sum(abs(t) for t in times)
    return ratios
