"""Execution trace record types.

The LAM/MPI daemons of the paper record detailed execution traces that
the (modified) XMPI tool analyzes into profiles.  Our simulated runtime
(:mod:`repro.simulate`) emits the same information as a stream of typed
records: time spent in own code, time spent inside the message-passing
library, time spent blocked, and every message with its peer and size.
Records carry the segment index so that marker-delimited program phases
can be profiled separately (the paper's per-segment profiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["TimeCategory", "TimeRecord", "MessageRecord", "MarkerRecord"]


class TimeCategory(str, Enum):
    """Where a slice of a process's wall-clock time went.

    Mirrors the paper's accounting: ``X`` own code, ``O`` MPI library
    overhead, ``B`` blocked waiting on communication.
    """

    OWN_CODE = "X"
    MPI_OVERHEAD = "O"
    BLOCKED = "B"


@dataclass(frozen=True)
class TimeRecord:
    """A contiguous slice of one process's time in one category."""

    rank: int
    category: TimeCategory
    start: float
    duration: float
    segment: int = 0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.segment < 0:
            raise ValueError("segment must be >= 0")


@dataclass(frozen=True)
class MessageRecord:
    """One point-to-point message observed on the wire.

    Recorded once, attributed to the *sender*; the analyzer derives the
    receive side from it.  Collectives appear as their constituent
    point-to-point messages, which is what eq. (6) needs.
    """

    src: int
    dst: int
    size_bytes: float
    send_time: float
    recv_time: float
    segment: int = 0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("ranks must be >= 0")
        if self.src == self.dst:
            raise ValueError("self messages are not traced")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if self.recv_time < self.send_time:
            raise ValueError("recv_time must be >= send_time")


@dataclass(frozen=True)
class MarkerRecord:
    """A LAM/MPI-style segment marker (begin of segment *segment*)."""

    rank: int
    time: float
    segment: int
    label: str = ""
