"""Trace export and visualization (the XMPI role, text edition).

The paper's profiling subsystem is built on XMPI, a trace *visualization*
tool.  This module provides the equivalent plumbing for our traces:

* JSON export/import of :class:`~repro.profiling.trace.ExecutionTrace`
  (so traces can be stored next to profiles and re-analyzed later);
* a text Gantt chart of per-rank activity (X/O/B over time), the
  at-a-glance view XMPI gives of an execution;
* per-rank utilisation summaries.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.profiling.events import TimeCategory
from repro.profiling.trace import ExecutionTrace

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace", "gantt", "utilization"]

_CATEGORY_CHAR = {
    TimeCategory.OWN_CODE: "#",
    TimeCategory.MPI_OVERHEAD: "o",
    TimeCategory.BLOCKED: ".",
}


def trace_to_dict(trace: ExecutionTrace) -> dict:
    """Plain-JSON representation of a trace."""
    return {
        "app_name": trace.app_name,
        "nprocs": trace.nprocs,
        "mapping": {str(r): n for r, n in trace.mapping.items()},
        "total_time": trace.total_time,
        "time_records": [
            [r.rank, r.category.value, r.start, r.duration, r.segment]
            for r in trace.time_records
        ],
        "messages": [
            [m.src, m.dst, m.size_bytes, m.send_time, m.recv_time, m.segment]
            for m in trace.messages
        ],
        "markers": [[m.rank, m.time, m.segment, m.label] for m in trace.markers],
    }


def trace_from_dict(data: dict) -> ExecutionTrace:
    """Rebuild a trace from its JSON representation."""
    trace = ExecutionTrace(
        str(data["app_name"]),
        int(data["nprocs"]),
        {int(r): str(n) for r, n in data["mapping"].items()},
    )
    for rank, cat, start, duration, segment in data["time_records"]:
        trace.record_time(int(rank), TimeCategory(cat), float(start), float(duration), int(segment))
    for src, dst, size, send_t, recv_t, segment in data["messages"]:
        trace.record_message(int(src), int(dst), float(size), float(send_t), float(recv_t), int(segment))
    for rank, time, segment, label in data.get("markers", []):
        trace.record_marker(int(rank), float(time), int(segment), str(label))
    if data.get("total_time") is not None:
        trace.finish(float(data["total_time"]))
    return trace


def save_trace(trace: ExecutionTrace, path: str | Path) -> None:
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> ExecutionTrace:
    return trace_from_dict(json.loads(Path(path).read_text()))


def gantt(trace: ExecutionTrace, *, width: int = 80) -> str:
    """Text Gantt chart: one row per rank, time left to right.

    ``#`` own code, ``o`` MPI overhead, ``.`` blocked, space = idle /
    unaccounted.  The later category drawn wins on cell collisions,
    which for our traces only affects sub-cell slivers.
    """
    if trace.total_time is None or trace.total_time <= 0:
        raise ValueError("trace must be sealed with a positive total time")
    if width < 10:
        raise ValueError("width must be >= 10")
    scale = width / trace.total_time
    rows = [[" "] * width for _ in range(trace.nprocs)]
    for rec in trace.time_records:
        lo = int(rec.start * scale)
        hi = max(int((rec.start + rec.duration) * scale), lo + 1)
        char = _CATEGORY_CHAR[rec.category]
        for cell in range(lo, min(hi, width)):
            rows[rec.rank][cell] = char
    header = (
        f"{trace.app_name}: {trace.total_time:.3f} s "
        f"(# own code, o mpi overhead, . blocked)"
    )
    lines = [header]
    for rank in range(trace.nprocs):
        lines.append(f"r{rank:<3d}|{''.join(rows[rank])}|")
    return "\n".join(lines)


def utilization(trace: ExecutionTrace) -> dict[int, dict[str, float]]:
    """Per-rank share of wall time in each category (plus idle)."""
    if trace.total_time is None or trace.total_time <= 0:
        raise ValueError("trace must be sealed with a positive total time")
    out: dict[int, dict[str, float]] = {}
    for rank in range(trace.nprocs):
        shares = {
            cat.value: trace.time_in(rank, cat) / trace.total_time
            for cat in TimeCategory
        }
        shares["idle"] = max(0.0, 1.0 - sum(shares.values()))
        out[rank] = shares
    return out
