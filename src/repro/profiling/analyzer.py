"""Trace analysis: turn an execution trace into an application profile.

This plays the role of the paper's modified XMPI profiling module: it
walks the trace database built from one (profiling) run, accumulates the
``X``/``O``/``B`` times, collapses the observed messages into same-size
message groups per peer, and computes each process's ``lambda_i``
correction factor (eq. 7) as the ratio of the *recorded* blocked time to
the *theoretical* communication time of the profiling mapping itself.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.cluster.latency import LatencyModel
from repro.profiling.events import TimeCategory
from repro.profiling.profile import (
    ApplicationProfile,
    MessageGroup,
    ProcessProfile,
    theta,
)
from repro.profiling.trace import ExecutionTrace

__all__ = ["TraceAnalyzer"]


class TraceAnalyzer:
    """Builds :class:`ApplicationProfile` objects from execution traces.

    Parameters
    ----------
    latency_model:
        The cluster latency model in effect during the profiling run;
        needed to evaluate ``Theta_i^profile`` for eq. (7).  Profiling
        is assumed to happen on an unloaded system (as the calibration
        phase requires), so no-load latencies are used.
    """

    def __init__(self, latency_model: LatencyModel):
        self._latency = latency_model

    def analyze(
        self,
        trace: ExecutionTrace,
        *,
        profile_speeds: Mapping[int, float],
        arch_speed_ratios: Mapping[str, float] | None = None,
        per_segment: bool = False,
    ) -> ApplicationProfile:
        """Analyze *trace* into a profile.

        Parameters
        ----------
        trace:
            A sealed trace (``finish()`` must have been called).
        profile_speeds:
            Effective node speed each rank ran at during profiling
            (``Speed_profile_j`` in eq. 5).
        arch_speed_ratios:
            Measured per-architecture application speeds (footnote 1).
        per_segment:
            Also produce per-segment sub-profiles for marker-delimited
            program phases.
        """
        if trace.total_time is None:
            raise ValueError("trace must be sealed with finish() before analysis")
        profile = self._analyze_segment(trace, None, profile_speeds, arch_speed_ratios)
        if per_segment and len(trace.segments) > 1:
            for seg in trace.segments:
                profile.segments[seg] = self._analyze_segment(
                    trace, seg, profile_speeds, arch_speed_ratios
                )
        return profile

    # -- internals ------------------------------------------------------
    def _analyze_segment(
        self,
        trace: ExecutionTrace,
        segment: int | None,
        profile_speeds: Mapping[int, float],
        arch_speed_ratios: Mapping[str, float] | None,
    ) -> ApplicationProfile:
        # Single pass over the trace: O(records), not O(ranks x records).
        times = [[0.0, 0.0, 0.0] for _ in range(trace.nprocs)]
        index = {TimeCategory.OWN_CODE: 0, TimeCategory.MPI_OVERHEAD: 1, TimeCategory.BLOCKED: 2}
        for rec in trace.time_records:
            if segment is None or rec.segment == segment:
                times[rec.rank][index[rec.category]] += rec.duration
        send_counts: list[dict[tuple[int, float], int]] = [{} for _ in range(trace.nprocs)]
        recv_counts: list[dict[tuple[int, float], int]] = [{} for _ in range(trace.nprocs)]
        for msg in trace.messages:
            if segment is None or msg.segment == segment:
                key_s = (msg.dst, msg.size_bytes)
                send_counts[msg.src][key_s] = send_counts[msg.src].get(key_s, 0) + 1
                key_r = (msg.src, msg.size_bytes)
                recv_counts[msg.dst][key_r] = recv_counts[msg.dst].get(key_r, 0) + 1

        processes = []
        for rank in range(trace.nprocs):
            own, over, blocked = times[rank]
            proc = ProcessProfile(
                rank=rank,
                own_time=own,
                overhead_time=over,
                blocked_time=blocked,
                sends=self._from_counts(send_counts[rank]),
                recvs=self._from_counts(recv_counts[rank]),
                lam=1.0,
            )
            processes.append(self._with_lambda(proc, trace.mapping))
        return ApplicationProfile(
            app_name=trace.app_name,
            nprocs=trace.nprocs,
            processes=tuple(processes),
            profile_mapping=dict(trace.mapping),
            profile_speeds={int(k): float(v) for k, v in profile_speeds.items()},
            arch_speed_ratios=dict(arch_speed_ratios or {}),
        )

    @staticmethod
    def _from_counts(counts: dict[tuple[int, float], int]) -> tuple[MessageGroup, ...]:
        return tuple(
            MessageGroup(peer, size, count) for (peer, size), count in sorted(counts.items())
        )

    def _with_lambda(self, proc: ProcessProfile, mapping: Mapping[int, str]) -> ProcessProfile:
        """Attach lambda_i = B_i / Theta_i^profile (eq. 7).

        A process with no profiled communication keeps lambda = 1 (its
        communication term is identically zero anyway).
        """
        theo = theta(proc, mapping, lambda s, d, size: self._latency.no_load(s, d, size))
        if theo <= 0.0:
            return proc
        return ProcessProfile(
            rank=proc.rank,
            own_time=proc.own_time,
            overhead_time=proc.overhead_time,
            blocked_time=proc.blocked_time,
            sends=proc.sends,
            recvs=proc.recvs,
            lam=proc.blocked_time / theo,
        )
