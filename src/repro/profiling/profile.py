"""Application profiles: the paper's summary of application behaviour.

A profile holds, per process ``i``:

* ``X_i`` — accumulated time executing its own code,
* ``O_i`` — accumulated time inside the message-passing library,
* ``B_i`` — accumulated time blocked on communication,
* the same-size *message groups* it sent and received per peer
  (``mgS_i`` / ``mgR_i`` in the paper, eq. 6),
* ``lambda_i`` — the communication correction factor (eq. 7), and

plus application-wide data: per-architecture measured speed ratios
(footnote 1), the mapping and node speeds of the profiling run, and the
segment structure.  Profiles serialize to/from plain JSON.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["MessageGroup", "ProcessProfile", "ApplicationProfile", "theta"]

#: Latency callable signature: (src_rank_node, dst_rank_node, size) -> seconds.
LatencyFn = Callable[[str, str, float], float]


@dataclass(frozen=True)
class MessageGroup:
    """A group of same-size messages exchanged with one peer process."""

    peer: int
    size_bytes: float
    count: int

    def __post_init__(self) -> None:
        if self.peer < 0:
            raise ValueError("peer must be >= 0")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class ProcessProfile:
    """Profile of one application process (one MPI rank)."""

    rank: int
    own_time: float  # X_i
    overhead_time: float  # O_i
    blocked_time: float  # B_i
    sends: tuple[MessageGroup, ...] = ()
    recvs: tuple[MessageGroup, ...] = ()
    lam: float = 1.0  # lambda_i, eq. (7)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        for name in ("own_time", "overhead_time", "blocked_time", "lam"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def compute_time(self) -> float:
        """``X_i + O_i``, the CPU-bound part used by eq. (5)."""
        return self.own_time + self.overhead_time

    @property
    def bytes_sent(self) -> float:
        return sum(g.size_bytes * g.count for g in self.sends)

    @property
    def message_count(self) -> int:
        return sum(g.count for g in self.sends) + sum(g.count for g in self.recvs)


def theta(
    process: ProcessProfile,
    mapping: Mapping[int, str],
    latency: LatencyFn,
) -> float:
    """Theoretical communication time of one process under a mapping.

    Implements eq. (6): the sum over all send and receive message groups
    of ``count * L_c(src_node, dst_node, size)``, where the nodes come
    from *mapping* and ``L_c`` from the supplied latency callable (either
    no-load or load-adjusted).
    """
    total = 0.0
    me = mapping[process.rank]
    for group in process.recvs:
        total += group.count * latency(mapping[group.peer], me, group.size_bytes)
    for group in process.sends:
        total += group.count * latency(me, mapping[group.peer], group.size_bytes)
    return total


@dataclass
class ApplicationProfile:
    """Complete profile of an application, as CBES consumes it."""

    app_name: str
    nprocs: int
    processes: tuple[ProcessProfile, ...]
    #: Mapping (rank -> node id) in effect during the profiling run.
    profile_mapping: dict[int, str]
    #: Effective node speed each rank was profiled on (``Speed_profile``).
    profile_speeds: dict[int, float]
    #: Measured application speed per architecture name (footnote 1).
    arch_speed_ratios: dict[str, float] = field(default_factory=dict)
    #: Optional per-segment profiles (segment index -> profile).
    segments: dict[int, "ApplicationProfile"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if len(self.processes) != self.nprocs:
            raise ValueError("need exactly one ProcessProfile per rank")
        if [p.rank for p in self.processes] != list(range(self.nprocs)):
            raise ValueError("process profiles must be ordered by rank 0..nprocs-1")
        if sorted(self.profile_mapping) != list(range(self.nprocs)):
            raise ValueError("profile_mapping must cover all ranks")
        if sorted(self.profile_speeds) != list(range(self.nprocs)):
            raise ValueError("profile_speeds must cover all ranks")
        for rank, speed in self.profile_speeds.items():
            if speed <= 0:
                raise ValueError(f"profile speed for rank {rank} must be > 0")

    # -- derived quantities --------------------------------------------
    def process(self, rank: int) -> ProcessProfile:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range")
        return self.processes[rank]

    @property
    def comp_comm_ratio(self) -> tuple[float, float]:
        """Aggregate (computation, communication) share of profiled time.

        Computation is ``sum(X + O)``, communication ``sum(B)``;
        normalised to fractions that sum to 1.  The paper quotes e.g.
        "80 %/20 % computation to communication ratio" for LU(2).
        """
        comp = sum(p.compute_time for p in self.processes)
        comm = sum(p.blocked_time for p in self.processes)
        total = comp + comm
        if total == 0.0:
            return 1.0, 0.0
        return comp / total, comm / total

    def speed_ratio_for(self, arch_name: str, base_speed: float) -> float:
        """Application speed on *arch_name* (measured if known, else base)."""
        return self.arch_speed_ratios.get(arch_name, base_speed)

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        def proc_dict(p: ProcessProfile) -> dict:
            return {
                "rank": p.rank,
                "own_time": p.own_time,
                "overhead_time": p.overhead_time,
                "blocked_time": p.blocked_time,
                "lam": p.lam,
                "sends": [[g.peer, g.size_bytes, g.count] for g in p.sends],
                "recvs": [[g.peer, g.size_bytes, g.count] for g in p.recvs],
            }

        return {
            "app_name": self.app_name,
            "nprocs": self.nprocs,
            "processes": [proc_dict(p) for p in self.processes],
            "profile_mapping": {str(k): v for k, v in self.profile_mapping.items()},
            "profile_speeds": {str(k): v for k, v in self.profile_speeds.items()},
            "arch_speed_ratios": dict(self.arch_speed_ratios),
            "segments": {str(k): v.to_dict() for k, v in self.segments.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ApplicationProfile":
        def proc(d: Mapping) -> ProcessProfile:
            return ProcessProfile(
                rank=int(d["rank"]),
                own_time=float(d["own_time"]),
                overhead_time=float(d["overhead_time"]),
                blocked_time=float(d["blocked_time"]),
                lam=float(d["lam"]),
                sends=tuple(MessageGroup(int(p), float(s), int(c)) for p, s, c in d["sends"]),
                recvs=tuple(MessageGroup(int(p), float(s), int(c)) for p, s, c in d["recvs"]),
            )

        return cls(
            app_name=str(data["app_name"]),
            nprocs=int(data["nprocs"]),
            processes=tuple(proc(p) for p in data["processes"]),
            profile_mapping={int(k): str(v) for k, v in data["profile_mapping"].items()},
            profile_speeds={int(k): float(v) for k, v in data["profile_speeds"].items()},
            arch_speed_ratios={str(k): float(v) for k, v in data["arch_speed_ratios"].items()},
            segments={
                int(k): cls.from_dict(v) for k, v in dict(data.get("segments", {})).items()
            },
        )

    def save(self, path: str | Path) -> None:
        """Write the profile database entry as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ApplicationProfile":
        """Read a profile database entry from JSON."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def merge_message_groups(
    raw: Sequence[tuple[int, float]],
) -> tuple[MessageGroup, ...]:
    """Collapse (peer, size) message observations into message groups."""
    counts: dict[tuple[int, float], int] = {}
    for peer, size in raw:
        counts[(peer, size)] = counts.get((peer, size), 0) + 1
    return tuple(
        MessageGroup(peer, size, count)
        for (peer, size), count in sorted(counts.items())
    )
