"""Execution trace container."""

from __future__ import annotations

from collections.abc import Iterable

from repro.profiling.events import MarkerRecord, MessageRecord, TimeCategory, TimeRecord

__all__ = ["ExecutionTrace"]


class ExecutionTrace:
    """An application execution trace: typed records from one run.

    The trace is append-only during a run and then analyzed by
    :class:`repro.profiling.analyzer.TraceAnalyzer`.  It also carries
    the context needed to interpret itself: the mapping in effect
    (rank -> node id) and the total measured wall-clock time.
    """

    def __init__(self, app_name: str, nprocs: int, mapping: dict[int, str]):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if sorted(mapping) != list(range(nprocs)):
            raise ValueError("mapping must cover ranks 0..nprocs-1 exactly")
        self.app_name = app_name
        self.nprocs = nprocs
        self.mapping = dict(mapping)
        self.time_records: list[TimeRecord] = []
        self.messages: list[MessageRecord] = []
        self.markers: list[MarkerRecord] = []
        self.total_time: float | None = None

    # -- recording ----------------------------------------------------
    def record_time(
        self, rank: int, category: TimeCategory, start: float, duration: float, segment: int = 0
    ) -> None:
        """Append one time slice (zero-duration slices are dropped)."""
        if duration <= 0.0:
            return
        self._check_rank(rank)
        self.time_records.append(TimeRecord(rank, category, start, duration, segment))

    def record_message(
        self, src: int, dst: int, size_bytes: float, send_time: float, recv_time: float, segment: int = 0
    ) -> None:
        """Append one observed point-to-point message."""
        self._check_rank(src)
        self._check_rank(dst)
        self.messages.append(MessageRecord(src, dst, size_bytes, send_time, recv_time, segment))

    def record_marker(self, rank: int, time: float, segment: int, label: str = "") -> None:
        self._check_rank(rank)
        self.markers.append(MarkerRecord(rank, time, segment, label))

    def finish(self, total_time: float) -> None:
        """Seal the trace with the measured wall-clock time."""
        if total_time < 0:
            raise ValueError("total_time must be >= 0")
        self.total_time = total_time

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range for {self.nprocs} processes")

    # -- queries --------------------------------------------------------
    @property
    def segments(self) -> list[int]:
        """Sorted distinct segment indices present in the trace."""
        found = {r.segment for r in self.time_records}
        found.update(m.segment for m in self.messages)
        return sorted(found) if found else [0]

    def time_in(self, rank: int, category: TimeCategory, segment: int | None = None) -> float:
        """Accumulated time of *rank* in *category* (optionally one segment)."""
        self._check_rank(rank)
        return sum(
            r.duration
            for r in self.time_records
            if r.rank == rank
            and r.category is category
            and (segment is None or r.segment == segment)
        )

    def messages_from(self, rank: int, segment: int | None = None) -> Iterable[MessageRecord]:
        return (
            m for m in self.messages if m.src == rank and (segment is None or m.segment == segment)
        )

    def messages_to(self, rank: int, segment: int | None = None) -> Iterable[MessageRecord]:
        return (
            m for m in self.messages if m.dst == rank and (segment is None or m.segment == segment)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sealed = f", total={self.total_time:.4f}s" if self.total_time is not None else " (open)"
        return (
            f"ExecutionTrace({self.app_name!r}, {self.nprocs} procs, "
            f"{len(self.time_records)} slices, {len(self.messages)} msgs{sealed})"
        )
