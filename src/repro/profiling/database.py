"""Persistent CBES database (paper section 2, figure 2).

*"The CBES infrastructure consists of a set of databases, profiling
tools, and monitoring daemons."*  This module is the database part: a
directory-backed store holding

* the **system profile** — the calibrated latency model per cluster,
  so the expensive off-line calibration phase is paid once and reloaded
  on every service start;
* the **application profiles** — one JSON document per application.

The layout is plain JSON files so entries are diffable, portable and
inspectable:

::

    <root>/
      system/<cluster>.json          calibrated latency model
      applications/<app>.json        application profile

"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.cluster.latency import LatencyModel
from repro.profiling.profile import ApplicationProfile

__all__ = ["ProfileDatabase"]

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _slug(name: str) -> str:
    if not name:
        raise ValueError("name must be nonempty")
    return _SAFE.sub("_", name)


class ProfileDatabase:
    """Directory-backed store for system and application profiles."""

    def __init__(self, root: str | Path):
        self._root = Path(root)
        (self._root / "system").mkdir(parents=True, exist_ok=True)
        (self._root / "applications").mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # -- system profiles -------------------------------------------------
    def _system_path(self, cluster_name: str) -> Path:
        return self._root / "system" / f"{_slug(cluster_name)}.json"

    def save_latency_model(self, cluster_name: str, model: LatencyModel) -> Path:
        """Persist a cluster's calibrated latency model."""
        path = self._system_path(cluster_name)
        path.write_text(json.dumps(model.to_dict()))
        return path

    def load_latency_model(self, cluster_name: str) -> LatencyModel:
        path = self._system_path(cluster_name)
        if not path.exists():
            raise KeyError(f"no system profile stored for cluster {cluster_name!r}")
        return LatencyModel.from_dict(json.loads(path.read_text()))

    def has_system_profile(self, cluster_name: str) -> bool:
        return self._system_path(cluster_name).exists()

    # -- application profiles ------------------------------------------------
    def _app_path(self, app_name: str) -> Path:
        return self._root / "applications" / f"{_slug(app_name)}.json"

    def save_profile(self, profile: ApplicationProfile) -> Path:
        path = self._app_path(profile.app_name)
        profile.save(path)
        return path

    def load_profile(self, app_name: str) -> ApplicationProfile:
        path = self._app_path(app_name)
        if not path.exists():
            raise KeyError(f"no profile stored for application {app_name!r}")
        return ApplicationProfile.load(path)

    def delete_profile(self, app_name: str) -> bool:
        """Remove a stored profile; returns whether it existed."""
        path = self._app_path(app_name)
        if path.exists():
            path.unlink()
            return True
        return False

    def applications(self) -> list[str]:
        """Names of all stored application profiles (by file content)."""
        names = []
        for path in sorted((self._root / "applications").glob("*.json")):
            try:
                names.append(str(json.loads(path.read_text())["app_name"]))
            except (json.JSONDecodeError, KeyError):
                continue  # ignore foreign files
        return names

    # -- service integration ----------------------------------------------------
    def attach(self, service) -> int:
        """Load everything relevant into a CBES service.

        Installs the stored latency model for the service's cluster (if
        present and the cluster is not yet calibrated) and registers all
        stored application profiles.  Returns the number of profiles
        loaded.
        """
        cluster = service.cluster
        if not cluster.is_calibrated and self.has_system_profile(cluster.name):
            model = self.load_latency_model(cluster.name)
            missing = set(cluster.node_ids()) - set(model.hosts)
            if missing:
                raise ValueError(
                    f"stored system profile for {cluster.name!r} lacks nodes {sorted(missing)[:5]}"
                )
            cluster._latency = model  # noqa: SLF001 - deliberate install
        count = 0
        for name in self.applications():
            service.register_profile(self.load_profile(name))
            count += 1
        return count

    def snapshot_service(self, service) -> int:
        """Persist a service's calibration and all registered profiles."""
        if service.cluster.is_calibrated:
            self.save_latency_model(service.cluster.name, service.cluster.latency_model)
        count = 0
        for name in service.profiled_applications:
            self.save_profile(service.profile(name))
            count += 1
        return count
