"""CS — the default CBES scheduler: simulated annealing on the full
cost function (computation + communication terms)."""

from __future__ import annotations

from repro.core.evaluation import EvaluationOptions, MappingEvaluator
from repro.core.fast_eval import FastEvalUnavailable
from repro.schedulers.annealing import AnnealingSchedule
from repro.schedulers.base import MappingConstraint, Scheduler
from repro.search.portfolio import ParallelPortfolio
from repro.search.spec import SearchSpec
from repro.search.worker import SaTask

__all__ = ["CbesScheduler"]


class CbesScheduler(Scheduler):
    """The CS scheduler of section 6.

    The energy of a mapping is its predicted execution time ``S_M``
    (eq. 4) under the full CBES evaluation, so the annealer's minimum-
    energy configuration is the estimated fastest mapping.

    ``direction="maximize"`` turns it into the worst-case finder used by
    the worst-vs-best scenario tests.

    Restarts run as a portfolio (:mod:`repro.search`): each restart owns
    a seed substream, so results are independent of the restart count of
    the *other* restarts and of the ``parallel`` degree — ``parallel=1``
    and ``parallel=N`` return byte-identical mappings for one seed.
    ``share_bound=True`` lets concurrent restarts prune each other
    through a shared best-so-far (a throughput heuristic that trades
    away that strict determinism).
    """

    name = "CS"

    def __init__(
        self,
        *,
        schedule: AnnealingSchedule = AnnealingSchedule(),
        direction: str = "minimize",
        swap_probability: float = 0.5,
        restarts: int = 2,
        seed_scan: int = 8,
        share_bound: bool = False,
        constraint: MappingConstraint | None = None,
        **execution,
    ):
        super().__init__(constraint=constraint, **execution)
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if seed_scan < 0:
            raise ValueError("seed_scan must be >= 0")
        if direction not in ("minimize", "maximize"):
            raise ValueError("direction must be 'minimize' or 'maximize'")
        self._schedule = schedule
        self._direction = direction
        self._swap_p = swap_probability
        self._restarts = restarts
        self._seed_scan = seed_scan
        self._share_bound = share_bound

    #: Options the annealer's energy uses; None means the evaluator's own.
    energy_options: EvaluationOptions | None = None
    #: Seed the first restart with the fastest-nodes greedy construction.
    #: Disabled for NCS: its node choices within an equal-speed group
    #: must stay random, as the paper describes ("NCS behaves like RS
    #: when selecting from a set of nodes of equivalent speeds").
    use_greedy_start: bool = True
    #: Anneal through the incremental delta-evaluation path when the
    #: evaluator supports it; the reference predict() remains the
    #: fallback (and always produces the reported prediction).
    use_fast_path: bool = True

    def _run(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        options = (
            self.energy_options if self.energy_options is not None else evaluator.options
        )
        spec = SearchSpec.from_evaluator(
            evaluator,
            pool,
            options=options,
            use_fast_path=self.use_fast_path,
            constraint=self._constraint,
        )
        deadline = self._deadline()
        # Independent restarts guard against the two-basin landscapes a
        # federated cluster produces (a whole side can be a local
        # optimum); the first restart starts from the fastest-nodes
        # greedy construction, the rest from the best of a batched
        # seed scan over random candidates (one evaluate_many sweep).
        tasks = [
            SaTask(
                index=attempt,
                seed=seed,
                rng_parts=(
                    self.name,
                    tuple(pool),
                    evaluator.profile.app_name,
                    "restart",
                    attempt,
                ),
                schedule=self._schedule,
                swap_probability=self._swap_p,
                greedy_start=(
                    attempt == 0
                    and self._direction == "minimize"
                    and self.use_greedy_start
                ),
                seed_scan=self._seed_scan,
                direction=self._direction,
                deadline=deadline,
            )
            for attempt in range(self._restarts)
        ]
        # The inline path reuses the evaluator's cached context so a
        # serial scheduler keeps its zero-setup-cost fast path.
        context = None
        if self.parallel == 1 and self.use_fast_path:
            try:
                context = evaluator.fast_context(options)
            except FastEvalUnavailable:
                context = None
        portfolio = ParallelPortfolio(
            self.parallel,
            mp_context=self._mp_context,
            share_bound=self._share_bound,
            reuse_pool=self._reuse_pool,
        )
        result = portfolio.run_sa(spec, tasks, direction=self._direction, context=context)
        evaluator.record_evaluations(result.evaluations)
        # Report the *full* predicted time for the chosen mapping even if
        # the search annealed on a reduced energy (NCS).
        predicted = evaluator.execution_time(result.mapping)
        return result.mapping, predicted, result.history
