"""CS — the default CBES scheduler: simulated annealing on the full
cost function (computation + communication terms)."""

from __future__ import annotations

from repro.core.evaluation import EvaluationOptions, MappingEvaluator
from repro.core.fast_eval import FastEvalUnavailable
from repro.core.mapping import TaskMapping
from repro.schedulers.annealing import AnnealingSchedule, anneal
from repro.schedulers.base import MappingConstraint, Scheduler, make_rng
from repro.schedulers.moves import MoveGenerator

__all__ = ["CbesScheduler"]


class CbesScheduler(Scheduler):
    """The CS scheduler of section 6.

    The energy of a mapping is its predicted execution time ``S_M``
    (eq. 4) under the full CBES evaluation, so the annealer's minimum-
    energy configuration is the estimated fastest mapping.

    ``direction="maximize"`` turns it into the worst-case finder used by
    the worst-vs-best scenario tests.
    """

    name = "CS"

    def __init__(
        self,
        *,
        schedule: AnnealingSchedule = AnnealingSchedule(),
        direction: str = "minimize",
        swap_probability: float = 0.5,
        restarts: int = 2,
        constraint: MappingConstraint | None = None,
    ):
        super().__init__(constraint=constraint)
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self._schedule = schedule
        self._direction = direction
        self._swap_p = swap_probability
        self._restarts = restarts

    #: Options the annealer's energy uses; None means the evaluator's own.
    energy_options: EvaluationOptions | None = None
    #: Seed the first restart with the fastest-nodes greedy construction.
    #: Disabled for NCS: its node choices within an equal-speed group
    #: must stay random, as the paper describes ("NCS behaves like RS
    #: when selecting from a set of nodes of equivalent speeds").
    use_greedy_start: bool = True
    #: Anneal through the incremental delta-evaluation path when the
    #: evaluator supports it; the reference predict() remains the
    #: fallback (and always produces the reported prediction).
    use_fast_path: bool = True

    def _run(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        rng = make_rng(seed, self.name, tuple(pool), evaluator.profile.app_name)
        moves = MoveGenerator(pool, swap_probability=self._swap_p)

        energy = None
        if self.use_fast_path:
            try:
                energy = evaluator.incremental(self.energy_options)
            except FastEvalUnavailable:
                energy = None
        if energy is None:

            def energy(mapping: TaskMapping) -> float:
                return evaluator.execution_time(mapping, options=self.energy_options)

        sign = 1.0 if self._direction == "minimize" else -1.0
        best = None
        best_energy = float("inf")
        history: list[float] = []
        # Independent restarts guard against the two-basin landscapes a
        # federated cluster produces (a whole side can be a local
        # optimum); the first restart starts from the fastest-nodes
        # greedy construction, the rest from random mappings.
        for attempt in range(self._restarts):
            start = None
            if attempt == 0 and self._direction == "minimize" and self.use_greedy_start:
                start = self._greedy_start(evaluator, pool)
            if start is None:
                start = self._initial_mapping(evaluator, pool, rng)
            candidate, candidate_energy, hist = anneal(
                energy,
                start,
                moves,
                rng,
                schedule=self._schedule,
                feasible=self.feasible,
                direction=self._direction,
            )
            history.extend(hist)
            if best is None or sign * candidate_energy < sign * best_energy:
                best, best_energy = candidate, candidate_energy
        assert best is not None
        # Report the *full* predicted time for the chosen mapping even if
        # the search annealed on a reduced energy (NCS).
        predicted = evaluator.execution_time(best)
        return best, predicted, history

    def _greedy_start(self, evaluator: MappingEvaluator, pool: list[str]) -> TaskMapping | None:
        """Fastest-available-nodes construction, if it is feasible."""
        profile = evaluator.profile
        nodes = evaluator._nodes  # noqa: SLF001 - package-internal
        snapshot = evaluator._snapshot  # noqa: SLF001
        ranked = sorted(
            pool,
            key=lambda nid: (
                -nodes[nid].speed_for(profile.arch_speed_ratios) * snapshot.acpu(nid),
                nid,
            ),
        )
        mapping = TaskMapping(ranked[: profile.nprocs])
        return mapping if self.feasible(mapping) else None
