"""A greedy constructive baseline scheduler.

Not part of the paper's comparison, but a natural baseline: pick the
fastest available nodes for the application (by measured speed and
current availability), then locally improve rank placement by predicted
time with first-improvement swaps.  Cheap, deterministic, and a good
sanity bound for the SA schedulers — SA should never lose to it badly.
"""

from __future__ import annotations

from repro.core.evaluation import MappingEvaluator
from repro.core.fast_eval import FastEvalUnavailable
from repro.core.mapping import TaskMapping
from repro.schedulers.base import MappingConstraint, Scheduler, make_rng

__all__ = ["GreedyScheduler"]


class GreedyScheduler(Scheduler):
    """Fastest-nodes-first construction plus swap-based local search."""

    name = "GREEDY"

    def __init__(
        self,
        *,
        improvement_rounds: int = 2,
        constraint: MappingConstraint | None = None,
        **execution,
    ):
        super().__init__(constraint=constraint, **execution)
        if improvement_rounds < 0:
            raise ValueError("improvement_rounds must be >= 0")
        self._rounds = improvement_rounds

    def _run(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        profile = evaluator.profile
        nprocs = profile.nprocs
        snapshot = evaluator._snapshot  # noqa: SLF001 - package-internal
        nodes = evaluator._nodes  # noqa: SLF001

        def effective_speed(nid: str) -> float:
            return nodes[nid].speed_for(profile.arch_speed_ratios) * snapshot.acpu(nid)

        ranked = sorted(pool, key=lambda nid: (-effective_speed(nid), nid))
        mapping = TaskMapping(ranked[:nprocs])
        if not self.feasible(mapping):
            # Fall back to a feasible random start if the pure-greedy
            # choice violates the constraint (e.g. zone mix rules).
            rng = make_rng(seed, self.name, tuple(pool), profile.app_name)
            mapping = self._initial_mapping(evaluator, pool, rng)
        # Swap-based local search runs on the incremental delta path
        # when available: each candidate swap costs a propose() over the
        # two moved ranks and their peers, not a full re-evaluation.
        fast = None
        try:
            fast = evaluator.incremental()
        except FastEvalUnavailable:
            fast = None
        best_time = fast.reset(mapping) if fast is not None else evaluator.execution_time(mapping)
        history = [best_time]
        for _ in range(self._rounds):
            improved = False
            for a in range(nprocs):
                for b in range(a + 1, nprocs):
                    candidate = mapping.with_swap(a, b)
                    if not self.feasible(candidate):
                        continue
                    if fast is not None:
                        t = fast.propose(candidate)
                        if t < best_time:
                            fast.commit()
                            mapping, best_time = candidate, t
                            improved = True
                        else:
                            fast.reject()
                    else:
                        t = evaluator.execution_time(candidate)
                        if t < best_time:
                            mapping, best_time = candidate, t
                            improved = True
            history.append(best_time)
            if not improved:
                break
        return mapping, best_time, history
