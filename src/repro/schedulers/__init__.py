"""Schedulers: CS (SA, full cost), NCS (SA, no comm), RS, greedy, GA."""

from repro.schedulers.annealing import AnnealingSchedule, anneal
from repro.schedulers.base import MappingConstraint, ScheduleResult, Scheduler, random_mapping
from repro.schedulers.cs import CbesScheduler
from repro.schedulers.genetic import GeneticParams, GeneticScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.moves import MoveGenerator
from repro.schedulers.ncs import NoCommScheduler
from repro.schedulers.random_scheduler import RandomScheduler

__all__ = [
    "SCHEDULERS",
    "AnnealingSchedule",
    "CbesScheduler",
    "GeneticParams",
    "GeneticScheduler",
    "GreedyScheduler",
    "MappingConstraint",
    "MoveGenerator",
    "NoCommScheduler",
    "RandomScheduler",
    "ScheduleResult",
    "Scheduler",
    "anneal",
    "make_scheduler",
    "random_mapping",
]

#: Short tags (the paper's CS / NCS / RS plus the baselines) to
#: scheduler classes — the shared registry behind the CLI's
#: ``--scheduler`` option and the daemon's job payloads.
SCHEDULERS: dict[str, type[Scheduler]] = {
    "cs": CbesScheduler,
    "ncs": NoCommScheduler,
    "rs": RandomScheduler,
    "greedy": GreedyScheduler,
    "ga": GeneticScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry tag (case-insensitive)."""
    try:
        cls = SCHEDULERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; valid: {', '.join(sorted(SCHEDULERS))}"
        ) from None
    return cls(**kwargs)
