"""Schedulers: CS (SA, full cost), NCS (SA, no comm), RS, greedy, GA."""

from repro.schedulers.annealing import AnnealingSchedule, anneal
from repro.schedulers.base import MappingConstraint, ScheduleResult, Scheduler, random_mapping
from repro.schedulers.cs import CbesScheduler
from repro.schedulers.genetic import GeneticParams, GeneticScheduler
from repro.schedulers.greedy import GreedyScheduler
from repro.schedulers.moves import MoveGenerator
from repro.schedulers.ncs import NoCommScheduler
from repro.schedulers.random_scheduler import RandomScheduler

__all__ = [
    "AnnealingSchedule",
    "CbesScheduler",
    "GeneticParams",
    "GeneticScheduler",
    "GreedyScheduler",
    "MappingConstraint",
    "MoveGenerator",
    "NoCommScheduler",
    "RandomScheduler",
    "ScheduleResult",
    "Scheduler",
    "anneal",
    "random_mapping",
]
