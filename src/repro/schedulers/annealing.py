"""Simulated-annealing search core (paper section 6, refs [19][20]).

A classic Metropolis annealer over the mapping space: the CBES mapping
evaluation formula (eq. 4) is the energy function, moves come from
:class:`~repro.schedulers.moves.MoveGenerator`, and a geometric cooling
schedule drives acceptance from near-random walk to strict descent.

``direction="maximize"`` searches for the *worst* mapping instead — that
is how the worst-vs-best scenario experiments (tables 1 and 3) obtain
their worst cases.

The energy may be a plain callable (one full evaluation per neighbour)
or an object advertising the incremental protocol of
:class:`repro.core.fast_eval.IncrementalEvaluator` — ``reset(mapping)``,
``propose(candidate)``, ``commit()``, ``reject()`` — in which case each
neighbour costs only a delta evaluation of the ranks the move touched.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro._rng import Rng
from repro.core.mapping import TaskMapping
from repro.schedulers.moves import MoveGenerator
from repro.telemetry import get_registry

__all__ = ["AnnealingSchedule", "CostBound", "anneal", "supports_incremental"]


@runtime_checkable
class CostBound(Protocol):
    """A best-so-far bound shared between concurrent annealing chains.

    Works in *cost* space (the sign-adjusted energy the annealer
    minimizes), so one bound serves both search directions.  The
    parallel portfolio backs this with a ``multiprocessing`` value so
    chains in different worker processes can cut each other short.
    """

    def update(self, cost: float) -> None:
        """Publish this chain's best cost so far."""

    def should_prune(self, cost: float) -> bool:
        """Whether a chain currently at *cost* can no longer win."""


def supports_incremental(energy: object) -> bool:
    """Whether *energy* advertises the propose/commit/reject protocol."""
    return all(
        callable(getattr(energy, attr, None))
        for attr in ("reset", "propose", "commit", "reject")
    )


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling parameters of the SA search."""

    #: Moves attempted at each temperature step.
    moves_per_temperature: int = 60
    #: Geometric cooling factor per temperature step.
    cooling: float = 0.92
    #: Number of temperature steps.
    steps: int = 40
    #: Initial acceptance probability targeted when auto-scaling T0.
    initial_acceptance: float = 0.6
    #: Stop early after this many consecutive steps without improvement.
    patience: int = 10

    def __post_init__(self) -> None:
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if not 0.0 < self.initial_acceptance < 1.0:
            raise ValueError("initial_acceptance must be in (0, 1)")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


def anneal(
    energy: Callable[[TaskMapping], float],
    start: TaskMapping,
    moves: MoveGenerator,
    rng: Rng,
    *,
    schedule: AnnealingSchedule = AnnealingSchedule(),
    feasible: Callable[[TaskMapping], bool] | None = None,
    direction: str = "minimize",
    deadline: float | None = None,
    bound: CostBound | None = None,
) -> tuple[TaskMapping, float, list[float]]:
    """Run one simulated-annealing search.

    Returns ``(best_mapping, best_energy, history)`` where *history*
    records the best energy after each temperature step.  Infeasible
    neighbours (per *feasible*) are rejected outright.

    *deadline* is an absolute :func:`time.monotonic` instant; once it
    passes, the search stops at the next temperature-step boundary and
    returns its best-so-far (never an exception).  *bound* is a shared
    best-so-far :class:`CostBound`; the chain publishes its best cost
    after every temperature step and abandons the cooling schedule when
    the bound says it can no longer win.
    """
    if direction not in ("minimize", "maximize"):
        raise ValueError("direction must be 'minimize' or 'maximize'")
    sign = 1.0 if direction == "minimize" else -1.0
    incremental = supports_incremental(energy)

    def cost(m: TaskMapping) -> float:
        return sign * energy(m)

    current = start
    current_cost = sign * energy.reset(current) if incremental else cost(current)
    best, best_cost = current, current_cost

    # Auto-scale T0 from an initial sample of move deltas so acceptance
    # starts near the configured level regardless of the energy scale.
    deltas = []
    probe = current
    for _ in range(12):
        cand = moves.neighbour(probe, rng)
        if feasible is not None and not feasible(cand):
            continue
        if incremental:
            deltas.append(abs(sign * energy.propose(cand) - current_cost))
            energy.commit()  # walk the probe chain
        else:
            deltas.append(abs(cost(cand) - current_cost))
        probe = cand
    if incremental:
        energy.reset(start)  # rewind the probe walk
    mean_delta = math.fsum(deltas) / len(deltas) if deltas else abs(current_cost) * 0.01
    if mean_delta == 0.0:
        mean_delta = max(abs(current_cost), 1e-9) * 1e-3
    temperature = -mean_delta / math.log(schedule.initial_acceptance)

    history: list[float] = []
    stale = 0
    # Move outcomes are tallied in local ints and recorded in one batch
    # after the loop: the inner loop is the search hot path and must not
    # pay a registry call per move.
    accepted = rejected = 0
    if bound is not None:
        bound.update(best_cost)
    for _ in range(schedule.steps):
        if deadline is not None and time.monotonic() >= deadline:
            break
        if bound is not None and bound.should_prune(best_cost):
            break
        improved = False
        for _ in range(schedule.moves_per_temperature):
            candidate = moves.neighbour(current, rng)
            if feasible is not None and not feasible(candidate):
                continue
            candidate_cost = (
                sign * energy.propose(candidate) if incremental else cost(candidate)
            )
            delta = candidate_cost - current_cost
            if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
                if incremental:
                    energy.commit()
                current, current_cost = candidate, candidate_cost
                accepted += 1
                if current_cost < best_cost:
                    best, best_cost = current, current_cost
                    improved = True
            else:
                rejected += 1
                if incremental:
                    energy.reject()
        history.append(sign * best_cost)
        temperature *= schedule.cooling
        stale = 0 if improved else stale + 1
        if bound is not None:
            bound.update(best_cost)
        if stale >= schedule.patience:
            break

    registry = get_registry()
    moves_total = registry.counter(
        "cbes_sa_moves_total", "SA move outcomes across all chains.", ("outcome",)
    )
    moves_total.inc(accepted, outcome="accepted")
    moves_total.inc(rejected, outcome="rejected")
    registry.counter(
        "cbes_sa_steps_total", "Completed SA temperature steps."
    ).inc(len(history))
    return best, sign * best_cost, history
