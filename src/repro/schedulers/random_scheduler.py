"""RS — the random reference scheduler of section 6.

Picks a mapping uniformly at random from the pool of nodes considered
equivalent.  It costs essentially nothing to run and is the paper's
point of reference for the maximum feasible overall speedup.
"""

from __future__ import annotations

from repro.core.evaluation import MappingEvaluator
from repro.schedulers.base import MappingConstraint, Scheduler, make_rng

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Uniform random mapping selection."""

    name = "RS"

    def __init__(self, *, constraint: MappingConstraint | None = None, **execution):
        super().__init__(constraint=constraint, **execution)

    def _run(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        rng = make_rng(seed, self.name, tuple(pool), evaluator.profile.app_name)
        mapping = self._initial_mapping(evaluator, pool, rng)
        # RS itself never evaluates; the prediction is computed only so
        # the result is comparable with the other schedulers.
        predicted = evaluator.execution_time(mapping)
        return mapping, predicted, [predicted]
