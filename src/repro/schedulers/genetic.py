"""GA — genetic-algorithm scheduler (the paper's future-work direction).

Section 8: *"We further intend to investigate the suitability of other
scheduling algorithms, e.g. genetic algorithms, for CBES-supported
scheduling."*  This implementation uses the same CBES energy function as
CS with a steady-state GA: tournament selection, uniform crossover with
duplicate repair (mappings must stay one-process-per-node), and the SA
move set as the mutation operator.

With ``islands > 1`` the GA runs as an island model instead: several
independent populations evolve in parallel worker processes and exchange
their elites along a ring every ``migration_interval`` generations (see
:mod:`repro.search.islands`).  The serial single-population path is
untouched when ``islands == 1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro._rng import Rng
from repro.core.evaluation import MappingEvaluator
from repro.core.fast_eval import FastEvalUnavailable
from repro.core.mapping import TaskMapping
from repro.schedulers.base import MappingConstraint, Scheduler, make_rng
from repro.schedulers.moves import MoveGenerator
from repro.telemetry import get_registry

__all__ = ["GeneticParams", "GeneticScheduler", "ga_generation", "score_population"]


def score_population(fit, mappings: list[TaskMapping]) -> list[float]:
    """Score a whole population with one batched sweep when possible.

    Fitness objects advertising a ``many(mappings)`` method (the
    incremental evaluator backed by ``EvaluationContext.evaluate_many``)
    get the population as a single submission — one kernel dispatch
    instead of ``len(mappings)`` python loops.  Plain callables fall back
    to the element-wise loop; both paths return identical energies.
    """
    many = getattr(fit, "many", None)
    if many is not None:
        return many(mappings)
    return [fit(m) for m in mappings]


@dataclass(frozen=True)
class GeneticParams:
    """GA hyperparameters."""

    population: int = 24
    generations: int = 40
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    elite: int = 2
    patience: int = 12

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 2 <= self.tournament <= self.population:
            raise ValueError("tournament size must be in [2, population]")
        for rate in (self.crossover_rate, self.mutation_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be in [0, 1]")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must be in [0, population)")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


def _tournament(
    population: list[TaskMapping],
    fitness: list[float],
    rng: Rng,
    size: int,
) -> TaskMapping:
    contenders = rng.choice(len(population), size=min(size, len(population)), replace=False)
    winner = min(contenders, key=lambda i: fitness[int(i)])
    return population[int(winner)]


def _crossover(a: TaskMapping, b: TaskMapping, pool: list[str], rng: Rng) -> TaskMapping:
    """Uniform crossover with duplicate repair.

    Genes are per-rank node choices; when the inherited gene is
    already used by an earlier rank, repair with the other parent's
    gene, then with a random unused pool node.
    """
    nprocs = a.nprocs
    used: set[str] = set()
    genes: list[str] = []
    take_a = [u < 0.5 for u in rng.random(nprocs)]
    for rank in range(nprocs):
        first = a.node_of(rank) if take_a[rank] else b.node_of(rank)
        second = b.node_of(rank) if take_a[rank] else a.node_of(rank)
        if first not in used:
            genes.append(first)
        elif second not in used:
            genes.append(second)
        else:
            free = [n for n in pool if n not in used]
            genes.append(free[int(rng.integers(len(free)))])
        used.add(genes[-1])
    return TaskMapping(genes)


def ga_generation(
    population: list[TaskMapping],
    fitness: list[float],
    fit,
    params: GeneticParams,
    moves: MoveGenerator,
    pool: list[str],
    rng: Rng,
    feasible,
) -> tuple[list[TaskMapping], list[float]]:
    """One steady-state GA generation: selection, variation, evaluation.

    Shared by the serial scheduler and the island-model workers so the
    two paths cannot drift; the RNG draw order here *is* the GA's
    deterministic contract.  The offspring are scored as one batched
    sweep (:func:`score_population`), so a whole generation costs one
    ``evaluate_many`` dispatch on the fast path.
    """
    order = sorted(range(len(fitness)), key=lambda i: (fitness[i], i))
    next_pop = [population[i] for i in order[: params.elite]]
    while len(next_pop) < params.population:
        parent_a = _tournament(population, fitness, rng, params.tournament)
        parent_b = _tournament(population, fitness, rng, params.tournament)
        if rng.random() < params.crossover_rate:
            child = _crossover(parent_a, parent_b, pool, rng)
        else:
            child = parent_a
        if rng.random() < params.mutation_rate:
            child = moves.neighbour(child, rng)
        if feasible(child):
            next_pop.append(child)
        else:
            next_pop.append(parent_a)
    new_fitness = score_population(fit, next_pop)
    return next_pop, new_fitness


class GeneticScheduler(Scheduler):
    """Steady-state GA over the mapping space with the CBES energy."""

    name = "GA"

    #: Kept as staticmethods for callers that poke the operators directly.
    _tournament = staticmethod(_tournament)
    _crossover = staticmethod(_crossover)

    def __init__(
        self,
        *,
        params: GeneticParams = GeneticParams(),
        islands: int = 1,
        migration_interval: int = 5,
        migrants: int = 2,
        constraint: MappingConstraint | None = None,
        **execution,
    ):
        super().__init__(constraint=constraint, **execution)
        if islands < 1:
            raise ValueError("islands must be >= 1")
        if migration_interval < 1:
            raise ValueError("migration_interval must be >= 1")
        if not 0 < migrants < params.population:
            raise ValueError("migrants must be in (0, population)")
        self._params = params
        self._islands = islands
        self._migration_interval = migration_interval
        self._migrants = migrants

    def _run(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        if self._islands > 1:
            return self._run_islands(evaluator, pool, seed)
        p = self._params
        rng = make_rng(seed, self.name, tuple(pool), evaluator.profile.app_name)
        moves = MoveGenerator(pool)

        # Population fitness uses the vectorized full evaluation of the
        # fast path (GA children have no single base mapping to delta
        # against); the reference predict() is the fallback.
        try:
            fit = evaluator.incremental()
        except FastEvalUnavailable:
            fit = evaluator.execution_time

        deadline = self._deadline()
        population = [self._initial_mapping(evaluator, pool, rng) for _ in range(p.population)]
        fitness = score_population(fit, population)
        history = [min(fitness)]
        stale = 0
        generations_done = 0
        gen_started = time.perf_counter()
        for _ in range(p.generations):
            if deadline is not None and time.monotonic() >= deadline:
                break
            population, fitness = ga_generation(
                population, fitness, fit, p, moves, pool, rng, self.feasible
            )
            generations_done += 1
            best_now = min(fitness)
            if best_now < history[-1] - 1e-12:
                stale = 0
            else:
                stale += 1
            history.append(min(best_now, history[-1]))
            if stale >= p.patience:
                break
        # Batched: one registry touch per run, not per generation.
        registry = get_registry()
        registry.counter(
            "cbes_ga_generations_total", "GA generations evolved across all islands."
        ).inc(generations_done)
        if generations_done:
            registry.histogram(
                "cbes_ga_generation_seconds", "Mean wall time per serial GA generation."
            ).observe((time.perf_counter() - gen_started) / generations_done)
        best_idx = min(range(len(fitness)), key=lambda i: (fitness[i], i))
        return population[best_idx], fitness[best_idx], history

    def _run_islands(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        # Imported lazily: repro.search.worker imports ga_generation from
        # this module, so a top-level import here would be circular.
        from repro.search.islands import run_island_ga
        from repro.search.spec import SearchSpec

        spec = SearchSpec.from_evaluator(
            evaluator, pool, use_fast_path=True, constraint=self._constraint
        )
        result = run_island_ga(
            spec,
            self._params,
            islands=self._islands,
            migration_interval=self._migration_interval,
            migrants=self._migrants,
            seed=seed,
            rng_parts=(self.name, tuple(pool), evaluator.profile.app_name),
            workers=self.parallel,
            mp_context=self._mp_context,
            deadline=self._deadline(),
            reuse_pool=self._reuse_pool,
        )
        evaluator.record_evaluations(result.evaluations)
        return result.mapping, result.energy, result.history
