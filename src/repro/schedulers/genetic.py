"""GA — genetic-algorithm scheduler (the paper's future-work direction).

Section 8: *"We further intend to investigate the suitability of other
scheduling algorithms, e.g. genetic algorithms, for CBES-supported
scheduling."*  This implementation uses the same CBES energy function as
CS with a steady-state GA: tournament selection, uniform crossover with
duplicate repair (mappings must stay one-process-per-node), and the SA
move set as the mutation operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import MappingEvaluator
from repro.core.fast_eval import FastEvalUnavailable
from repro.core.mapping import TaskMapping
from repro.schedulers.base import MappingConstraint, Scheduler, make_rng
from repro.schedulers.moves import MoveGenerator

__all__ = ["GeneticParams", "GeneticScheduler"]


@dataclass(frozen=True)
class GeneticParams:
    """GA hyperparameters."""

    population: int = 24
    generations: int = 40
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    elite: int = 2
    patience: int = 12

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 2 <= self.tournament <= self.population:
            raise ValueError("tournament size must be in [2, population]")
        for rate in (self.crossover_rate, self.mutation_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be in [0, 1]")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must be in [0, population)")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


class GeneticScheduler(Scheduler):
    """Steady-state GA over the mapping space with the CBES energy."""

    name = "GA"

    def __init__(
        self,
        *,
        params: GeneticParams = GeneticParams(),
        constraint: MappingConstraint | None = None,
    ):
        super().__init__(constraint=constraint)
        self._params = params

    def _run(self, evaluator: MappingEvaluator, pool: list[str], seed: int):
        p = self._params
        rng = make_rng(seed, self.name, tuple(pool), evaluator.profile.app_name)
        moves = MoveGenerator(pool)
        nprocs = evaluator.profile.nprocs

        # Population fitness uses the vectorized full evaluation of the
        # fast path (GA children have no single base mapping to delta
        # against); the reference predict() is the fallback.
        try:
            fit = evaluator.incremental()
        except FastEvalUnavailable:
            fit = evaluator.execution_time

        population = [self._initial_mapping(evaluator, pool, rng) for _ in range(p.population)]
        fitness = [fit(m) for m in population]
        history = [min(fitness)]
        stale = 0
        for _ in range(p.generations):
            order = np.argsort(fitness)
            next_pop = [population[int(i)] for i in order[: p.elite]]
            while len(next_pop) < p.population:
                parent_a = self._tournament(population, fitness, rng)
                parent_b = self._tournament(population, fitness, rng)
                if rng.random() < p.crossover_rate:
                    child = self._crossover(parent_a, parent_b, pool, rng)
                else:
                    child = parent_a
                if rng.random() < p.mutation_rate:
                    child = moves.neighbour(child, rng)
                if self.feasible(child):
                    next_pop.append(child)
                else:
                    next_pop.append(parent_a)
            population = next_pop
            fitness = [fit(m) for m in population]
            best_now = min(fitness)
            if best_now < history[-1] - 1e-12:
                stale = 0
            else:
                stale += 1
            history.append(min(best_now, history[-1]))
            if stale >= p.patience:
                break
        best_idx = int(np.argmin(fitness))
        return population[best_idx], fitness[best_idx], history

    @staticmethod
    def _tournament(
        population: list[TaskMapping], fitness: list[float], rng: np.random.Generator
    ) -> TaskMapping:
        contenders = rng.choice(len(population), size=min(3, len(population)), replace=False)
        winner = min(contenders, key=lambda i: fitness[int(i)])
        return population[int(winner)]

    @staticmethod
    def _crossover(
        a: TaskMapping, b: TaskMapping, pool: list[str], rng: np.random.Generator
    ) -> TaskMapping:
        """Uniform crossover with duplicate repair.

        Genes are per-rank node choices; when the inherited gene is
        already used by an earlier rank, repair with the other parent's
        gene, then with a random unused pool node.
        """
        nprocs = a.nprocs
        used: set[str] = set()
        genes: list[str] = []
        take_a = rng.random(nprocs) < 0.5
        for rank in range(nprocs):
            first = a.node_of(rank) if take_a[rank] else b.node_of(rank)
            second = b.node_of(rank) if take_a[rank] else a.node_of(rank)
            if first not in used:
                genes.append(first)
            elif second not in used:
                genes.append(second)
            else:
                free = [n for n in pool if n not in used]
                genes.append(free[int(rng.integers(len(free)))])
            used.add(genes[-1])
        return TaskMapping(genes)
