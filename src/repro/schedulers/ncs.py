"""NCS — the communication-blind comparison scheduler of section 6.

Identical machinery to CS, but the annealing energy drops the
communication term of eq. (4): it sees node speeds and CPU loads, not
latencies.  Because the score is not a time prediction, the paper
"processed each mapping selected by NCS with the full evaluation
operation" to obtain the normalized prediction — our base class already
reports the full predicted time for the selected mapping.
"""

from __future__ import annotations

from repro.core.evaluation import EvaluationOptions
from repro.schedulers.annealing import AnnealingSchedule
from repro.schedulers.base import MappingConstraint
from repro.schedulers.cs import CbesScheduler

__all__ = ["NoCommScheduler"]


class NoCommScheduler(CbesScheduler):
    """Simulated annealing on the computation-only cost function."""

    name = "NCS"
    energy_options = EvaluationOptions(communication=False)
    #: NCS must pick randomly among equal-speed nodes (paper section 6).
    use_greedy_start = False
    #: The incremental path applies here too — with the communication
    #: term dropped, a move's delta evaluation touches only the moved
    #: ranks (no peer set), so NCS benefits even more than CS.
    use_fast_path = True

    def __init__(
        self,
        *,
        schedule: AnnealingSchedule = AnnealingSchedule(),
        direction: str = "minimize",
        swap_probability: float = 0.5,
        restarts: int = 2,
        share_bound: bool = False,
        constraint: MappingConstraint | None = None,
        **execution,
    ):
        super().__init__(
            schedule=schedule,
            direction=direction,
            swap_probability=swap_probability,
            restarts=restarts,
            share_bound=share_bound,
            constraint=constraint,
            **execution,
        )
