"""Neighbourhood move generators for local-search schedulers.

The simulated-annealing and genetic schedulers explore the mapping space
through two elementary moves:

* **swap** — exchange the nodes of two processes (changes which rank
  sits where, not which nodes are used: this is what exploits
  communication topology);
* **replace** — move one process to an unused node from the pool
  (changes the node *set*: this is what exploits node speed and load).

Both preserve the one-process-per-node invariant.
"""

from __future__ import annotations

from repro._rng import Rng
from repro.core.mapping import TaskMapping

__all__ = ["MoveGenerator"]


class MoveGenerator:
    """Draws random neighbours of a mapping over a fixed node pool."""

    def __init__(self, pool: list[str], *, swap_probability: float = 0.5):
        if not 0.0 <= swap_probability <= 1.0:
            raise ValueError("swap_probability must be in [0, 1]")
        self._pool = list(dict.fromkeys(pool))
        self._swap_p = swap_probability

    @property
    def pool(self) -> list[str]:
        """The candidate node pool moves draw from (a copy)."""
        return list(self._pool)

    def neighbour(self, mapping: TaskMapping, rng: Rng) -> TaskMapping:
        """One random elementary move applied to *mapping*."""
        nprocs = mapping.nprocs
        free = [n for n in self._pool if n not in mapping.nodes_used()]
        can_swap = nprocs >= 2
        can_replace = bool(free)
        if not can_swap and not can_replace:
            return mapping
        do_swap = can_swap and (not can_replace or rng.random() < self._swap_p)
        if do_swap:
            a, b = rng.choice(nprocs, size=2, replace=False)
            return mapping.with_swap(int(a), int(b))
        rank = int(rng.integers(nprocs))
        node = free[int(rng.integers(len(free)))]
        return mapping.with_assignment(rank, node)

    def neighbours(self, mapping: TaskMapping, count: int, rng: Rng) -> list[TaskMapping]:
        """*count* independent random neighbours."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.neighbour(mapping, rng) for _ in range(count)]
