"""Scheduler interface and common plumbing.

A scheduler, in the paper's architecture, is an external *client* of the
CBES core: it proposes candidate mappings and uses the mapping
evaluation operation as its objective function.  All schedulers here
share the same contract: given an evaluator bound to an application and
a pool of candidate nodes, return the mapping they consider best, plus
bookkeeping (evaluation count, wall time) that reproduces the paper's
"approximate scheduler time" column.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro._rng import Rng
from repro._util import spawn_rng
from repro.core.evaluation import MappingEvaluator
from repro.core.mapping import TaskMapping
from repro.telemetry import get_registry, get_tracer

__all__ = ["ScheduleResult", "Scheduler", "MappingConstraint", "random_mapping"]

#: Optional predicate restricting the feasible mapping set (e.g. "must
#: include at least one Intel node" for the paper's zone experiments).
MappingConstraint = Callable[[TaskMapping], bool]


@dataclass
class ScheduleResult:
    """Outcome of one scheduling request."""

    mapping: TaskMapping
    predicted_time: float
    evaluations: int
    wall_time_s: float
    scheduler: str
    #: Trajectory of best predicted time over evaluations (for studies).
    history: list[float] = field(default_factory=list)


class Scheduler(ABC):
    """Base class for CBES-attached schedulers.

    Every scheduler accepts the *execution* options of the parallel
    search engine (:mod:`repro.search`): ``parallel`` worker processes
    and an optional ``time_budget`` in seconds.  Schedulers that have
    nothing to parallelize (RS, greedy) accept and ignore them, so the
    registry, the daemon, and the CLI can set them uniformly.
    """

    #: Human-readable scheduler tag (CS / NCS / RS / ...).
    name: str = "scheduler"

    def __init__(
        self,
        *,
        constraint: MappingConstraint | None = None,
        parallel: int = 1,
        time_budget: float | None = None,
        mp_context: str | None = None,
        reuse_pool: bool | None = None,
    ):
        self._constraint = constraint
        self._parallel = 1
        self._time_budget: float | None = None
        self._mp_context: str | None = None
        self._reuse_pool: bool | None = None
        self.set_execution(
            parallel=parallel,
            time_budget=time_budget,
            mp_context=mp_context,
            reuse_pool=reuse_pool,
        )

    def set_execution(
        self,
        *,
        parallel: int | None = None,
        time_budget: float | None = None,
        mp_context: str | None = None,
        reuse_pool: bool | None = None,
    ) -> "Scheduler":
        """Adjust the execution options in place; returns ``self``.

        ``reuse_pool`` controls whether parallel runs use the persistent
        warm worker pool (:mod:`repro.search.pool`); ``None`` defers to
        the ``REPRO_WARM_POOL`` environment default (on).
        """
        if parallel is not None:
            if not isinstance(parallel, int) or isinstance(parallel, bool) or parallel < 1:
                raise ValueError(f"parallel must be an integer >= 1, got {parallel!r}")
            self._parallel = parallel
        if time_budget is not None:
            if not isinstance(time_budget, (int, float)) or isinstance(time_budget, bool):
                raise ValueError(f"time_budget must be a number of seconds, got {time_budget!r}")
            if time_budget <= 0:
                raise ValueError(f"time_budget must be > 0 seconds, got {time_budget!r}")
            self._time_budget = float(time_budget)
        if mp_context is not None:
            self._mp_context = mp_context
        if reuse_pool is not None:
            self._reuse_pool = bool(reuse_pool)
        return self

    @property
    def parallel(self) -> int:
        """How many worker processes the search may fan out over."""
        return self._parallel

    @property
    def time_budget(self) -> float | None:
        """Optional wall-clock budget (seconds) for one schedule() call."""
        return self._time_budget

    def _deadline(self) -> float | None:
        """The absolute monotonic deadline for a run starting now."""
        if self._time_budget is None:
            return None
        return time.monotonic() + self._time_budget

    def feasible(self, mapping: TaskMapping) -> bool:
        """Whether a mapping satisfies the attached constraint."""
        return self._constraint is None or self._constraint(mapping)

    def schedule(
        self, evaluator: MappingEvaluator, pool: Sequence[str], *, seed: int = 0
    ) -> ScheduleResult:
        """Pick a mapping for the evaluator's application from *pool*."""
        nprocs = evaluator.profile.nprocs
        pool = list(dict.fromkeys(pool))
        if len(pool) < nprocs:
            raise ValueError(
                f"pool of {len(pool)} nodes cannot host {nprocs} processes one-per-node"
            )
        start_evals = evaluator.evaluations
        started = time.perf_counter()
        with get_tracer().trace(
            "scheduler.run", scheduler=self.name, pool=len(pool), seed=seed
        ) as span:
            mapping, predicted, history = self._run(evaluator, pool, seed)
        result = ScheduleResult(
            mapping=mapping,
            predicted_time=predicted,
            evaluations=evaluator.evaluations - start_evals,
            wall_time_s=time.perf_counter() - started,
            scheduler=self.name,
            history=history,
        )
        span.set_attribute("evaluations", result.evaluations)
        span.set_attribute("predicted_time", result.predicted_time)
        registry = get_registry()
        registry.counter(
            "cbes_evaluations_total", "Mapping evaluations consumed by scheduling."
        ).inc(result.evaluations)
        registry.histogram(
            "cbes_schedule_seconds", "Wall time of one schedule() call.", ("scheduler",)
        ).observe(result.wall_time_s, scheduler=self.name)
        registry.gauge(
            "cbes_search_best_energy",
            "Best predicted execution time found by the last run.",
            ("scheduler",),
        ).set(result.predicted_time, scheduler=self.name)
        return result

    @abstractmethod
    def _run(
        self, evaluator: MappingEvaluator, pool: list[str], seed: int
    ) -> tuple[TaskMapping, float, list[float]]:
        """Scheduler-specific search.  Returns (mapping, energy, history)."""

    def _initial_mapping(
        self, evaluator: MappingEvaluator, pool: list[str], rng: Rng
    ) -> TaskMapping:
        """A random feasible starting point (rejection sampling)."""
        nprocs = evaluator.profile.nprocs
        for _ in range(10_000):
            mapping = random_mapping(pool, nprocs, rng)
            if self.feasible(mapping):
                return mapping
        raise RuntimeError(
            f"{self.name}: could not draw a feasible mapping from the pool; "
            "the constraint may be unsatisfiable"
        )


def random_mapping(pool: Sequence[str], nprocs: int, rng: Rng) -> TaskMapping:
    """A uniform random one-process-per-node mapping over *pool*."""
    if len(pool) < nprocs:
        raise ValueError("pool smaller than process count")
    idx = rng.choice(len(pool), size=nprocs, replace=False)
    return TaskMapping([pool[int(i)] for i in idx])


def make_rng(seed: int, *parts: object) -> Rng:
    """Seeded RNG for scheduler runs (re-export of the shared helper)."""
    return spawn_rng(seed, *parts)
