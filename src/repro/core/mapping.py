"""Mappings of application tasks onto cluster nodes (paper eqs. 1–3).

A mapping ``M`` is a set of ``(process, node)`` pairs, one per process.
We represent it as an immutable assignment ``rank -> node id``; the
scheduler moves (:mod:`repro.schedulers.moves`) derive neighbours from
it without mutation.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.errors import InvalidMappingError

__all__ = ["TaskMapping"]


class TaskMapping:
    """An immutable assignment of ``nM`` processes to cluster nodes."""

    __slots__ = ("_nodes", "_hash")

    def __init__(self, nodes: Sequence[str] | Mapping[int, str]):
        if isinstance(nodes, Mapping):
            if sorted(nodes) != list(range(len(nodes))):
                raise InvalidMappingError("mapping keys must be exactly ranks 0..n-1")
            seq = tuple(nodes[r] for r in range(len(nodes)))
        else:
            seq = tuple(nodes)
        if not seq:
            raise InvalidMappingError("a mapping must place at least one process")
        if not all(isinstance(n, str) and n for n in seq):
            raise InvalidMappingError("node ids must be nonempty strings")
        self._nodes = seq
        self._hash = hash(seq)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, str]]) -> "TaskMapping":
        """Build from explicit (process, node) pairs, the paper's form."""
        d = {}
        for rank, node in pairs:
            if rank in d:
                raise InvalidMappingError(f"process {rank} assigned twice")
            d[rank] = node
        return cls(d)

    # -- queries ------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Number of application processes this mapping places."""
        return len(self._nodes)

    def node_of(self, rank: int) -> str:
        """The node hosting MPI rank *rank*."""
        if not 0 <= rank < len(self._nodes):
            raise InvalidMappingError(f"rank {rank} out of range for {len(self._nodes)} processes")
        return self._nodes[rank]

    def as_dict(self) -> dict[int, str]:
        """The mapping as a rank -> node-id dictionary."""
        return {r: n for r, n in enumerate(self._nodes)}

    def as_tuple(self) -> tuple[str, ...]:
        """The mapping as a node-id tuple indexed by rank."""
        return self._nodes

    def nodes_used(self) -> frozenset[str]:
        """The distinct node ids this mapping occupies."""
        return frozenset(self._nodes)

    def procs_per_node(self) -> dict[str, int]:
        """How many processes each used node hosts under this mapping."""
        counts: dict[str, int] = {}
        for node in self._nodes:
            counts[node] = counts.get(node, 0) + 1
        return counts

    @property
    def is_one_per_node(self) -> bool:
        """Whether no node hosts more than one process (paper default)."""
        return len(set(self._nodes)) == len(self._nodes)

    def require_nodes(self, valid: Iterable[str]) -> None:
        """Raise unless every assigned node is in *valid*."""
        pool = set(valid)
        unknown = [n for n in self._nodes if n not in pool]
        if unknown:
            raise InvalidMappingError(f"mapping uses nodes outside the pool: {sorted(set(unknown))}")

    # -- derivation ----------------------------------------------------------
    def with_assignment(self, rank: int, node: str) -> "TaskMapping":
        """A copy with one process moved to *node*."""
        if not 0 <= rank < len(self._nodes):
            raise InvalidMappingError(f"rank {rank} out of range")
        nodes = list(self._nodes)
        nodes[rank] = node
        return TaskMapping(nodes)

    def with_swap(self, rank_a: int, rank_b: int) -> "TaskMapping":
        """A copy with two processes' nodes swapped."""
        nodes = list(self._nodes)
        try:
            nodes[rank_a], nodes[rank_b] = nodes[rank_b], nodes[rank_a]
        except IndexError:
            raise InvalidMappingError("swap ranks out of range") from None
        return TaskMapping(nodes)

    # -- dunder ----------------------------------------------------------------
    def __reduce__(self):
        """Pickle by node sequence, never by cached state.

        ``_hash`` caches ``hash()`` of the node tuple, and string hashing
        is salted per interpreter run — a mapping shipped to another
        process must recompute it there or equal mappings would disagree
        in sets and dicts.
        """
        return (TaskMapping, (self._nodes,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TaskMapping) and self._nodes == other._nodes

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskMapping({list(self._nodes)!r})"
