"""The mapping evaluation operation (paper section 3, eqs. 4–8).

For a mapping ``M`` the predicted execution time is

.. math::  S_M = \\max_i (R_i + C_i)

with the computation term (eq. 5)

.. math::  R_i = (X_i + O_i) \\cdot \\frac{Speed_{profile_j}}{Speed_j}
           \\cdot \\frac{1}{ACPU_j}

and the communication term (eq. 8) ``C_i = Theta_i^M * lambda_i``,
where ``Theta_i^M`` (eq. 6) sums ``count * L_c(...)`` over the
process's message groups under the candidate mapping and ``lambda_i``
(eq. 7) is the profile's overlap/overhead correction factor.

``MappingEvaluator`` exposes toggles for the two CBES ablations studied
here (and used by the NCS scheduler of section 6): dropping the
communication term entirely, dropping the lambda correction, and using
no-load rather than load-adjusted latencies.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass

from repro.cluster.latency import LatencyModel
from repro.cluster.node import Node
from repro.core.errors import InvalidMappingError
from repro.core.mapping import TaskMapping
from repro.monitoring.snapshot import SystemSnapshot
from repro.profiling.profile import ApplicationProfile, theta

__all__ = ["EvaluationOptions", "ProcessPrediction", "MappingPrediction", "MappingEvaluator"]


@dataclass(frozen=True)
class EvaluationOptions:
    """Which terms of the cost formula to include."""

    #: Include the communication term C_i (False reproduces NCS).
    communication: bool = True
    #: Apply the lambda_i correction of eq. (7) (ablation knob).
    use_lambda: bool = True
    #: Use load-adjusted latencies L_c; False falls back to no-load L_0.
    load_adjusted_latency: bool = True
    #: Account for CPU availability (the 1/ACPU_j factor of eq. 5).
    cpu_availability: bool = True


@dataclass(frozen=True)
class ProcessPrediction:
    """Per-process contribution to a mapping's predicted time."""

    rank: int
    node_id: str
    computation: float  # R_i
    communication: float  # C_i

    @property
    def total(self) -> float:
        """``R_i + C_i``: this process's predicted busy time (eq. 4)."""
        return self.computation + self.communication


@dataclass(frozen=True)
class MappingPrediction:
    """Result of evaluating one mapping."""

    mapping: TaskMapping
    processes: tuple[ProcessPrediction, ...]

    @property
    def execution_time(self) -> float:
        """``S_M``: the predicted application execution time (eq. 4)."""
        return max(p.total for p in self.processes)

    @property
    def critical_rank(self) -> int:
        """``i_M``: the process that defines the execution time."""
        return max(self.processes, key=lambda p: (p.total, -p.rank)).rank

    def breakdown(self, rank: int) -> ProcessPrediction:
        """The per-process R_i/C_i split for one MPI rank."""
        if not 0 <= rank < len(self.processes):
            raise ValueError(f"rank {rank} out of range")
        return self.processes[rank]


class MappingEvaluator:
    """Evaluates candidate mappings for one profiled application.

    Parameters
    ----------
    profile:
        The application profile (from the profiling subsystem).
    latency_model:
        The *calibrated* cluster latency model.
    nodes:
        Static node table of the cluster (hardware description).
    snapshot:
        Current resource availability (from the monitoring subsystem).
    options:
        Term toggles; defaults give the full CBES formula.
    """

    def __init__(
        self,
        profile: ApplicationProfile,
        latency_model: LatencyModel,
        nodes: MappingABC[str, Node],
        snapshot: SystemSnapshot,
        options: EvaluationOptions = EvaluationOptions(),
    ) -> None:
        self._profile = profile
        self._latency = latency_model
        self._nodes = nodes
        self._snapshot = snapshot
        self._options = options
        self._evaluations = 0
        # Fast-path contexts cached by (options, snapshot fingerprint);
        # see fast_context() for the invalidation rule.
        self._fast_contexts: dict[tuple, object] = {}

    @property
    def profile(self) -> ApplicationProfile:
        """The application profile this evaluator predicts for."""
        return self._profile

    @property
    def options(self) -> EvaluationOptions:
        """The evaluation options used when no override is passed."""
        return self._options

    @property
    def latency_model(self) -> LatencyModel:
        """The calibrated latency model this evaluator reads."""
        return self._latency

    @property
    def nodes(self) -> MappingABC[str, Node]:
        """The static node table of the cluster."""
        return self._nodes

    @property
    def snapshot(self) -> SystemSnapshot:
        """The resource-availability snapshot evaluations are served from."""
        return self._snapshot

    @property
    def evaluations(self) -> int:
        """Number of evaluations served (scheduler cost metric).

        Counts both reference :meth:`predict` calls and fast-path
        evaluations served by :meth:`incremental` evaluators.
        """
        return self._evaluations

    def record_evaluations(self, count: int = 1) -> None:
        """Count *count* externally served evaluations (fast path)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._evaluations += count

    def with_snapshot(self, snapshot: SystemSnapshot) -> "MappingEvaluator":
        """A copy bound to fresher monitoring data.

        The ``evaluations`` counter carries over: the copy continues the
        same scheduling request, so its cost metric must not reset on a
        monitoring refresh.
        """
        clone = MappingEvaluator(self._profile, self._latency, self._nodes, snapshot, self._options)
        clone._evaluations = self._evaluations
        return clone

    def with_options(self, options: EvaluationOptions) -> "MappingEvaluator":
        """A copy with different term toggles (counter carries over)."""
        clone = MappingEvaluator(self._profile, self._latency, self._nodes, self._snapshot, options)
        clone._evaluations = self._evaluations
        return clone

    # -- fast path ------------------------------------------------------
    def fast_context(self, options: EvaluationOptions | None = None):
        """The cached :class:`~repro.core.fast_eval.EvaluationContext`.

        Contexts are cached per (options, snapshot fingerprint): a
        snapshot whose content changed — even in place — produces a new
        fingerprint and therefore a fresh context, so stale precomputed
        ACPU/latency tables can never serve an evaluation.

        Raises :class:`~repro.core.fast_eval.FastEvalUnavailable` when
        the configuration cannot use the fast path.
        """
        from repro.core.fast_eval import EvaluationContext

        from repro.telemetry import get_registry

        opts = options if options is not None else self._options
        key = (opts, self._snapshot.fingerprint())
        context = self._fast_contexts.get(key)
        if context is None:
            get_registry().counter(
                "cbes_context_builds_total",
                "EvaluationContext cache misses (fast-path precompute rebuilds).",
            ).inc()
            context = EvaluationContext(
                self._profile, self._latency, self._nodes, self._snapshot, opts
            )
            # Keep one snapshot generation at a time: drop contexts
            # built from snapshots with a different fingerprint.
            stale = [k for k in self._fast_contexts if k[1] != key[1]]
            for k in stale:
                del self._fast_contexts[k]
            self._fast_contexts[key] = context
        return context

    def install_context(self, context) -> None:
        """Adopt a prebuilt :class:`~repro.core.fast_eval.EvaluationContext`.

        Long-running services keep contexts across requests (one per
        application/options pair) and hand them to the short-lived
        evaluator serving each request, so the fast path's precomputation
        is paid once per snapshot generation rather than once per job.
        The context must have been built for this evaluator's profile and
        current snapshot; a fingerprint mismatch means the monitoring
        data moved on and the context is stale.
        """
        if context.profile is not self._profile:
            raise ValueError("context was built for a different application profile")
        fingerprint = self._snapshot.fingerprint()
        if context.snapshot_fingerprint != fingerprint:
            raise ValueError("context was built from a different snapshot (stale fingerprint)")
        self._fast_contexts[(context.options, fingerprint)] = context

    def incremental(self, options: EvaluationOptions | None = None):
        """A fresh :class:`~repro.core.fast_eval.IncrementalEvaluator`.

        The returned evaluator serves ``propose``/``commit``/``reject``
        delta evaluations against this evaluator's snapshot and counts
        every served evaluation into :attr:`evaluations`.
        """
        from repro.core.fast_eval import IncrementalEvaluator

        return IncrementalEvaluator(
            self.fast_context(options), on_evaluate=self.record_evaluations
        )

    # ------------------------------------------------------------------
    def predict(
        self, mapping: TaskMapping, *, options: EvaluationOptions | None = None
    ) -> MappingPrediction:
        """Predict the application's execution time under *mapping*.

        *options* overrides the evaluator's default term toggles for
        this one call (used e.g. by the NCS scheduler, which anneals on
        the computation-only energy but reports full predictions).
        """
        prof = self._profile
        if mapping.nprocs != prof.nprocs:
            raise InvalidMappingError(
                f"mapping places {mapping.nprocs} processes but profile has {prof.nprocs}"
            )
        for node_id in mapping.nodes_used():
            if node_id not in self._nodes:
                raise InvalidMappingError(f"mapping uses unknown node {node_id!r}")
        self._evaluations += 1
        opts = options if options is not None else self._options
        snapshot = self._snapshot
        per_node = mapping.procs_per_node()
        map_dict = mapping.as_dict()

        # ACPU per used node, accounting for co-mapped processes.
        acpu: dict[str, float] = {}
        for node_id, nprocs_here in per_node.items():
            acpu[node_id] = snapshot.acpu(node_id, nprocs_here) if opts.cpu_availability else 1.0

        def latency_fn(src: str, dst: str, size: float) -> float:
            if not opts.load_adjusted_latency:
                return self._latency.no_load(src, dst, size)
            # Membership check, not `or`: a fully loaded co-mapped node
            # can legitimately have acpu == 0.0 entries (falsy), which
            # must not be replaced by the colocation-unaware snapshot
            # value.
            return self._latency.current(
                src,
                dst,
                size,
                acpu_src=acpu[src] if src in acpu else snapshot.acpu(src),
                acpu_dst=acpu[dst] if dst in acpu else snapshot.acpu(dst),
                nic_src=snapshot.nic_load(src),
                nic_dst=snapshot.nic_load(dst),
            )

        predictions = []
        for proc in prof.processes:
            node = self._nodes[map_dict[proc.rank]]
            speed_j = node.speed_for(prof.arch_speed_ratios)
            speed_profile = prof.profile_speeds[proc.rank]
            r_i = proc.compute_time * (speed_profile / speed_j) / acpu[node.node_id]
            if opts.communication:
                theta_m = theta(proc, map_dict, latency_fn)
                c_i = theta_m * (proc.lam if opts.use_lambda else 1.0)
            else:
                c_i = 0.0
            predictions.append(
                ProcessPrediction(
                    rank=proc.rank,
                    node_id=node.node_id,
                    computation=r_i,
                    communication=c_i,
                )
            )
        return MappingPrediction(mapping=mapping, processes=tuple(predictions))

    def execution_time(
        self, mapping: TaskMapping, *, options: EvaluationOptions | None = None
    ) -> float:
        """Shortcut: just ``S_M`` (the SA energy function)."""
        return self.predict(mapping, options=options).execution_time

    def execution_times(
        self, mappings: list[TaskMapping], *, options: EvaluationOptions | None = None
    ) -> list[float]:
        """``S_M`` for a whole population of mappings, in input order.

        One batched :meth:`~repro.core.fast_eval.EvaluationContext.
        evaluate_many` sweep when the fast path is available, a
        :meth:`predict` loop otherwise; either way every mapping counts
        exactly one evaluation, so the scheduler cost metric is
        independent of how the population was submitted.
        """
        from repro.core.fast_eval import FastEvalUnavailable

        mappings = list(mappings)
        if not mappings:
            return []
        try:
            context = self.fast_context(options)
        except FastEvalUnavailable:
            return [self.predict(m, options=options).execution_time for m in mappings]
        energies = context.evaluate_many(mappings)
        self.record_evaluations(len(mappings))
        return energies

    def compare(self, mappings: list[TaskMapping]) -> list[MappingPrediction]:
        """Evaluate several candidate mappings, best (fastest) first.

        This is the core module's *mapping comparison* request: the
        client hands in candidate mappings, the service returns their
        predicted execution times in increasing order.
        """
        if not mappings:
            raise InvalidMappingError("compare() requires at least one mapping")
        results = [self.predict(m) for m in mappings]
        return sorted(results, key=lambda p: p.execution_time)
