"""The CBES service facade.

Ties the subsystems together the way figure 2 of the paper draws them:
the *system* side (calibrated latency model + monitoring daemons) and
the *application* side (profile database + profiling runs) feed the core
mapping-evaluation module, which serves mapping comparison requests from
external clients such as the schedulers.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.cluster.cluster import Cluster
from repro.core.errors import NotCalibratedError, UnknownProfileError
from repro.core.evaluation import EvaluationOptions, MappingEvaluator, MappingPrediction
from repro.core.mapping import TaskMapping
from repro.monitoring.monitor import SystemMonitor
from repro.monitoring.snapshot import SystemSnapshot
from repro.profiling.analyzer import TraceAnalyzer
from repro.profiling.profile import ApplicationProfile
from repro.profiling.speeds import measure_speed_ratios
from repro.simulate.engine import ClusterSimulator, SimulationConfig
from repro.simulate.program import Program

__all__ = ["ApplicationModel", "CBES"]


@runtime_checkable
class ApplicationModel(Protocol):
    """What the service needs from an application to profile it.

    Workload models in :mod:`repro.workloads` satisfy this protocol.
    """

    name: str

    def program(self, nprocs: int) -> Program:
        """The application's op stream for a given process count."""

    def arch_affinity(self, arch_name: str) -> float:
        """The application's relative speed multiplier on an architecture."""


class CBES:
    """Cost/Benefit Estimating Service for one cluster.

    Typical lifecycle (mirrors the paper's operational phases)::

        service = CBES(orange_grove())
        service.calibrate()                  # one-off off-line phase
        service.start_monitoring()           # daemons begin polling
        profile = service.profile_application(app, nprocs=8)
        evaluator = service.evaluator(app.name)
        ranked = service.compare(app.name, candidate_mappings)
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        monitor: SystemMonitor | None = None,
        simulator_config: SimulationConfig | None = None,
    ) -> None:
        self._cluster = cluster
        self._monitor = monitor
        self._profiles: dict[str, ApplicationProfile] = {}
        self._simulator = ClusterSimulator(cluster, simulator_config)

    # -- system side ------------------------------------------------------
    @property
    def cluster(self) -> Cluster:
        """The cluster model this service instance is attached to."""
        return self._cluster

    @property
    def simulator(self) -> ClusterSimulator:
        """The measurement substrate (stands in for the real cluster)."""
        return self._simulator

    def calibrate(self, *, noise: float = 0.01, seed: int = 0):
        """Run the off-line system calibration phase (section 2).

        The cluster must be unloaded, exactly as the paper requires.
        """
        loaded = [
            nid
            for nid, node in self._cluster.nodes.items()
            if node.background_load > 0 or node.nic_load > 0
        ]
        if loaded:
            raise NotCalibratedError(
                f"calibration requires an unloaded system; loaded nodes: {loaded[:5]}"
            )
        return self._cluster.calibrate(noise=noise, seed=seed)

    def start_monitoring(self, *, forecaster: str = "last-value", seed: int = 0, **kwargs) -> SystemMonitor:
        """Create and attach the monitoring daemons.

        Idempotent for long-running processes (the scheduling daemon
        restarts monitoring after snapshot-refresh failures): when a
        monitor is already attached, the call is a no-op returning the
        existing monitor.  Call :meth:`stop_monitoring` first to attach
        one with different settings.
        """
        if self._monitor is None:
            self._monitor = SystemMonitor(self._cluster, forecaster=forecaster, seed=seed, **kwargs)
        return self._monitor

    def stop_monitoring(self) -> None:
        """Detach the monitoring daemons; a no-op when none are attached."""
        self._monitor = None

    @staticmethod
    def shutdown_workers(*, wait: bool = True) -> None:
        """Tear down the process-wide warm search worker pool.

        Parallel ``schedule()`` calls keep a persistent worker pool warm
        between requests (:mod:`repro.search.pool`); this releases those
        processes now instead of waiting for the idle reaper or
        interpreter exit.  The next parallel schedule call starts cold.
        """
        from repro.search.pool import shutdown_pool

        shutdown_pool(wait=wait)

    @property
    def is_monitoring(self) -> bool:
        """Whether a monitor is currently attached."""
        return self._monitor is not None

    @property
    def monitor(self) -> SystemMonitor:
        """The attached system monitor (raises until monitoring starts)."""
        if self._monitor is None:
            raise NotCalibratedError("no monitor attached; call start_monitoring() first")
        return self._monitor

    def snapshot(self) -> SystemSnapshot:
        """Current resource availability, from the monitor if present.

        Without a monitor the *true* cluster state is used (an oracle —
        convenient for controlled experiments; the real service always
        goes through the monitor).
        """
        if self._monitor is not None:
            if self._monitor.polls == 0:
                self._monitor.poll()
            return self._monitor.snapshot()
        return SystemSnapshot.from_cluster(self._cluster)

    # -- application side -----------------------------------------------------
    def register_profile(self, profile: ApplicationProfile) -> None:
        """Add a profile to the application profile database."""
        self._profiles[profile.app_name] = profile

    def profile(self, app_name: str) -> ApplicationProfile:
        """The stored profile for *app_name* (raises if never profiled)."""
        try:
            return self._profiles[app_name]
        except KeyError:
            raise UnknownProfileError(
                f"no profile for {app_name!r}; run profile_application() first"
            ) from None

    @property
    def profiled_applications(self) -> list[str]:
        """Names of every application with a profile in the database."""
        return sorted(self._profiles)

    def profile_application(
        self,
        app: ApplicationModel,
        nprocs: int,
        *,
        mapping: TaskMapping | None = None,
        seed: int = 0,
        per_segment: bool = False,
    ) -> ApplicationProfile:
        """Run the application once under tracing and build its profile.

        The profiling run uses the given mapping (default: the first
        *nprocs* nodes of the cluster) on the *unloaded* system, then
        analyzes the trace into a profile, measures per-architecture
        speed ratios, and registers the result in the profile database.
        """
        if not self._cluster.is_calibrated:
            raise NotCalibratedError("calibrate the system before profiling applications")
        program = app.program(nprocs)
        if mapping is None:
            mapping = TaskMapping(self._cluster.node_ids()[:nprocs])
        mapping.require_nodes(self._cluster.node_ids())
        result = self._simulator.run(
            program, mapping.as_dict(), seed=seed, arch_affinity=app.arch_affinity
        )
        assert result.trace is not None
        speed_ratios = measure_speed_ratios(
            self._cluster.architectures().values(),
            affinity=app.arch_affinity,
            seed=seed,
            app_name=app.name,
        )
        profile_speeds = {
            rank: self._cluster.node(mapping.node_of(rank)).speed_for(speed_ratios)
            for rank in range(nprocs)
        }
        analyzer = TraceAnalyzer(self._cluster.latency_model)
        profile = analyzer.analyze(
            result.trace,
            profile_speeds=profile_speeds,
            arch_speed_ratios=speed_ratios,
            per_segment=per_segment,
        )
        self.register_profile(profile)
        return profile

    # -- core: mapping comparison ------------------------------------------------
    def evaluator(
        self,
        app_name: str,
        *,
        options: EvaluationOptions = EvaluationOptions(),
        snapshot: SystemSnapshot | None = None,
    ) -> MappingEvaluator:
        """A mapping evaluator bound to the named application and fresh data."""
        if not self._cluster.is_calibrated:
            raise NotCalibratedError("calibrate the system before evaluating mappings")
        return MappingEvaluator(
            profile=self.profile(app_name),
            latency_model=self._cluster.latency_model,
            nodes=self._cluster.nodes,
            snapshot=snapshot if snapshot is not None else self.snapshot(),
            options=options,
        )

    def compare(
        self,
        app_name: str,
        mappings: Sequence[TaskMapping],
        *,
        options: EvaluationOptions = EvaluationOptions(),
    ) -> list[MappingPrediction]:
        """Serve a mapping comparison request: candidates ranked fastest first."""
        return self.evaluator(app_name, options=options).compare(list(mappings))

    def schedule(
        self,
        app_name: str,
        scheduler: "SchedulerLike",
        pool: Sequence[str],
        *,
        options: EvaluationOptions = EvaluationOptions(),
        seed: int = 0,
        parallel: int | None = None,
        time_budget: float | None = None,
    ):
        """Run an external scheduler against this service's evaluator.

        *parallel* / *time_budget* override the scheduler's execution
        options for this call (worker-process fan-out and wall-clock
        budget of the parallel search engine, :mod:`repro.search`);
        schedulers without a ``set_execution`` hook only accept the
        defaults.
        """
        from repro.telemetry import get_tracer

        if parallel is not None or time_budget is not None:
            set_execution = getattr(scheduler, "set_execution", None)
            if set_execution is None:
                raise TypeError(
                    f"scheduler {scheduler!r} does not support execution options"
                )
            set_execution(parallel=parallel, time_budget=time_budget)
        with get_tracer().trace(
            "cbes.schedule",
            app=app_name,
            scheduler=getattr(scheduler, "name", type(scheduler).__name__),
            pool=len(pool),
            seed=seed,
        ):
            evaluator = self.evaluator(app_name, options=options)
            return scheduler.schedule(evaluator, list(pool), seed=seed)


@runtime_checkable
class SchedulerLike(Protocol):
    """Anything that can pick a mapping given an evaluator and a node pool."""

    def schedule(self, evaluator: MappingEvaluator, pool: list[str], *, seed: int = 0):
        """Pick a mapping for the evaluator's application from *pool*."""
        ...
