"""Per-segment scheduling (paper sections 4 and 6.2).

LAM/MPI markers split an application's trace into segments and the
modified XMPI generates "a basic profile for each segment"; section 6.2
then argues that *"an application run may consist of a core segment
repeated any number of times — one would need to pay the overhead for
finding a mapping for this core segment only once."*

:class:`SegmentScheduler` operationalizes both ideas: schedule each
segment on its own profile, cache the result, and report how the
scheduling overhead amortizes over repeated executions of the segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CbesError
from repro.core.mapping import TaskMapping
from repro.core.service import CBES
from repro.profiling.profile import ApplicationProfile

__all__ = ["SegmentPlan", "SegmentScheduler"]


@dataclass(frozen=True)
class SegmentPlan:
    """The chosen mapping for one program segment."""

    app_name: str
    segment: int
    mapping: TaskMapping
    predicted_time: float
    scheduler_time_s: float

    def amortized_overhead(self, repetitions: int) -> float:
        """Scheduler cost per execution when the segment repeats."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        return self.scheduler_time_s / repetitions

    def worthwhile(self, repetitions: int, *, baseline_time: float) -> bool:
        """Does scheduling pay for itself over *repetitions* runs?

        ``baseline_time`` is the segment's expected time under an
        unscheduled (e.g. random) mapping; the gain per repetition must
        beat the amortized scheduler cost.
        """
        gain = baseline_time - self.predicted_time
        return gain * repetitions > self.scheduler_time_s


class SegmentScheduler:
    """Schedules marker-delimited program segments independently."""

    def __init__(self, service: CBES, scheduler, *, pool: list[str]):
        if not pool:
            raise CbesError("segment scheduler needs a nonempty node pool")
        self._service = service
        self._scheduler = scheduler
        self._pool = list(pool)
        self._plans: dict[tuple[str, int], SegmentPlan] = {}

    def _segment_profile(self, app_name: str, segment: int) -> ApplicationProfile:
        profile = self._service.profile(app_name)
        seg = profile.segments.get(segment)
        if seg is None:
            raise CbesError(
                f"{app_name!r} has no per-segment profile for segment {segment}; "
                "profile with per_segment=True and marker-delimited phases"
            )
        return seg

    def schedule_segment(self, app_name: str, segment: int, *, seed: int = 0) -> SegmentPlan:
        """Pick (and cache) a mapping for one segment.

        The segment's own profile is temporarily registered under a
        qualified name so the evaluator sees segment-specific X/O/B and
        message groups.
        """
        key = (app_name, segment)
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        seg_profile = self._segment_profile(app_name, segment)
        qualified = f"{app_name}#seg{segment}"
        # Register under the qualified name for evaluation purposes.
        renamed = ApplicationProfile(
            app_name=qualified,
            nprocs=seg_profile.nprocs,
            processes=seg_profile.processes,
            profile_mapping=seg_profile.profile_mapping,
            profile_speeds=seg_profile.profile_speeds,
            arch_speed_ratios=dict(seg_profile.arch_speed_ratios)
            or dict(self._service.profile(app_name).arch_speed_ratios),
        )
        self._service.register_profile(renamed)
        result = self._service.schedule(qualified, self._scheduler, self._pool, seed=seed)
        plan = SegmentPlan(
            app_name=app_name,
            segment=segment,
            mapping=result.mapping,
            predicted_time=result.predicted_time,
            scheduler_time_s=result.wall_time_s,
        )
        self._plans[key] = plan
        return plan

    def schedule_all(self, app_name: str, *, seed: int = 0) -> dict[int, SegmentPlan]:
        """Plans for every profiled segment of the application."""
        profile = self._service.profile(app_name)
        if not profile.segments:
            raise CbesError(f"{app_name!r} has no per-segment profiles")
        return {
            segment: self.schedule_segment(app_name, segment, seed=seed + segment)
            for segment in sorted(profile.segments)
        }

    @property
    def plans(self) -> dict[tuple[str, int], SegmentPlan]:
        """Per-(application, segment) plans computed so far (a copy)."""
        return dict(self._plans)
