"""Shared-cluster arbitration: scheduling several applications at once.

Section 2: *"In the general case, the resources of a cluster are shared
among multiple applications, thus presenting variations in
availability."*  CBES handles the sharing through the ``ACPU`` term —
what it needs is an account of how much CPU each node has already
promised.  :class:`ClusterReservations` keeps that ledger: every placed
application contributes expected load to its nodes, and scheduling the
*next* application sees a snapshot with those reservations folded in, so
the SA naturally routes it around busy nodes (or accepts co-location
when the cost model says timesharing is still the fastest option).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CbesError
from repro.core.mapping import TaskMapping
from repro.core.service import CBES
from repro.monitoring.snapshot import NodeState, SystemSnapshot

__all__ = ["Reservation", "ClusterReservations"]


@dataclass(frozen=True)
class Reservation:
    """One placed application's claim on cluster resources."""

    app_name: str
    mapping: TaskMapping
    #: Expected CPU demand per process in CPU-equivalents (1.0 = a
    #: fully compute-bound process; communication-heavy apps claim less).
    cpu_demand: float = 1.0
    #: Expected NIC utilisation contributed per process (0..1).
    nic_demand: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_demand < 0:
            raise ValueError("cpu_demand must be >= 0")
        if not 0.0 <= self.nic_demand <= 1.0:
            raise ValueError("nic_demand must be in [0, 1]")


class ClusterReservations:
    """Ledger of placed applications and the snapshots they imply."""

    def __init__(self, service: CBES):
        self._service = service
        self._reservations: dict[str, Reservation] = {}

    # -- ledger ------------------------------------------------------------
    def place(
        self,
        app_name: str,
        mapping: TaskMapping,
        *,
        cpu_demand: float | None = None,
        nic_demand: float = 0.0,
    ) -> Reservation:
        """Record an application as running under *mapping*.

        When *cpu_demand* is omitted it is estimated from the profile's
        computation share: a 70 %-compute application holds ~0.7 CPUs
        per process on average.
        """
        if app_name in self._reservations:
            raise CbesError(f"{app_name!r} already holds a reservation")
        if cpu_demand is None:
            comp, _ = self._service.profile(app_name).comp_comm_ratio
            cpu_demand = comp
        reservation = Reservation(app_name, mapping, cpu_demand, nic_demand)
        self._reservations[app_name] = reservation
        return reservation

    def release(self, app_name: str) -> Reservation:
        """Remove an application's reservation (it finished or moved)."""
        try:
            return self._reservations.pop(app_name)
        except KeyError:
            raise CbesError(f"{app_name!r} holds no reservation") from None

    @property
    def active(self) -> list[Reservation]:
        """All live reservations, ordered by application name."""
        return [self._reservations[k] for k in sorted(self._reservations)]

    def load_on(self, node_id: str) -> tuple[float, float]:
        """(cpu, nic) demand currently reserved on one node."""
        cpu = nic = 0.0
        for res in self._reservations.values():
            procs_here = res.mapping.procs_per_node().get(node_id, 0)
            cpu += procs_here * res.cpu_demand
            nic += procs_here * res.nic_demand
        return cpu, min(nic, 1.0)

    # -- snapshots -----------------------------------------------------------
    def snapshot(self, *, base: SystemSnapshot | None = None) -> SystemSnapshot:
        """A snapshot with all reservations folded in as background load."""
        base = base if base is not None else self._service.snapshot()
        states = {}
        for nid in self._service.cluster.node_ids():
            cpu, nic = self.load_on(nid)
            states[nid] = NodeState(
                background_load=base.background_load(nid) + cpu,
                nic_load=min(base.nic_load(nid) + nic, 1.0),
            )
        return SystemSnapshot(timestamp=base.timestamp, states=states, ncpus=base.ncpus)

    # -- scheduling -----------------------------------------------------------
    def schedule(self, app_name: str, scheduler, pool, *, seed: int = 0, place: bool = True):
        """Schedule *app_name* seeing every prior reservation as load.

        With ``place=True`` (default) the returned mapping is recorded
        in the ledger, so subsequent calls see it too — the arrival
        order of a shared cluster.
        """
        evaluator = self._service.evaluator(app_name, snapshot=self.snapshot())
        result = scheduler.schedule(evaluator, list(pool), seed=seed)
        if place:
            self.place(app_name, result.mapping)
        return result
