"""Fast-path mapping evaluation: precomputed context + delta evaluation.

The schedulers of section 6 spend essentially all their time inside the
mapping-evaluation formula ``S_M = max_i (R_i + C_i)`` (eqs. 4-8).  The
reference implementation, :meth:`repro.core.evaluation.MappingEvaluator.
predict`, rebuilds the ACPU table and re-walks every message group of
every process on each call — correct, but wasteful inside a local-search
loop where one move relocates only one or two ranks.

This module provides the fast path:

:class:`EvaluationContext`
    Everything about ``(profile, latency model, nodes, snapshot,
    options)`` that does **not** depend on the candidate mapping, frozen
    once: per-node speeds, the ACPU-vs-colocation curves, the pairwise
    latency components as dense arrays (the vectorized form of a memo
    table keyed by ``(src, dst, size)``), and the profile's message
    groups in CSR layout so full ``theta`` sums become vectorized dot
    products.  A context is bound to one snapshot *fingerprint*
    (:meth:`repro.monitoring.snapshot.SystemSnapshot.fingerprint`);
    fresher monitoring data invalidates it.

:class:`IncrementalEvaluator`
    Mutable search state over a context: ``propose(candidate)`` returns
    the candidate's ``S_M`` after recomputing only the moved ranks'
    ``R_i``/``C_i``, the ``C_i`` of their communication peers, and the
    ACPU-driven terms on the affected nodes; ``commit()`` / ``reject()``
    resolve the proposal.  Affected ranks are recomputed *from scratch*
    (never ``+= delta``), so the incremental state cannot drift from the
    reference path no matter how long the move sequence runs.

The reference ``predict()`` stays authoritative: ``tests/test_fast_eval
.py`` holds the two paths to 1e-9 agreement over randomized move
sequences, and ``benchmarks/bench_incremental_eval.py`` measures the
speedup (target: >= 10x on a 64-node / 32-rank synthetic workload).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC

import numpy as np

from repro.cluster.latency import LatencyModel
from repro.cluster.node import Node
from repro.core.errors import CbesError, InvalidMappingError
from repro.core.evaluation import EvaluationOptions
from repro.core.mapping import TaskMapping
from repro.monitoring.snapshot import SystemSnapshot
from repro.profiling.profile import ApplicationProfile
from repro.simulate.contention import cpu_share

__all__ = ["FastEvalUnavailable", "EvaluationContext", "IncrementalEvaluator"]


class FastEvalUnavailable(CbesError):
    """The fast evaluation path cannot be built for this configuration.

    Callers (the schedulers) catch this and fall back to the reference
    :meth:`~repro.core.evaluation.MappingEvaluator.predict` path.
    """


class EvaluationContext:
    """Mapping-independent precomputation for one evaluator configuration.

    The context is valid only for the snapshot it was built from; use
    :meth:`is_valid_for` (fingerprint comparison) before reusing a
    cached instance after a monitoring refresh.
    """

    def __init__(
        self,
        profile: ApplicationProfile,
        latency_model: LatencyModel,
        nodes: MappingABC[str, Node],
        snapshot: SystemSnapshot,
        options: EvaluationOptions = EvaluationOptions(),
    ) -> None:
        if not nodes:
            raise FastEvalUnavailable("evaluation context requires at least one node")
        self.profile = profile
        self.options = options
        self.snapshot_fingerprint = snapshot.fingerprint()
        self.node_ids: tuple[str, ...] = tuple(sorted(nodes))
        self.index: dict[str, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        n = len(self.node_ids)
        self.nnodes = n
        nprocs = profile.nprocs
        self.nprocs = nprocs

        # -- per-node scalars (plain lists: fastest for the scalar path)
        self.speed: list[float] = [
            nodes[nid].speed_for(profile.arch_speed_ratios) for nid in self.node_ids
        ]
        self._ncpus: list[int] = [snapshot.ncpus.get(nid, 1) for nid in self.node_ids]
        self._bg: list[float] = [snapshot.background_load(nid) for nid in self.node_ids]
        nic: list[float] = [snapshot.nic_load(nid) for nid in self.node_ids]

        # ACPU-vs-colocation curve per node: acpu_curve[j][k] is ACPU_j
        # with k co-mapped processes (k = 0 column unused, kept at 1.0).
        # With cpu_availability off, eq. 5's 1/ACPU factor and the
        # endpoint stretching both use 1.0, exactly like the reference.
        if options.cpu_availability:
            self.acpu_curve: list[list[float]] = [
                [1.0] + [cpu_share(self._ncpus[j], k, self._bg[j]) for k in range(1, nprocs + 1)]
                for j in range(n)
            ]
        else:
            self.acpu_curve = [[1.0] * (nprocs + 1) for _ in range(n)]

        # -- pairwise latency components, dense over the node universe.
        # This is the memoized latency table: one bulk gather replaces
        # per-call PathComponents lookups, and ``L(src, dst, size)`` for
        # any size is an affine read off these four arrays.
        a_src, a_dst, a_net, beta = latency_model.component_matrices(self.node_ids)
        self._a_src = a_src.reshape(-1)
        self._a_dst = a_dst.reshape(-1)
        self._a_net = a_net.reshape(-1)
        self._beta = beta.reshape(-1)
        self._missing_pairs = bool(np.isnan(self._a_net).any())
        # Effective NIC stretch per ordered pair: 1 / (1 - min(max(nic_s,
        # nic_d), 0.95)), precomputed so the load-adjusted latency is
        # pure arithmetic.  Identity (all ones) under the no-load option.
        nic_arr = np.asarray(nic, dtype=float)
        if options.load_adjusted_latency:
            nic_eff = np.minimum(np.maximum(nic_arr[:, None], nic_arr[None, :]), 0.95)
            self._invnic = (1.0 / (1.0 - nic_eff)).reshape(-1)
        else:
            self._invnic = np.ones(n * n)
        # Scalar-path copies: python-list indexing beats 0-d numpy reads.
        self._comp_flat: list[tuple[float, float, float, float]] = list(
            zip(
                self._a_src.tolist(),
                self._a_dst.tolist(),
                self._a_net.tolist(),
                self._beta.tolist(),
                strict=True,
            )
        )
        self._invnic_flat: list[float] = self._invnic.tolist()

        # -- per-rank profile data
        self.work: list[float] = [
            p.compute_time * profile.profile_speeds[p.rank] for p in profile.processes
        ]
        self.lam: list[float] = [
            (p.lam if options.use_lambda else 1.0) for p in profile.processes
        ]
        # Message groups per rank, recvs first (reference summation
        # order): tuples (is_send, peer, count, size).
        self.groups: list[list[tuple[bool, int, float, float]]] = []
        rev: list[set[int]] = [set() for _ in range(nprocs)]
        for p in profile.processes:
            gs: list[tuple[bool, int, float, float]] = []
            for g in p.recvs:
                gs.append((False, g.peer, float(g.count), g.size_bytes))
            for g in p.sends:
                gs.append((True, g.peer, float(g.count), g.size_bytes))
            self.groups.append(gs)
            for _, peer, _, _ in gs:
                if not 0 <= peer < nprocs:
                    raise FastEvalUnavailable(
                        f"rank {p.rank} communicates with unknown peer {peer}"
                    )
                rev[peer].add(p.rank)
        #: rev[p] — ranks that have p as a message-group peer (whose C_i
        #: depends on where p sits / how loaded p's node is).
        self.rev: list[tuple[int, ...]] = [tuple(sorted(s)) for s in rev]

        # CSR arrays for the vectorized full evaluation.
        flat = [(r, g) for r in range(nprocs) for g in self.groups[r]]
        self._grp_rank = np.array([r for r, _ in flat], dtype=np.intp)
        self._grp_peer = np.array([g[1] for _, g in flat], dtype=np.intp)
        self._grp_send = np.array([g[0] for _, g in flat], dtype=bool)
        self._grp_count = np.array([g[2] for _, g in flat], dtype=float)
        self._grp_size = np.array([g[3] for _, g in flat], dtype=float)
        self._speed_arr = np.asarray(self.speed, dtype=float)
        self._work_arr = np.asarray(self.work, dtype=float)
        self._lam_arr = np.asarray(self.lam, dtype=float)
        self._ncpus_arr = np.asarray(self._ncpus, dtype=float)
        self._bg_arr = np.asarray(self._bg, dtype=float)
        #: Scalar no-load latency memo keyed by (src_idx, dst_idx, size).
        self._noload_cache: dict[tuple[int, int, float], float] = {}

    # -- pickling -------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the scalar latency memo.

        Parallel search workers receive contexts (or rebuild them from
        snapshots); the ``_noload_cache`` memo is pure per-process warm
        state that can grow to one entry per (pair, size) — shipping it
        would dominate the pickle for long-lived contexts and buys the
        receiver nothing it cannot rebuild lazily.
        """
        state = dict(self.__dict__)
        state["_noload_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- queries --------------------------------------------------------
    def is_valid_for(self, snapshot: SystemSnapshot) -> bool:
        """Whether this context may serve evaluations under *snapshot*."""
        return snapshot.fingerprint() == self.snapshot_fingerprint

    def positions(self, mapping: TaskMapping) -> list[int]:
        """Node indices per rank; raises like the reference on bad input."""
        if mapping.nprocs != self.nprocs:
            raise InvalidMappingError(
                f"mapping places {mapping.nprocs} processes but profile has {self.nprocs}"
            )
        index = self.index
        try:
            return [index[nid] for nid in mapping.as_tuple()]
        except KeyError as exc:
            raise InvalidMappingError(f"mapping uses unknown node {exc.args[0]!r}") from None

    def no_load(self, src: str, dst: str, size_bytes: float) -> float:
        """Memoized scalar no-load latency lookup (table keyed by pair+size)."""
        key = (self.index[src], self.index[dst], size_bytes)
        value = self._noload_cache.get(key)
        if value is None:
            a_s, a_d, a_n, b = self._comp_flat[key[0] * self.nnodes + key[1]]
            value = a_s + a_d + a_n + size_bytes * b
            self._noload_cache[key] = value
        return value

    def _check_pairs(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Raise like LatencyModel.components() for uncalibrated pairs."""
        bad = np.isnan(self._a_net[src * self.nnodes + dst])
        if bad.any():
            i = int(np.argmax(bad))
            raise KeyError(
                f"no latency data for pair ({self.node_ids[int(src[i])]!r}, "
                f"{self.node_ids[int(dst[i])]!r})"
            )

    # -- full (vectorized) evaluation -----------------------------------
    def acpu_by_node(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized ACPU per node for a procs-per-node count vector."""
        if not self.options.cpu_availability:
            return np.ones(self.nnodes)
        demand = counts + self._bg_arr
        # Unused nodes keep ACPU 1.0 (never read; keeps the delta path's
        # node-touched bookkeeping consistent with the full path).
        loaded = (counts > 0) & (demand > self._ncpus_arr)
        with np.errstate(divide="ignore"):
            return np.where(loaded, self._ncpus_arr / demand, 1.0)

    def evaluate(self, mapping: TaskMapping) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full vectorized evaluation: (R, C, acpu-by-node) arrays.

        ``theta`` is one gather + dot product over the CSR group arrays
        instead of a per-group Python loop.
        """
        pos = np.asarray(self.positions(mapping), dtype=np.intp)
        counts = np.bincount(pos, minlength=self.nnodes)
        acpu = self.acpu_by_node(counts)
        r_arr = self._work_arr / self._speed_arr[pos] / acpu[pos]
        if not self.options.communication or self._grp_rank.size == 0:
            return r_arr, np.zeros(self.nprocs), acpu
        src = np.where(self._grp_send, pos[self._grp_rank], pos[self._grp_peer])
        dst = np.where(self._grp_send, pos[self._grp_peer], pos[self._grp_rank])
        if self._missing_pairs:
            self._check_pairs(src, dst)
        pair = src * self.nnodes + dst
        if self.options.load_adjusted_latency:
            lat = (
                self._a_src[pair] / acpu[src]
                + self._a_dst[pair] / acpu[dst]
                + self._a_net[pair]
                + self._grp_size * self._beta[pair] * self._invnic[pair]
            )
        else:
            # No-load L_0: endpoint alphas are not stretched by ACPU and
            # the serialization term ignores NIC utilisation.
            lat = (
                self._a_src[pair]
                + self._a_dst[pair]
                + self._a_net[pair]
                + self._grp_size * self._beta[pair]
            )
        theta = np.bincount(self._grp_rank, weights=self._grp_count * lat, minlength=self.nprocs)
        return r_arr, theta * self._lam_arr, acpu

    def execution_time(self, mapping: TaskMapping) -> float:
        """``S_M`` via the vectorized full path (stateless)."""
        r_arr, c_arr, _ = self.evaluate(mapping)
        return float(np.max(r_arr + c_arr))

    # -- scalar kernels for the delta path ------------------------------
    def comm_time(self, rank: int, pos: list[int], acpu: list[float]) -> float:
        """``C_i`` of one rank under (pos, acpu) — tuned scalar loop."""
        groups = self.groups[rank]
        if not groups:
            return 0.0
        n = self.nnodes
        comp = self._comp_flat
        invnic = self._invnic_flat
        me = pos[rank]
        total = 0.0
        if self._missing_pairs:
            for is_send, peer, _, _ in groups:
                s, d = (me, pos[peer]) if is_send else (pos[peer], me)
                if self._a_net[s * n + d] != self._a_net[s * n + d]:  # NaN check
                    raise KeyError(
                        f"no latency data for pair ({self.node_ids[s]!r}, {self.node_ids[d]!r})"
                    )
        if self.options.load_adjusted_latency:
            for is_send, peer, count, size in groups:
                if is_send:
                    s, d = me, pos[peer]
                else:
                    s, d = pos[peer], me
                k = s * n + d
                a_s, a_d, a_n, b = comp[k]
                total += count * (a_s / acpu[s] + a_d / acpu[d] + a_n + size * b * invnic[k])
        else:
            for is_send, peer, count, size in groups:
                if is_send:
                    s, d = me, pos[peer]
                else:
                    s, d = pos[peer], me
                a_s, a_d, a_n, b = comp[s * n + d]
                total += count * (a_s + a_d + a_n + size * b)
        return total * self.lam[rank]

    def comp_time(self, rank: int, node: int, acpu: list[float]) -> float:
        """``R_i`` of one rank placed on *node* — scalar kernel."""
        return self.work[rank] / self.speed[node] / acpu[node]


class IncrementalEvaluator:
    """Delta-evaluation of mapping moves over a frozen context.

    Protocol (advertised to :func:`repro.schedulers.annealing.anneal`):

    * ``reset(mapping) -> S_M`` — rebind the search state to *mapping*;
    * ``propose(candidate) -> S_M`` — cost of *candidate*, recomputing
      only ranks affected by the diff against the current mapping;
    * ``commit()`` / ``reject()`` — resolve the outstanding proposal
      (a new ``propose`` implicitly rejects the previous one);
    * ``evaluator(mapping) -> S_M`` — stateless full evaluation (used
      by population schedulers), via ``__call__``.

    ``on_evaluate`` is called once per served evaluation so the owning
    :class:`~repro.core.evaluation.MappingEvaluator` can keep its
    scheduler cost metric (``evaluations``) accurate.
    """

    def __init__(
        self,
        context: EvaluationContext,
        mapping: TaskMapping | None = None,
        on_evaluate=None,
    ) -> None:
        self._ctx = context
        self._on_evaluate = on_evaluate
        self._pending: tuple | None = None
        self._pos: list[int] = []
        self._counts: list[int] = []
        self._acpu: list[float] = []
        self._r: list[float] = []
        self._c: list[float] = []
        self._totals: list[float] = []
        self._best = float("nan")
        self._arg = -1
        if mapping is not None:
            self.reset(mapping)

    # -- state ----------------------------------------------------------
    @property
    def context(self) -> EvaluationContext:
        """The precomputed evaluation context backing the fast path."""
        return self._ctx

    @property
    def execution_time(self) -> float:
        """``S_M`` of the current (committed) mapping."""
        return self._best

    def _note(self) -> None:
        if self._on_evaluate is not None:
            self._on_evaluate()

    def reset(self, mapping: TaskMapping) -> float:
        """Bind the search state to *mapping* via one full evaluation."""
        ctx = self._ctx
        r_arr, c_arr, acpu = ctx.evaluate(mapping)
        self._pos = ctx.positions(mapping)
        counts = [0] * ctx.nnodes
        for node in self._pos:
            counts[node] += 1
        self._counts = counts
        self._acpu = acpu.tolist()
        self._r = r_arr.tolist()
        self._c = c_arr.tolist()
        totals = (r_arr + c_arr).tolist()
        self._totals = totals
        self._arg = max(range(len(totals)), key=totals.__getitem__)
        self._best = totals[self._arg]
        self._pending = None
        self._note()
        return self._best

    def __call__(self, mapping: TaskMapping) -> float:
        """Stateless full evaluation of an arbitrary mapping."""
        self._note()
        return self._ctx.execution_time(mapping)

    # -- the propose / commit / reject cycle ----------------------------
    def propose(self, candidate: TaskMapping) -> float:
        """``S_M`` of *candidate*, recomputing only the affected ranks."""
        if not self._pos:
            return self.reset(candidate)
        ctx = self._ctx
        self._note()
        new_pos = ctx.positions(candidate)
        pos = self._pos
        nprocs = ctx.nprocs
        moved = [r for r in range(nprocs) if new_pos[r] != pos[r]]
        if not moved:
            self._pending = (new_pos, self._counts, self._acpu, {}, self._best, self._arg)
            return self._best

        # Node occupancy and ACPU updates, restricted to touched nodes.
        counts = self._counts.copy()
        touched_nodes = set()
        for r in moved:
            counts[pos[r]] -= 1
            counts[new_pos[r]] += 1
            touched_nodes.add(pos[r])
            touched_nodes.add(new_pos[r])
        acpu = self._acpu
        curve = ctx.acpu_curve
        acpu_changed: list[int] = []
        new_acpu_vals: dict[int, float] = {}
        for node in touched_nodes:
            k = counts[node]
            value = curve[node][k] if k > 0 else 1.0
            if value != acpu[node]:
                acpu_changed.append(node)
                new_acpu_vals[node] = value
        if acpu_changed:
            acpu = acpu.copy()
            for node, value in new_acpu_vals.items():
                acpu[node] = value

        # Affected ranks: moved ranks change R and C; ranks on ACPU-
        # changed nodes change R (eq. 5) and C (endpoint stretching);
        # communication peers of either group change C only.
        moved_set = set(moved)
        aff_r = set(moved)
        base = set(moved)
        if acpu_changed:
            changed_nodes = set(acpu_changed)
            for r in range(nprocs):
                if new_pos[r] in changed_nodes:
                    aff_r.add(r)
                    base.add(r)
        aff_c: set[int] = set()
        if ctx.options.communication:
            # Under no-load latencies, ACPU changes cannot affect C_i —
            # only actual relocations do.
            base_c = base if ctx.options.load_adjusted_latency else moved_set
            aff_c = set(base_c)
            rev = ctx.rev
            for p in base_c:
                aff_c.update(rev[p])

        changed: dict[int, tuple[float, float, float]] = {}
        r_list, c_list = self._r, self._c
        for r in aff_r | aff_c:
            r_i = ctx.comp_time(r, new_pos[r], acpu) if r in aff_r else r_list[r]
            c_i = ctx.comm_time(r, new_pos, acpu) if r in aff_c else c_list[r]
            changed[r] = (r_i, c_i, r_i + c_i)

        # Running max: the old argmax stands unless it was recomputed.
        totals = self._totals
        if self._arg in changed:
            arg = max(
                range(nprocs),
                key=lambda r: changed[r][2] if r in changed else totals[r],
            )
            best = changed[arg][2] if arg in changed else totals[arg]
        else:
            best, arg = self._best, self._arg
            for r, (_, _, total) in changed.items():
                if total > best:
                    best, arg = total, r
        self._pending = (new_pos, counts, acpu, changed, best, arg)
        return best

    def commit(self) -> None:
        """Accept the outstanding proposal."""
        if self._pending is None:
            raise RuntimeError("commit() without a pending propose()")
        new_pos, counts, acpu, changed, best, arg = self._pending
        self._pos = new_pos
        self._counts = counts
        self._acpu = acpu
        for r, (r_i, c_i, total) in changed.items():
            self._r[r] = r_i
            self._c[r] = c_i
            self._totals[r] = total
        self._best = best
        self._arg = arg
        self._pending = None

    def reject(self) -> None:
        """Discard the outstanding proposal (no-op when none pending)."""
        self._pending = None
