"""Fast-path mapping evaluation: precomputed context + delta evaluation.

The schedulers of section 6 spend essentially all their time inside the
mapping-evaluation formula ``S_M = max_i (R_i + C_i)`` (eqs. 4-8).  The
reference implementation, :meth:`repro.core.evaluation.MappingEvaluator.
predict`, rebuilds the ACPU table and re-walks every message group of
every process on each call — correct, but wasteful inside a local-search
loop where one move relocates only one or two ranks.

This module provides the fast path:

:class:`EvaluationContext`
    Everything about ``(profile, latency model, nodes, snapshot,
    options)`` that does **not** depend on the candidate mapping, frozen
    once in a struct-of-arrays layout: per-node speed / cpu / background
    tables, the ACPU-vs-colocation curves, the pairwise latency
    components as flat row-major tables (the bulk form of a memo table
    keyed by ``(src, dst, size)``), and the profile's message groups in
    CSR layout.  The canonical storage is plain python lists — the
    context builds and serves evaluations without numpy — with numpy
    mirrors materialized lazily for the batched kernel.  A context is
    bound to one snapshot *fingerprint* (:meth:`repro.monitoring.
    snapshot.SystemSnapshot.fingerprint`); fresher monitoring data
    invalidates it.

:meth:`EvaluationContext.evaluate_many`
    The batched kernel: energies of a whole population of mappings in
    one sweep.  Two interchangeable backends — a pure-python reference
    and a vectorized numpy kernel — produce **bit-identical** energies;
    the operation order of the numpy kernel (gathers, row-major bincount
    reductions) was chosen to replay the scalar loop exactly.  Selection
    is per-call via ``REPRO_EVAL_BACKEND`` (``auto`` | ``numpy`` |
    ``python``); ``auto`` uses numpy when installed and falls back
    cleanly when it is not.

:class:`IncrementalEvaluator`
    Mutable search state over a context: ``propose(candidate)`` returns
    the candidate's ``S_M`` after recomputing only the moved ranks'
    ``R_i``/``C_i``, the ``C_i`` of their communication peers, and the
    ACPU-driven terms on the affected nodes; ``commit()`` / ``reject()``
    resolve the proposal.  Affected ranks are recomputed *from scratch*
    (never ``+= delta``), so the incremental state cannot drift from the
    reference path no matter how long the move sequence runs.  Its
    ``many(mappings)`` method exposes the batched kernel to population
    schedulers while keeping the evaluation counter exact.

The reference ``predict()`` stays authoritative: ``tests/test_fast_eval
.py`` holds the two paths to 1e-9 agreement over randomized move
sequences, ``tests/test_batch_eval.py`` holds the two batch backends to
bit-identical agreement, and ``benchmarks/bench_batch_eval.py`` measures
the population speedup (target: >= 10x on 64 nodes / 32 ranks / 256
mappings).
"""

from __future__ import annotations

import itertools
import os
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence

try:  # numpy is the optional [speed] extra; the python backend is complete.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from repro.cluster.latency import LatencyModel
from repro.cluster.node import Node
from repro.core.errors import CbesError, InvalidMappingError
from repro.core.evaluation import EvaluationOptions
from repro.core.mapping import TaskMapping
from repro.monitoring.snapshot import SystemSnapshot
from repro.profiling.profile import ApplicationProfile
from repro.simulate.contention import cpu_share

__all__ = [
    "FastEvalUnavailable",
    "EvaluationContext",
    "IncrementalEvaluator",
    "active_backend",
]


class FastEvalUnavailable(CbesError):
    """The fast evaluation path cannot be built for this configuration.

    Callers (the schedulers) catch this and fall back to the reference
    :meth:`~repro.core.evaluation.MappingEvaluator.predict` path.
    """


def active_backend() -> str:
    """Resolve the batch-evaluation backend for this call.

    ``REPRO_EVAL_BACKEND`` may be ``auto`` (default: numpy when
    installed, python otherwise), ``numpy`` (require the vectorized
    kernel; raises :class:`FastEvalUnavailable` when numpy is absent),
    or ``python`` (force the pure-python reference).  Read per call so
    tests and operators can flip backends without rebuilding contexts.
    """
    choice = os.environ.get("REPRO_EVAL_BACKEND", "auto").strip().lower() or "auto"
    if choice not in ("auto", "numpy", "python"):
        raise ValueError(
            f"REPRO_EVAL_BACKEND must be auto, numpy, or python, got {choice!r}"
        )
    if choice == "python":
        return "python"
    if np is None:
        if choice == "numpy":
            raise FastEvalUnavailable(
                "REPRO_EVAL_BACKEND=numpy but numpy is not installed "
                "(install the [speed] extra)"
            )
        return "python"
    return "numpy"


class EvaluationContext:
    """Mapping-independent precomputation for one evaluator configuration.

    The context is valid only for the snapshot it was built from; use
    :meth:`is_valid_for` (fingerprint comparison) before reusing a
    cached instance after a monitoring refresh.

    Storage is struct-of-arrays throughout: per-node columns
    (``speed``, ``_ncpus``, ``_bg``), flat row-major pair tables
    (``_a_src`` .. ``_beta``, ``_invnic``), and CSR message-group
    columns (``_grp_rank`` .. ``_grp_size``) — all plain python lists.
    Numpy mirrors of the columns are built lazily (:meth:`_np_cols`)
    the first time the vectorized batch kernel runs.
    """

    def __init__(
        self,
        profile: ApplicationProfile,
        latency_model: LatencyModel,
        nodes: MappingABC[str, Node],
        snapshot: SystemSnapshot,
        options: EvaluationOptions = EvaluationOptions(),
    ) -> None:
        if not nodes:
            raise FastEvalUnavailable("evaluation context requires at least one node")
        self.profile = profile
        self.options = options
        self.snapshot_fingerprint = snapshot.fingerprint()
        self.node_ids: tuple[str, ...] = tuple(sorted(nodes))
        self.index: dict[str, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        n = len(self.node_ids)
        self.nnodes = n
        nprocs = profile.nprocs
        self.nprocs = nprocs

        # -- per-node columns
        self.speed: list[float] = [
            nodes[nid].speed_for(profile.arch_speed_ratios) for nid in self.node_ids
        ]
        self._ncpus: list[int] = [snapshot.ncpus.get(nid, 1) for nid in self.node_ids]
        self._bg: list[float] = [snapshot.background_load(nid) for nid in self.node_ids]
        nic: list[float] = [snapshot.nic_load(nid) for nid in self.node_ids]

        # ACPU-vs-colocation curve per node: acpu_curve[j][k] is ACPU_j
        # with k co-mapped processes (k = 0 column unused, kept at 1.0).
        # With cpu_availability off, eq. 5's 1/ACPU factor and the
        # endpoint stretching both use 1.0, exactly like the reference.
        if options.cpu_availability:
            self.acpu_curve: list[list[float]] = [
                [1.0] + [cpu_share(self._ncpus[j], k, self._bg[j]) for k in range(1, nprocs + 1)]
                for j in range(n)
            ]
        else:
            self.acpu_curve = [[1.0] * (nprocs + 1) for _ in range(n)]

        # -- pairwise latency components, flat row-major over the node
        # universe.  This is the memoized latency table: one bulk build
        # replaces per-call PathComponents lookups, and ``L(src, dst,
        # size)`` for any size is an affine read off these four tables.
        a_src, a_dst, a_net, beta = latency_model.component_tables(self.node_ids)
        self._a_src: list[float] = a_src
        self._a_dst: list[float] = a_dst
        self._a_net: list[float] = a_net
        self._beta: list[float] = beta
        self._missing_pairs = any(x != x for x in a_net)  # NaN scan
        # Effective NIC stretch per ordered pair: 1 / (1 - min(max(nic_s,
        # nic_d), 0.95)), precomputed so the load-adjusted latency is
        # pure arithmetic.  Identity (all ones) under the no-load option.
        if options.load_adjusted_latency:
            self._invnic: list[float] = [
                1.0 / (1.0 - min(max(nic[i], nic[j]), 0.95))
                for i in range(n)
                for j in range(n)
            ]
        else:
            self._invnic = [1.0] * (n * n)
        # Row tuples for the scalar inner loop: one index, four reads.
        self._comp_flat: list[tuple[float, float, float, float]] = list(
            zip(a_src, a_dst, a_net, beta, strict=True)
        )
        # Fused serialization slope ``beta * invnic`` (the load-adjusted
        # seconds-per-byte of each ordered pair); equals ``beta`` exactly
        # under the no-load option since invnic is identically 1.0.
        self._binv: list[float] = [b * iv for b, iv in zip(beta, self._invnic, strict=True)]

        # -- per-rank profile columns
        self.work: list[float] = [
            p.compute_time * profile.profile_speeds[p.rank] for p in profile.processes
        ]
        self.lam: list[float] = [
            (p.lam if options.use_lambda else 1.0) for p in profile.processes
        ]
        # Message groups per rank, recvs first (reference summation
        # order): tuples (is_send, peer, count, size).
        self.groups: list[list[tuple[bool, int, float, float]]] = []
        rev: list[set[int]] = [set() for _ in range(nprocs)]
        for p in profile.processes:
            gs: list[tuple[bool, int, float, float]] = []
            for g in p.recvs:
                gs.append((False, g.peer, float(g.count), g.size_bytes))
            for g in p.sends:
                gs.append((True, g.peer, float(g.count), g.size_bytes))
            self.groups.append(gs)
            for _, peer, _, _ in gs:
                if not 0 <= peer < nprocs:
                    raise FastEvalUnavailable(
                        f"rank {p.rank} communicates with unknown peer {peer}"
                    )
                rev[peer].add(p.rank)
        #: rev[p] — ranks that have p as a message-group peer (whose C_i
        #: depends on where p sits / how loaded p's node is).
        self.rev: list[tuple[int, ...]] = [tuple(sorted(s)) for s in rev]

        # CSR columns of all message groups, rank-major and in group
        # order within a rank — the accumulation order of every backend.
        flat = [(r, g) for r in range(nprocs) for g in self.groups[r]]
        self._grp_rank: list[int] = [r for r, _ in flat]
        self._grp_peer: list[int] = [g[1] for _, g in flat]
        self._grp_send: list[bool] = [g[0] for _, g in flat]
        self._grp_count: list[float] = [g[2] for _, g in flat]
        self._grp_size: list[float] = [g[3] for _, g in flat]
        #: Lazily-built numpy mirrors of the columns (None until the
        #: vectorized batch kernel first runs).
        self._np_cache: dict | None = None
        #: Scalar no-load latency memo keyed by (src_idx, dst_idx, size).
        self._noload_cache: dict[tuple[int, int, float], float] = {}

    # -- pickling -------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without per-process warm state.

        Parallel search workers receive contexts (or rebuild them from
        snapshots); the ``_noload_cache`` memo and the numpy column
        mirrors are pure warm state the receiver rebuilds lazily —
        shipping them would bloat the pickle (and the mirrors would pin
        the pickle to a numpy install the receiver may not have).
        """
        state = dict(self.__dict__)
        state["_noload_cache"] = {}
        state["_np_cache"] = None
        state.pop("_np_row_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- queries --------------------------------------------------------
    def is_valid_for(self, snapshot: SystemSnapshot) -> bool:
        """Whether this context may serve evaluations under *snapshot*."""
        return snapshot.fingerprint() == self.snapshot_fingerprint

    def positions(self, mapping: TaskMapping) -> list[int]:
        """Node indices per rank; raises like the reference on bad input."""
        if mapping.nprocs != self.nprocs:
            raise InvalidMappingError(
                f"mapping places {mapping.nprocs} processes but profile has {self.nprocs}"
            )
        index = self.index
        try:
            return [index[nid] for nid in mapping.as_tuple()]
        except KeyError as exc:
            raise InvalidMappingError(f"mapping uses unknown node {exc.args[0]!r}") from None

    def migration_tables(
        self,
    ) -> tuple[
        list[float], list[float], list[float], list[float], list[float], list[float]
    ]:
        """Flat columns for the topology-aware migration cost model.

        Returns ``(a_src, a_dst, a_net, beta, binv, acpu1)``: the
        row-major pair tables (``beta`` the no-load seconds-per-byte,
        ``binv`` the fused load-adjusted slope) and the single-process
        ACPU per node (``acpu_curve[j][1]`` — checkpoint transfers
        involve one process per endpoint).  Used by :meth:`repro.remap.
        cost.MigrationCostModel.moves_from_context` to price mapping
        diffs without per-pair ``components()`` lookups.
        """
        acpu1 = [curve[1] for curve in self.acpu_curve]
        return self._a_src, self._a_dst, self._a_net, self._beta, self._binv, acpu1

    def no_load(self, src: str, dst: str, size_bytes: float) -> float:
        """Memoized scalar no-load latency lookup (table keyed by pair+size)."""
        key = (self.index[src], self.index[dst], size_bytes)
        value = self._noload_cache.get(key)
        if value is None:
            a_s, a_d, a_n, b = self._comp_flat[key[0] * self.nnodes + key[1]]
            value = a_s + a_d + a_n + size_bytes * b
            self._noload_cache[key] = value
        return value

    # -- full evaluation (scalar reference) ------------------------------
    def acpu_by_node(self, counts: Sequence[int]) -> list[float]:
        """ACPU per node for a procs-per-node count vector.

        Unused nodes keep ACPU 1.0 (never read; keeps the delta path's
        node-touched bookkeeping consistent with the full path).
        """
        if not self.options.cpu_availability:
            return [1.0] * self.nnodes
        curve = self.acpu_curve
        return [curve[j][k] for j, k in enumerate(counts)]

    def evaluate(self, mapping: TaskMapping) -> tuple[list[float], list[float], list[float]]:
        """Full evaluation: (R, C, acpu-by-node) lists.

        Always the scalar python path, so everything built on it — the
        incremental evaluator's rebinds in particular — is independent
        of the batch backend selection.
        """
        return self._evaluate_positions(self.positions(mapping))

    def _evaluate_positions(
        self, pos: list[int]
    ) -> tuple[list[float], list[float], list[float]]:
        counts = [0] * self.nnodes
        for j in pos:
            counts[j] += 1
        acpu = self.acpu_by_node(counts)
        work, speed = self.work, self.speed
        r_arr = [work[i] / speed[pos[i]] / acpu[pos[i]] for i in range(self.nprocs)]
        if not self.options.communication or not self._grp_rank:
            return r_arr, [0.0] * self.nprocs, acpu
        c_arr = [self.comm_time(i, pos, acpu) for i in range(self.nprocs)]
        return r_arr, c_arr, acpu

    def execution_time(self, mapping: TaskMapping) -> float:
        """``S_M`` of one mapping (stateless, scalar path)."""
        r_arr, c_arr, _ = self.evaluate(mapping)
        return max(r + c for r, c in zip(r_arr, c_arr))

    # -- batched evaluation ----------------------------------------------
    def evaluate_many(self, mappings: Sequence[TaskMapping]) -> list[float]:
        """``S_M`` for a whole population of mappings in one sweep.

        The workhorse of population schedulers: GA generation scoring,
        portfolio restart seeding, and candidate scans submit their
        mappings here instead of looping.  Backend per
        :func:`active_backend`; both backends produce bit-identical
        energies, so callers never need to know which one served them.
        """
        if not mappings:
            return []
        if active_backend() == "numpy":
            return self._evaluate_many_numpy(mappings)
        out = []
        for mapping in mappings:
            r_arr, c_arr, _ = self._evaluate_positions(self.positions(mapping))
            out.append(max(r + c for r, c in zip(r_arr, c_arr)))
        return out

    #: Ceiling (entries) on the per-(group, pair) latency tables the
    #: numpy backend precomputes; above it the kernel falls back to
    #: gathering the components per batch (same bits, more ops).
    _TABLE_LIMIT = 1 << 22

    def _np_cols(self) -> dict:
        """The numpy mirrors of the SoA columns, built on first use."""
        if np is None:  # pragma: no cover - guarded by active_backend()
            raise FastEvalUnavailable("numpy backend requested but numpy is not installed")
        cols = self._np_cache
        if cols is None:
            n = self.nnodes
            work = np.asarray(self.work, dtype=float)
            speed = np.asarray(self.speed, dtype=float)
            grank = np.asarray(self._grp_rank, dtype=np.intp)
            gpeer = np.asarray(self._grp_peer, dtype=np.intp)
            gsend = np.asarray(self._grp_send, dtype=bool)
            gcount = np.asarray(self._grp_count, dtype=float)
            gsize = np.asarray(self._grp_size, dtype=float)
            a_src = np.asarray(self._a_src, dtype=float)
            a_dst = np.asarray(self._a_dst, dtype=float)
            a_net = np.asarray(self._a_net, dtype=float)
            beta = np.asarray(self._beta, dtype=float)
            invnic = np.asarray(self._invnic, dtype=float)
            cols = {
                "lam": np.asarray(self.lam, dtype=float),
                "ncpus": np.asarray(self._ncpus, dtype=float),
                "bg": np.asarray(self._bg, dtype=float),
                "a_src": a_src,
                "a_dst": a_dst,
                "a_net": a_net,
                "beta": beta,
                "binv": np.asarray(self._binv, dtype=float),
                "grank": grank,
                "gcount": gcount,
                "gsize": gsize,
                # R_i numerator table: work_i / speed_j, flat (P, n).
                "rt": (work[:, None] / speed[None, :]).ravel(),
                "col_n": np.arange(self.nprocs, dtype=np.intp) * n,
                # Gather selectors: which rank's position is the message
                # source/destination for each group (send: rank -> peer).
                "gsrc": np.where(gsend, grank, gpeer),
                "gdst": np.where(gsend, gpeer, grank),
                "goff": np.arange(len(grank), dtype=np.intp) * (n * n),
            }
            del invnic  # folded into binv; the kernel never reads it raw
            ngroups = len(self._grp_rank)
            if 0 < ngroups * n * n <= self._TABLE_LIMIT:
                # No-load weighted latency per (group, pair), matching
                # the scalar association exactly:
                #   wlat0 = count * (((a_src + a_dst) + a_net) + size * beta)
                # (The load-adjusted path gathers its three small pair
                # tables instead: at population sizes a big per-group
                # table gather loses to three cache-resident ones.)
                cols["wlat0"] = (
                    gcount[:, None]
                    * ((a_src + a_dst + a_net)[None, :] + gsize[:, None] * beta[None, :])
                ).ravel()
            self._np_cache = cols
        return cols

    def _np_rows(self, nbatch: int) -> tuple:
        """Per-batch-row index arrays, cached for the last batch size.

        ``row_n`` offsets each batch row into a ``(B, n)`` ravel;
        ``theta_idx`` scatters every message group to its owning
        ``(mapping, rank)`` cell of the ``theta`` bincount — both depend
        only on the batch size, so population loops reuse them.
        """
        cached = getattr(self, "_np_row_cache", None)
        if cached is not None and cached[0] == nbatch:
            return cached[1], cached[2]
        rows = np.arange(nbatch, dtype=np.intp)[:, None]
        row_n = rows * self.nnodes
        grank = self._np_cols()["grank"]
        theta_idx = (grank + rows * self.nprocs).ravel()
        self._np_row_cache = (nbatch, row_n, theta_idx)
        return row_n, theta_idx

    def _evaluate_many_numpy(self, mappings: Sequence[TaskMapping]) -> list[float]:
        """Vectorized batch kernel.

        Bit-identical to the scalar path by construction: every
        reduction (`bincount` over row-major raveled indices) accumulates
        in exactly the order the scalar loops do, and every elementwise
        expression keeps the scalar association order (the precomputed
        ``tail``/``wlat0`` tables bake in the same grouping the scalar
        inner loop uses).  Gathers go through flat ``ndarray.take``
        indices — several times faster than ``take_along_axis`` at these
        array sizes, which is where the 10x population-scoring target
        comes from.
        """
        cols = self._np_cols()
        nbatch = len(mappings)
        n, nprocs = self.nnodes, self.nprocs
        for mapping in mappings:
            if mapping.nprocs != nprocs:
                raise InvalidMappingError(
                    f"mapping places {mapping.nprocs} processes but profile has {nprocs}"
                )
        index = self.index
        try:
            pos = np.fromiter(
                map(
                    index.__getitem__,
                    itertools.chain.from_iterable(m.as_tuple() for m in mappings),
                ),
                dtype=np.intp,
                count=nbatch * nprocs,
            ).reshape(nbatch, nprocs)
        except KeyError as exc:
            raise InvalidMappingError(f"mapping uses unknown node {exc.args[0]!r}") from None
        row_n, theta_idx = self._np_rows(nbatch)
        flat_nodes = pos + row_n  # (B, P) indices into a (B, n) ravel
        if self.options.cpu_availability:
            counts = np.bincount(flat_nodes.ravel(), minlength=nbatch * n)
            # ACPU is only ever read at mapped nodes (rank positions and
            # message endpoints), so compute it sparsely on the (B, P)
            # grid: every gathered count is >= 1, which also rules the
            # count > 0 branch of the dense formula in (and division by
            # zero out).
            demand = counts.take(flat_nodes) + cols["bg"].take(pos)
            ncp = cols["ncpus"].take(pos)
            acpu_pos = np.where(demand > ncp, ncp / demand, 1.0)
            r_arr = cols["rt"].take(pos + cols["col_n"]) / acpu_pos
        else:
            # ACPU is identically 1.0; x / 1.0 == x, so skip the gather.
            acpu_pos = None
            r_arr = cols["rt"].take(pos + cols["col_n"])
        if not self.options.communication or not self._grp_rank:
            return r_arr.max(axis=1).tolist()
        src = pos.take(cols["gsrc"], axis=1)  # (B, G) source node per group
        dst = pos.take(cols["gdst"], axis=1)
        pair = src * n
        pair += dst
        if self._missing_pairs:
            bad = np.isnan(cols["a_net"].take(pair))
            if bad.any():
                # Ravel order is mapping-major, groups in rank order —
                # the same first-bad-pair the scalar loop would hit.
                b, g = divmod(int(bad.ravel().argmax()), pair.shape[1])
                raise KeyError(
                    f"no latency data for pair ({self.node_ids[int(src[b, g])]!r}, "
                    f"{self.node_ids[int(dst[b, g])]!r})"
                )
        if self.options.load_adjusted_latency:
            tail = cols["gsize"] * cols["binv"].take(pair)
            tail += cols["a_net"].take(pair)
            if acpu_pos is not None:
                # Endpoint ACPU by gathering the (B, P) per-rank table —
                # cheaper than re-offsetting src/dst into the (B, n) ravel.
                lat = cols["a_src"].take(pair) / acpu_pos.take(cols["gsrc"], axis=1)
                lat += cols["a_dst"].take(pair) / acpu_pos.take(cols["gdst"], axis=1)
            else:
                lat = cols["a_src"].take(pair) + cols["a_dst"].take(pair)
            lat += tail
            lat *= cols["gcount"]
            weights = lat
        elif "wlat0" in cols:
            weights = cols["wlat0"].take(pair + cols["goff"])
        else:
            lat = cols["a_src"].take(pair) + cols["a_dst"].take(pair)
            lat += cols["a_net"].take(pair)
            sb = cols["gsize"] * cols["beta"].take(pair)
            lat += sb
            lat *= cols["gcount"]
            weights = lat
        theta = np.bincount(
            theta_idx,
            weights=weights.ravel(),
            minlength=nbatch * nprocs,
        ).reshape(nbatch, nprocs)
        theta *= cols["lam"]
        r_arr += theta
        return r_arr.max(axis=1).tolist()

    # -- scalar kernels for the delta path ------------------------------
    def comm_time(self, rank: int, pos: list[int], acpu: list[float]) -> float:
        """``C_i`` of one rank under (pos, acpu) — tuned scalar loop."""
        groups = self.groups[rank]
        if not groups:
            return 0.0
        n = self.nnodes
        comp = self._comp_flat
        binv = self._binv
        me = pos[rank]
        total = 0.0
        if self._missing_pairs:
            a_net = self._a_net
            for is_send, peer, _, _ in groups:
                s, d = (me, pos[peer]) if is_send else (pos[peer], me)
                if a_net[s * n + d] != a_net[s * n + d]:  # NaN check
                    raise KeyError(
                        f"no latency data for pair ({self.node_ids[s]!r}, {self.node_ids[d]!r})"
                    )
        # The grouping below — endpoint terms first, then the load-
        # independent tail ``a_net + size * (beta*invnic)`` as one unit
        # (with the fused ``binv`` slope) — is the association the
        # vectorized backend replays; both paths must keep it for their
        # energies to stay bit-identical.
        if self.options.load_adjusted_latency:
            for is_send, peer, count, size in groups:
                if is_send:
                    s, d = me, pos[peer]
                else:
                    s, d = pos[peer], me
                k = s * n + d
                a_s, a_d, a_n, _ = comp[k]
                total += count * (a_s / acpu[s] + a_d / acpu[d] + (a_n + size * binv[k]))
        else:
            for is_send, peer, count, size in groups:
                if is_send:
                    s, d = me, pos[peer]
                else:
                    s, d = pos[peer], me
                a_s, a_d, a_n, b = comp[s * n + d]
                total += count * (a_s + a_d + a_n + size * b)
        return total * self.lam[rank]

    def comp_time(self, rank: int, node: int, acpu: list[float]) -> float:
        """``R_i`` of one rank placed on *node* — scalar kernel."""
        return self.work[rank] / self.speed[node] / acpu[node]


class IncrementalEvaluator:
    """Delta-evaluation of mapping moves over a frozen context.

    Protocol (advertised to :func:`repro.schedulers.annealing.anneal`):

    * ``reset(mapping) -> S_M`` — rebind the search state to *mapping*;
    * ``propose(candidate) -> S_M`` — cost of *candidate*, recomputing
      only ranks affected by the diff against the current mapping;
    * ``commit()`` / ``reject()`` — resolve the outstanding proposal
      (a new ``propose`` implicitly rejects the previous one);
    * ``evaluator(mapping) -> S_M`` — stateless full evaluation, via
      ``__call__``;
    * ``evaluator.many(mappings) -> [S_M, ...]`` — a whole population in
      one batched sweep (used by population schedulers via
      :func:`repro.schedulers.genetic.score_population`).

    ``on_evaluate`` is called once per served evaluation — including
    once per mapping in a ``many`` batch — so the owning
    :class:`~repro.core.evaluation.MappingEvaluator` can keep its
    scheduler cost metric (``evaluations``) accurate and invariant
    across batch sizes and parallel degrees.
    """

    def __init__(
        self,
        context: EvaluationContext,
        mapping: TaskMapping | None = None,
        on_evaluate=None,
    ) -> None:
        self._ctx = context
        self._on_evaluate = on_evaluate
        self._pending: tuple | None = None
        self._pos: list[int] = []
        self._counts: list[int] = []
        self._acpu: list[float] = []
        self._r: list[float] = []
        self._c: list[float] = []
        self._totals: list[float] = []
        self._best = float("nan")
        self._arg = -1
        if mapping is not None:
            self.reset(mapping)

    # -- state ----------------------------------------------------------
    @property
    def context(self) -> EvaluationContext:
        """The precomputed evaluation context backing the fast path."""
        return self._ctx

    @property
    def execution_time(self) -> float:
        """``S_M`` of the current (committed) mapping."""
        return self._best

    def _note(self) -> None:
        if self._on_evaluate is not None:
            self._on_evaluate()

    def reset(self, mapping: TaskMapping) -> float:
        """Bind the search state to *mapping* via one full evaluation.

        Always the scalar path (:meth:`EvaluationContext.evaluate`), so
        an SA trajectory is a pure function of seed and mapping — never
        of which batch backend is selected.
        """
        ctx = self._ctx
        r_arr, c_arr, acpu = ctx.evaluate(mapping)
        self._pos = ctx.positions(mapping)
        counts = [0] * ctx.nnodes
        for node in self._pos:
            counts[node] += 1
        self._counts = counts
        self._acpu = list(acpu)
        self._r = list(r_arr)
        self._c = list(c_arr)
        totals = [r + c for r, c in zip(r_arr, c_arr)]
        self._totals = totals
        self._arg = max(range(len(totals)), key=totals.__getitem__)
        self._best = totals[self._arg]
        self._pending = None
        self._note()
        return self._best

    def __call__(self, mapping: TaskMapping) -> float:
        """Stateless full evaluation of an arbitrary mapping."""
        self._note()
        return self._ctx.execution_time(mapping)

    def many(self, mappings: Sequence[TaskMapping]) -> list[float]:
        """Batched stateless evaluation of a population.

        Counts one evaluation per mapping, exactly like a loop of
        ``__call__`` — telemetry totals are batch-size invariant.
        """
        energies = self._ctx.evaluate_many(mappings)
        for _ in energies:
            self._note()
        return energies

    # -- the propose / commit / reject cycle ----------------------------
    def propose(self, candidate: TaskMapping) -> float:
        """``S_M`` of *candidate*, recomputing only the affected ranks."""
        if not self._pos:
            return self.reset(candidate)
        ctx = self._ctx
        self._note()
        new_pos = ctx.positions(candidate)
        pos = self._pos
        nprocs = ctx.nprocs
        moved = [r for r in range(nprocs) if new_pos[r] != pos[r]]
        if not moved:
            self._pending = (new_pos, self._counts, self._acpu, {}, self._best, self._arg)
            return self._best

        # Node occupancy and ACPU updates, restricted to touched nodes.
        counts = self._counts.copy()
        touched_nodes = set()
        for r in moved:
            counts[pos[r]] -= 1
            counts[new_pos[r]] += 1
            touched_nodes.add(pos[r])
            touched_nodes.add(new_pos[r])
        acpu = self._acpu
        curve = ctx.acpu_curve
        acpu_changed: list[int] = []
        new_acpu_vals: dict[int, float] = {}
        for node in touched_nodes:
            k = counts[node]
            value = curve[node][k] if k > 0 else 1.0
            if value != acpu[node]:
                acpu_changed.append(node)
                new_acpu_vals[node] = value
        if acpu_changed:
            acpu = acpu.copy()
            for node, value in new_acpu_vals.items():
                acpu[node] = value

        # Affected ranks: moved ranks change R and C; ranks on ACPU-
        # changed nodes change R (eq. 5) and C (endpoint stretching);
        # communication peers of either group change C only.
        moved_set = set(moved)
        aff_r = set(moved)
        base = set(moved)
        if acpu_changed:
            changed_nodes = set(acpu_changed)
            for r in range(nprocs):
                if new_pos[r] in changed_nodes:
                    aff_r.add(r)
                    base.add(r)
        aff_c: set[int] = set()
        if ctx.options.communication:
            # Under no-load latencies, ACPU changes cannot affect C_i —
            # only actual relocations do.
            base_c = base if ctx.options.load_adjusted_latency else moved_set
            aff_c = set(base_c)
            rev = ctx.rev
            for p in base_c:
                aff_c.update(rev[p])

        changed: dict[int, tuple[float, float, float]] = {}
        r_list, c_list = self._r, self._c
        for r in aff_r | aff_c:
            r_i = ctx.comp_time(r, new_pos[r], acpu) if r in aff_r else r_list[r]
            c_i = ctx.comm_time(r, new_pos, acpu) if r in aff_c else c_list[r]
            changed[r] = (r_i, c_i, r_i + c_i)

        # Running max: the old argmax stands unless it was recomputed.
        totals = self._totals
        if self._arg in changed:
            arg = max(
                range(nprocs),
                key=lambda r: changed[r][2] if r in changed else totals[r],
            )
            best = changed[arg][2] if arg in changed else totals[arg]
        else:
            best, arg = self._best, self._arg
            for r, (_, _, total) in changed.items():
                if total > best:
                    best, arg = total, r
        self._pending = (new_pos, counts, acpu, changed, best, arg)
        return best

    def commit(self) -> None:
        """Accept the outstanding proposal."""
        if self._pending is None:
            raise RuntimeError("commit() without a pending propose()")
        new_pos, counts, acpu, changed, best, arg = self._pending
        self._pos = new_pos
        self._counts = counts
        self._acpu = acpu
        for r, (r_i, c_i, total) in changed.items():
            self._r[r] = r_i
            self._c[r] = c_i
            self._totals[r] = total
        self._best = best
        self._arg = arg
        self._pending = None

    def reject(self) -> None:
        """Discard the outstanding proposal (no-op when none pending)."""
        self._pending = None
