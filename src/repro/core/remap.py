"""Compatibility shim: the remap advisor moved to :mod:`repro.remap`.

.. deprecated::
    ``repro.core.remap`` is kept so existing imports (and the seed's
    test suite) continue to work; the implementation now lives in
    :mod:`repro.remap.advisor`, beside the topology-aware
    :class:`~repro.remap.cost.MigrationCostModel`, the
    :class:`~repro.remap.drift.DriftWatcher`, and the
    :class:`~repro.remap.remapper.Remapper` that supersede it for
    online remapping.  Import from :mod:`repro.remap` in new code.
"""

from __future__ import annotations

from repro.remap.advisor import RemapAdvisor, RemapCostModel, RemapDecision

__all__ = ["RemapCostModel", "RemapDecision", "RemapAdvisor"]
