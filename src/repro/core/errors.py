"""Exception types of the CBES core."""

from __future__ import annotations

__all__ = ["CbesError", "UnknownProfileError", "InvalidMappingError", "NotCalibratedError"]


class CbesError(Exception):
    """Base class for CBES service errors."""


class UnknownProfileError(CbesError, KeyError):
    """Raised when a mapping comparison names an unregistered application."""


class InvalidMappingError(CbesError, ValueError):
    """Raised when a mapping does not satisfy the evaluation preconditions."""


class NotCalibratedError(CbesError, RuntimeError):
    """Raised when the service is used before system calibration."""
