"""CBES core: mappings, the evaluation operation, and the service facade."""

from repro.core.colocation import ClusterReservations, Reservation
from repro.core.errors import (
    CbesError,
    InvalidMappingError,
    NotCalibratedError,
    UnknownProfileError,
)
from repro.core.evaluation import (
    EvaluationOptions,
    MappingEvaluator,
    MappingPrediction,
    ProcessPrediction,
)
from repro.core.fast_eval import (
    EvaluationContext,
    FastEvalUnavailable,
    IncrementalEvaluator,
)
from repro.core.mapping import TaskMapping
from repro.core.remap import RemapAdvisor, RemapCostModel, RemapDecision
from repro.core.runtime import RemapTrigger, RunningApplication, RuntimeScheduler
from repro.core.segments import SegmentPlan, SegmentScheduler
from repro.core.service import CBES, ApplicationModel

__all__ = [
    "CBES",
    "ApplicationModel",
    "CbesError",
    "ClusterReservations",
    "EvaluationContext",
    "EvaluationOptions",
    "FastEvalUnavailable",
    "IncrementalEvaluator",
    "InvalidMappingError",
    "MappingEvaluator",
    "MappingPrediction",
    "NotCalibratedError",
    "ProcessPrediction",
    "RemapAdvisor",
    "RemapCostModel",
    "RemapDecision",
    "RemapTrigger",
    "Reservation",
    "RunningApplication",
    "RuntimeScheduler",
    "SegmentPlan",
    "SegmentScheduler",
    "TaskMapping",
    "UnknownProfileError",
]
