"""Application runtime monitoring and remapping triggers (future work).

Section 8: *"we're planning to expand the CBES infrastructure with
application monitoring and remapping capabilities."*  This module
implements that layer on top of the existing pieces:

* :class:`RunningApplication` tracks one application's progress
  (fraction of profiled work completed, current mapping);
* :class:`RemapTrigger` watches for the two remapping causes the paper
  names — **external** events (system conditions changed under the
  current mapping) and **internal** events (the application's own
  behaviour changed, detected by comparing the active segment's profile
  against the profile the mapping was chosen for);
* :class:`RuntimeScheduler` puts them together: on a trigger it asks a
  scheduler for a candidate mapping and the
  :class:`~repro.core.remap.RemapAdvisor` for the final cost/benefit
  verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CbesError
from repro.core.evaluation import MappingEvaluator
from repro.core.mapping import TaskMapping
from repro.remap.advisor import RemapAdvisor, RemapDecision
from repro.core.service import CBES
from repro.profiling.profile import ApplicationProfile

__all__ = ["RunningApplication", "RemapTrigger", "RuntimeScheduler"]


@dataclass
class RunningApplication:
    """Book-keeping for one application under CBES runtime management."""

    app_name: str
    mapping: TaskMapping
    #: Fraction of the application's profiled work already done (0..1).
    progress: float = 0.0
    #: Predicted total time the mapping was selected with.
    predicted_time: float = 0.0
    #: Index of the currently executing profile segment (if segmented).
    segment: int | None = None
    remap_count: int = 0
    history: list[str] = field(default_factory=list)

    def advance(self, fraction: float) -> None:
        """Record *fraction* more of the work as completed."""
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        self.progress = min(1.0, self.progress + fraction)

    @property
    def fraction_remaining(self) -> float:
        """Share of the application's work still to run, in [0, 1]."""
        return max(0.0, 1.0 - self.progress)

    @property
    def finished(self) -> bool:
        """Whether the application has completed all of its work."""
        return self.progress >= 1.0


class RemapTrigger:
    """Detects conditions under which a running app should be re-examined.

    Parameters
    ----------
    prediction_drift:
        Relative increase of the fresh prediction for the *current*
        mapping over the prediction it was selected with that counts as
        an external (system-side) trigger.  The paper's phase-3 finding
        — predictions break once a mapped node loses ~10 % CPU — makes
        ~0.08 a sensible default.
    behaviour_drift:
        Relative change in a segment's communication share versus the
        whole-run profile that counts as an internal (application-side)
        trigger.
    """

    def __init__(self, *, prediction_drift: float = 0.08, behaviour_drift: float = 0.5):
        if prediction_drift <= 0 or behaviour_drift <= 0:
            raise ValueError("drift thresholds must be > 0")
        self.prediction_drift = prediction_drift
        self.behaviour_drift = behaviour_drift

    def external(self, running: RunningApplication, evaluator: MappingEvaluator) -> bool:
        """System conditions changed enough to reconsider the mapping."""
        if running.predicted_time <= 0:
            return False
        fresh = evaluator.execution_time(running.mapping)
        return fresh > running.predicted_time * (1.0 + self.prediction_drift)

    def internal(self, profile: ApplicationProfile, segment: int) -> bool:
        """The application entered a segment that behaves differently.

        Two statistics are compared against the whole-run profile: the
        aggregate communication share, and the *shape* of the per-rank
        compute distribution (which ranks are heavy — the thing a
        mapping was fitted to).  Either deviating past the threshold
        fires the trigger.
        """
        seg_profile = profile.segments.get(segment)
        if seg_profile is None:
            return False
        _, whole_comm = profile.comp_comm_ratio
        _, seg_comm = seg_profile.comp_comm_ratio
        base = max(whole_comm, 1e-6)
        if abs(seg_comm - base) / base > self.behaviour_drift:
            return True
        # Per-rank compute shape: L1 distance of the normalized vectors.
        whole = [p.compute_time for p in profile.processes]
        seg = [p.compute_time for p in seg_profile.processes]
        whole_total, seg_total = sum(whole), sum(seg)
        if whole_total <= 0 or seg_total <= 0:
            return False
        distance = sum(
            abs(w / whole_total - s / seg_total) for w, s in zip(whole, seg, strict=False)
        )
        return distance > self.behaviour_drift


class RuntimeScheduler:
    """Drives initial placement and remapping for running applications."""

    def __init__(
        self,
        service: CBES,
        scheduler,
        *,
        pool: list[str],
        advisor: RemapAdvisor | None = None,
        trigger: RemapTrigger | None = None,
    ) -> None:
        if not pool:
            raise CbesError("runtime scheduler needs a nonempty node pool")
        self._service = service
        self._scheduler = scheduler
        self._pool = list(pool)
        self._advisor = advisor or RemapAdvisor()
        self._trigger = trigger or RemapTrigger()
        self._running: dict[str, RunningApplication] = {}

    # -- lifecycle -------------------------------------------------------
    def launch(self, app_name: str, *, seed: int = 0) -> RunningApplication:
        """Initial scheduling of a profiled application."""
        result = self._service.schedule(app_name, self._scheduler, self._pool, seed=seed)
        running = RunningApplication(
            app_name=app_name,
            mapping=result.mapping,
            predicted_time=result.predicted_time,
        )
        running.history.append(f"launched on {len(result.mapping)} nodes")
        self._running[app_name] = running
        return running

    def running(self, app_name: str) -> RunningApplication:
        """The tracked state of one launched application."""
        try:
            return self._running[app_name]
        except KeyError:
            raise CbesError(f"{app_name!r} is not under runtime management") from None

    # -- periodic check ----------------------------------------------------
    def check(self, app_name: str, *, seed: int = 0) -> RemapDecision | None:
        """One monitoring tick: evaluate triggers, maybe remap.

        Returns the advisor's decision when a trigger fired (whether or
        not it recommended remapping), or None when nothing fired.
        """
        running = self.running(app_name)
        if running.finished:
            return None
        evaluator = self._service.evaluator(app_name)
        profile = self._service.profile(app_name)
        fired = self._trigger.external(running, evaluator) or (
            running.segment is not None and self._trigger.internal(profile, running.segment)
        )
        if not fired:
            return None
        candidate = self._service.schedule(
            app_name, self._scheduler, self._pool, seed=seed
        )
        decision = self._advisor.evaluate(
            evaluator,
            running.mapping,
            candidate.mapping,
            fraction_remaining=max(running.fraction_remaining, 1e-6),
        )
        if decision.remap:
            running.mapping = candidate.mapping
            running.predicted_time = candidate.predicted_time
            running.remap_count += 1
            running.history.append(
                f"remapped at {running.progress:.0%} (benefit {decision.benefit_s:.1f}s)"
            )
        else:
            running.history.append(f"trigger at {running.progress:.0%}: stayed")
        return decision
