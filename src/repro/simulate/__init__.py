"""Ground-truth execution simulation of MPI-like programs on clusters."""

from repro.simulate.contention import LinkContentionTracker, cpu_share
from repro.simulate.timeline import LoadTimeline
from repro.simulate.engine import (
    ClusterSimulator,
    SimulationConfig,
    SimulationDeadlock,
    SimulationResult,
)
from repro.simulate.program import (
    Compute,
    Exchange,
    Marker,
    Op,
    Program,
    Recv,
    Send,
    SendRecv,
)

__all__ = [
    "ClusterSimulator",
    "Compute",
    "Exchange",
    "LinkContentionTracker",
    "LoadTimeline",
    "Marker",
    "Op",
    "Program",
    "Recv",
    "Send",
    "SendRecv",
    "SimulationConfig",
    "SimulationDeadlock",
    "SimulationResult",
    "cpu_share",
]
