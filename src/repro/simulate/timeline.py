"""Time-varying background load timelines.

The paper's phase-3 finding has two halves: sustained load invalidates a
standing prediction, but *"instantaneous or short term loads (short in
comparison with the duration of execution) ... were found to not
invalidate the predictions."*  Reproducing the second half requires the
ground truth to support load that changes *during* a run — this module
provides that: a piecewise-constant load schedule per node, and the
integration math the engine uses to stretch compute bursts across
schedule breakpoints.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from repro.simulate.contention import cpu_share

__all__ = ["LoadTimeline"]


class LoadTimeline:
    """Piecewise-constant background CPU load of one node over time.

    ``points`` are ``(start_time, background_load)`` breakpoints; the
    load before the first breakpoint is ``initial`` (typically the
    node's static ``background_load``).  Loads are CPU-equivalents
    (>= 0, may exceed 1 on multi-CPU nodes).
    """

    def __init__(
        self,
        points: Sequence[tuple[float, float]] = (),
        *,
        initial: float = 0.0,
        ncpus: int = 1,
        mapped_procs: int = 1,
    ) -> None:
        if initial < 0:
            raise ValueError("initial load must be >= 0")
        if ncpus < 1 or mapped_procs < 1:
            raise ValueError("ncpus and mapped_procs must be >= 1")
        cleaned = sorted((float(t), float(load)) for t, load in points)
        for t, load in cleaned:
            if t < 0:
                raise ValueError("breakpoint times must be >= 0")
            if load < 0:
                raise ValueError("loads must be >= 0")
        self._times = [t for t, _ in cleaned]
        self._loads = [load for _, load in cleaned]
        self._initial = float(initial)
        self._ncpus = ncpus
        self._procs = mapped_procs

    @property
    def is_static(self) -> bool:
        return not self._times

    def load_at(self, t: float) -> float:
        """Background load in effect at time *t*."""
        idx = bisect_right(self._times, t) - 1
        return self._initial if idx < 0 else self._loads[idx]

    def share_at(self, t: float) -> float:
        """The mapped process's CPU share at time *t*."""
        return cpu_share(self._ncpus, self._procs, self.load_at(t))

    def finish_time(self, start: float, seconds_at_full_share: float) -> float:
        """When a burst needing *seconds_at_full_share* CPU-time ends.

        Walks the schedule: in an interval with share ``s``, wall time
        ``dt`` delivers ``s * dt`` CPU seconds.  This is the exact
        integral for piecewise-constant schedules, so a short load burst
        in the middle of a long run stretches execution by only the
        burst's own deficit — the paper's tolerated "short term load".
        """
        if start < 0:
            raise ValueError("start must be >= 0")
        if seconds_at_full_share < 0:
            raise ValueError("seconds_at_full_share must be >= 0")
        remaining = seconds_at_full_share
        now = start
        idx = bisect_right(self._times, now)
        while remaining > 0:
            share = self.share_at(now)
            boundary = self._times[idx] if idx < len(self._times) else None
            if boundary is None:
                return now + remaining / share
            span = boundary - now
            produced = share * span
            if produced >= remaining:
                return now + remaining / share
            remaining -= produced
            now = boundary
            idx += 1
        return now
