"""Program intermediate representation executed by the simulator.

A :class:`Program` is the per-rank operation stream of a (synthetic or
modelled) MPI application: compute bursts interleaved with blocking
point-to-point operations.  Workload models (:mod:`repro.workloads`)
generate programs; the discrete-event engine (:mod:`repro.simulate.engine`)
executes them against a cluster model; the resulting trace is what the
profiling subsystem analyzes.

Only four communication primitives exist — ``Send``, ``Recv``,
``Exchange`` (a symmetric pairwise swap, like a matched pair of
``MPI_Sendrecv``) and ``SendRecv`` (an asymmetric combined send+receive
to/from different peers, exactly ``MPI_Sendrecv``) — because every MPI
collective the modelled applications use is *decomposed* into these by
:mod:`repro.workloads.patterns`, which is also what eq. (6) needs: the
profile must see the constituent point-to-point message groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Compute", "Send", "Recv", "Exchange", "SendRecv", "Marker", "Op", "Program"]


@dataclass(frozen=True)
class Compute:
    """Execute *work* abstract work units of application code."""

    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("work must be >= 0")


@dataclass(frozen=True)
class Send:
    """Blocking standard-mode send of *size_bytes* to rank *dst*."""

    dst: int
    size_bytes: float

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise ValueError("dst must be >= 0")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")


@dataclass(frozen=True)
class Recv:
    """Blocking receive of *size_bytes* from rank *src*."""

    src: int
    size_bytes: float

    def __post_init__(self) -> None:
        if self.src < 0:
            raise ValueError("src must be >= 0")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")


@dataclass(frozen=True)
class Exchange:
    """Symmetric pairwise exchange with *peer* (both ranks issue it).

    Models the common halo-swap idiom: both directions proceed
    concurrently (full duplex), so the op completes after the slower of
    the two transfers.
    """

    peer: int
    send_bytes: float
    recv_bytes: float

    def __post_init__(self) -> None:
        if self.peer < 0:
            raise ValueError("peer must be >= 0")
        if self.send_bytes < 0 or self.recv_bytes < 0:
            raise ValueError("sizes must be >= 0")


@dataclass(frozen=True)
class SendRecv:
    """Combined send to *dst* and receive from *src* (``MPI_Sendrecv``).

    Both halves are posted simultaneously, which is what makes shifted
    ring/all-to-all rounds deadlock-free under blocking semantics.
    """

    dst: int
    send_bytes: float
    src: int
    recv_bytes: float

    def __post_init__(self) -> None:
        if self.dst < 0 or self.src < 0:
            raise ValueError("ranks must be >= 0")
        if self.send_bytes < 0 or self.recv_bytes < 0:
            raise ValueError("sizes must be >= 0")


@dataclass(frozen=True)
class Marker:
    """Begin a new trace segment (LAM/MPI phase markers)."""

    label: str = ""


Op = Compute | Send | Recv | Exchange | SendRecv | Marker


@dataclass
class Program:
    """A complete application program: one op stream per rank."""

    name: str
    nprocs: int
    ops: list[list[Op]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if not self.ops:
            self.ops = [[] for _ in range(self.nprocs)]
        if len(self.ops) != self.nprocs:
            raise ValueError("need one op stream per rank")

    def validate(self) -> None:
        """Check rank references and per-pair send/recv balance.

        Balanced message counts per ordered pair are a necessary (not
        sufficient) condition for deadlock freedom; the engine detects
        any remaining deadlock at run time.
        """
        sent: dict[tuple[int, int], int] = {}
        received: dict[tuple[int, int], int] = {}

        def check_rank(r: int) -> None:
            if not 0 <= r < self.nprocs:
                raise ValueError(f"op references rank {r}, valid range is 0..{self.nprocs - 1}")

        for rank, stream in enumerate(self.ops):
            for op in stream:
                if isinstance(op, Send):
                    check_rank(op.dst)
                    if op.dst == rank:
                        raise ValueError(f"rank {rank} sends to itself")
                    sent[(rank, op.dst)] = sent.get((rank, op.dst), 0) + 1
                elif isinstance(op, Recv):
                    check_rank(op.src)
                    if op.src == rank:
                        raise ValueError(f"rank {rank} receives from itself")
                    received[(op.src, rank)] = received.get((op.src, rank), 0) + 1
                elif isinstance(op, Exchange):
                    check_rank(op.peer)
                    if op.peer == rank:
                        raise ValueError(f"rank {rank} exchanges with itself")
                    sent[(rank, op.peer)] = sent.get((rank, op.peer), 0) + 1
                    received[(op.peer, rank)] = received.get((op.peer, rank), 0) + 1
                elif isinstance(op, SendRecv):
                    check_rank(op.dst)
                    check_rank(op.src)
                    if op.dst == rank or op.src == rank:
                        raise ValueError(f"rank {rank} sendrecvs with itself")
                    sent[(rank, op.dst)] = sent.get((rank, op.dst), 0) + 1
                    received[(op.src, rank)] = received.get((op.src, rank), 0) + 1
        for pair in set(sent) | set(received):
            if sent.get(pair, 0) != received.get(pair, 0):
                raise ValueError(
                    f"unbalanced channel {pair}: {sent.get(pair, 0)} sends vs "
                    f"{received.get(pair, 0)} recvs"
                )

    @property
    def total_work(self) -> float:
        """Total abstract compute work across all ranks."""
        return sum(op.work for stream in self.ops for op in stream if isinstance(op, Compute))

    @property
    def total_messages(self) -> int:
        """Total point-to-point messages (Exchange counts as two)."""
        count = 0
        for stream in self.ops:
            for op in stream:
                if isinstance(op, (Send, SendRecv)):
                    count += 1
                elif isinstance(op, Exchange):
                    count += 1  # the peer's Exchange contributes the other one
        return count

    def rank_ops(self, rank: int) -> list[Op]:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range")
        return self.ops[rank]
