"""Closed-loop remapping experiment: drift injection vs remap policy.

The end-to-end validation of :mod:`repro.remap`: run an application on
the ground-truth simulator in *phases*, inject background load through
:class:`~repro.monitoring.load.LoadGenerator` mid-run (the "system
conditions change" of the paper's future-work scenario), and compare
two policies over the *same* injection schedule:

* ``stay`` — keep the initial mapping to the end (the baseline);
* ``remap`` — between phases, feed the :class:`~repro.remap.drift.
  DriftWatcher` the current mapping's predicted remaining time under
  the fresh snapshot; when drift fires, ask the :class:`~repro.remap.
  remapper.Remapper` for a plan and, if it says remap, *pause the
  simulated clock for the plan's migration cost* and continue on the
  new mapping.

Makespans therefore charge the remap policy its own medicine: a switch
only wins if the migration pause is recouped by faster phases — which
is exactly the cost/benefit calculus the subsystem implements.  The
whole loop is deterministic: simulated time only (no wall clocks),
seeded simulator runs, and injected loads restored on exit.

This module is intentionally *not* imported by ``repro.simulate``'s
package ``__init__`` — it sits above :mod:`repro.remap` in the layer
graph while the simulator's contention kernel sits below the core
fast path; import it directly::

    from repro.simulate.closedloop import LoadPhase, run_closed_loop
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.mapping import TaskMapping
from repro.monitoring.load import LoadEvent, LoadGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layer cycles
    from repro.remap.drift import DriftWatcher
    from repro.remap.plan import RemapPlan
    from repro.remap.remapper import Remapper

__all__ = ["LoadPhase", "ClosedLoopResult", "run_closed_loop"]


@dataclass(frozen=True)
class LoadPhase:
    """One step of the injection schedule.

    The *events* are applied once the run's progress reaches
    ``at_fraction`` (0.0 injects before the first phase).  A schedule
    is a sequence of these; an empty schedule is the steady scenario.
    """

    at_fraction: float
    events: tuple[LoadEvent, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction < 1.0:
            raise ValueError("at_fraction must be in [0, 1)")


@dataclass(frozen=True)
class ClosedLoopResult:
    """Outcome of one policy's closed-loop run."""

    policy: str
    #: Total simulated time: compute phases plus migration pauses.
    makespan_s: float
    compute_s: float
    migration_s: float
    #: Remaps actually executed (plans with ``remap=True``).
    remaps: int
    #: Drift events the watcher fired (>= remaps; a firing whose plan
    #: said "stay" executes nothing).
    drift_events: int
    #: Every plan evaluated, in firing order (empty for ``stay``).
    decisions: tuple["RemapPlan", ...]
    phase_wall_s: tuple[float, ...]
    final_mapping: TaskMapping


def run_closed_loop(
    service,
    app,
    nprocs: int,
    *,
    mapping: TaskMapping | None = None,
    scenario: Sequence[LoadPhase] = (),
    phases: int = 8,
    policy: str = "remap",
    remapper: "Remapper | None" = None,
    watcher: "DriftWatcher | None" = None,
    pool: Sequence[str] | None = None,
    seed: int = 0,
) -> ClosedLoopResult:
    """Run *app* through the phased simulation under one policy.

    *service* is a calibrated :class:`~repro.core.service.CBES` with
    *app* profiled for *nprocs* ranks.  Each phase simulates the whole
    program under the current loads and charges ``total_time / phases``
    of it — the standard piecewise approximation for an iterative
    application whose steps are uniform.  Injected loads are restored
    before returning, even on error, so back-to-back policy runs see
    identical conditions.
    """
    from repro.remap.drift import DriftWatcher
    from repro.remap.remapper import Remapper

    if policy not in ("remap", "stay"):
        raise ValueError("policy must be 'remap' or 'stay'")
    if phases < 1:
        raise ValueError("phases must be >= 1")
    cluster = service.cluster
    node_ids = cluster.node_ids()
    current = mapping if mapping is not None else TaskMapping(node_ids[:nprocs])
    if current.nprocs != nprocs:
        raise ValueError("mapping must place exactly nprocs processes")
    program = app.program(nprocs)
    schedule = sorted(scenario, key=lambda p: p.at_fraction)
    remapper = remapper or Remapper()
    watcher = watcher or DriftWatcher()
    generator = LoadGenerator(cluster)

    clock = 0.0
    compute_s = 0.0
    migration_s = 0.0
    remaps = 0
    decisions: list = []
    phase_wall: list[float] = []
    restore: list[tuple[LoadEvent, ...]] = []
    # Baseline: what the incumbent mapping was expected to take under
    # pre-injection conditions; the drift signal is predicted/baseline.
    baseline_s = service.evaluator(app.name).execution_time(current)
    injected = 0
    try:
        for phase in range(phases):
            progress = phase / phases
            while injected < len(schedule) and schedule[injected].at_fraction <= progress:
                restore.append(generator.apply(list(schedule[injected].events)))
                injected += 1
            if policy == "remap":
                fraction = 1.0 - progress
                evaluator = service.evaluator(app.name)
                predicted_s = evaluator.execution_time(current)
                event = watcher.observe(
                    clock, predicted_s * fraction, baseline_s * fraction
                )
                if event is not None:
                    plan = remapper.propose(
                        evaluator,
                        current,
                        pool=pool,
                        fraction_remaining=fraction,
                        seed=seed,
                    )
                    decisions.append(plan)
                    if plan.remap:
                        # Pause for the migration, adopt, rebase the
                        # drift baseline to the new mapping's forecast.
                        clock += plan.migration_cost_s
                        migration_s += plan.migration_cost_s
                        remaps += 1
                        current = plan.candidate
                        watcher.rebase(clock)
                        baseline_s = evaluator.execution_time(current)
            result = service.simulator.run(
                program,
                current.as_dict(),
                seed=seed + 101 * phase,
                arch_affinity=app.arch_affinity,
                collect_trace=False,
            )
            wall = result.total_time / phases
            phase_wall.append(wall)
            compute_s += wall
            clock += wall
    finally:
        for prior in reversed(restore):
            generator.apply(list(prior))
    return ClosedLoopResult(
        policy=policy,
        makespan_s=clock,
        compute_s=compute_s,
        migration_s=migration_s,
        remaps=remaps,
        drift_events=watcher.events,
        decisions=tuple(decisions),
        phase_wall_s=tuple(phase_wall),
        final_mapping=current,
    )
