"""Discrete-event execution engine: the reproduction's ground truth.

The paper measures applications on real clusters; here the measurement
substrate is an event-driven simulator that executes a
:class:`~repro.simulate.program.Program` under a given mapping on a
:class:`~repro.cluster.cluster.Cluster`.  It models:

* **compute** — work divided by the node's effective speed for this
  application (architecture base speed x application affinity), scaled
  by the fair CPU share under co-mapped processes and background load,
  with seeded ~1 % run-to-run OS jitter;
* **point-to-point communication** with the two protocols real MPI
  implementations use:

  - **eager** (size <= ``eager_threshold_bytes``): the sender injects
    the message and continues — it is blocked only for the endpoint
    processing and first-link serialization; the message arrives at the
    destination one end-to-end latency after the send was posted, and
    the receiver blocks until ``max(arrival, post)``;
  - **rendezvous** (large messages): the transfer starts only when both
    sides have posted, lasts the load-adjusted end-to-end latency, and
    both sides resume at its completion;

  either way the path latency is the same physical model the
  calibration measures, inflated by contention on shared
  switch-to-switch links;
* **accounting** — every time slice is attributed to ``X`` (own code),
  ``O`` (MPI library overhead) or ``B`` (blocked), and every message is
  recorded, producing exactly the trace the profiling subsystem needs.

The CBES predictor never sees any of this machinery — it works from the
aggregate profile and the calibrated latency model — so prediction error
arises honestly from aggregation, jitter, protocol effects, and
contention.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro._util import spawn_rng
from repro.cluster.cluster import Cluster
from repro.cluster.latency import LatencyModel
from repro.profiling.events import TimeCategory
from repro.profiling.trace import ExecutionTrace
from repro.simulate.contention import LinkContentionTracker, cpu_share
from repro.simulate.timeline import LoadTimeline
from repro.simulate.program import (
    Compute,
    Exchange,
    Marker,
    Program,
    Recv,
    Send,
    SendRecv,
)

__all__ = ["SimulationConfig", "SimulationResult", "SimulationDeadlock", "ClusterSimulator"]


class SimulationDeadlock(RuntimeError):
    """Raised when no rank can make progress but the program is unfinished."""


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable fidelity knobs of the ground-truth simulator."""

    #: Relative sigma of run-to-run noise on compute and transfer times.
    jitter: float = 0.01
    #: Host-side MPI software cost per posted message half, at unit speed.
    mpi_overhead_s: float = 5e-6
    #: Messages at or below this size use the eager protocol (LAM/MPI
    #: style); larger ones rendezvous.
    eager_threshold_bytes: float = 262144.0
    #: Model contention of the application's own messages on shared links.
    contention: bool = True
    #: Fraction of the bandwidth-sharing excess actually charged.  1.0 is
    #: pure fair-share bandwidth splitting on oversubscribed links; the
    #: default discounts it because concurrent transfers only partially
    #: overlap in practice (flow control staggers them), and the paper's
    #: <4 % prediction errors imply self-contention (which the CBES
    #: formula cannot see) stayed second order on its testbeds.
    contention_gamma: float = 0.3

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.mpi_overhead_s < 0:
            raise ValueError("mpi_overhead_s must be >= 0")
        if self.eager_threshold_bytes < 0:
            raise ValueError("eager_threshold_bytes must be >= 0")
        if self.contention_gamma < 0:
            raise ValueError("contention_gamma must be >= 0")


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    total_time: float
    rank_end_times: list[float]
    mapping: dict[int, str]
    trace: ExecutionTrace | None = None
    messages_delivered: int = 0
    stats: dict[str, float] = field(default_factory=dict)


class _Half:
    """One direction of an outstanding communication op."""

    __slots__ = ("kind", "owner", "peer", "size", "ready", "done", "arrival")

    def __init__(self, kind: str, owner: int, peer: int, size: float, ready: float):
        self.kind = kind  # "send" | "recv"
        self.owner = owner
        self.peer = peer
        self.size = size
        self.ready = ready
        self.done: float | None = None
        #: Eager sends: when the message lands at the destination.
        self.arrival: float | None = None


class _Outstanding:
    """A blocked communication op awaiting resolution of its halves."""

    __slots__ = ("halves", "posted_at")

    def __init__(self, halves: list[_Half], posted_at: float):
        self.halves = halves
        self.posted_at = posted_at

    @property
    def resolved(self) -> bool:
        return all(h.done is not None for h in self.halves)

    @property
    def completion(self) -> float:
        return max(h.done for h in self.halves)  # type: ignore[arg-type]


class ClusterSimulator:
    """Executes programs on a cluster model with blocking MPI semantics."""

    def __init__(self, cluster: Cluster, config: SimulationConfig | None = None):
        self._cluster = cluster
        self._config = config or SimulationConfig()
        # Ground truth uses the exact analytic latency model, not the
        # calibrated one the predictor sees.
        self._exact = LatencyModel.from_fabric(cluster.fabric, cluster.nodes)
        # First-hop (host uplink) bandwidth per node: bounds how long an
        # eager sender is busy injecting a message.
        graph = cluster.fabric.graph
        self._uplink_bps = {
            nid: graph.edges[nid, cluster.fabric.switch_of(nid)]["link"].bandwidth_bps
            for nid in cluster.fabric.hosts
        }

    @property
    def config(self) -> SimulationConfig:
        return self._config

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        mapping: Mapping[int, str],
        *,
        seed: int = 0,
        arch_affinity: Callable[[str], float] | None = None,
        collect_trace: bool = True,
    ) -> SimulationResult:
        """Execute *program* under *mapping*; return the measured outcome.

        Parameters
        ----------
        seed:
            Run seed; distinct seeds model distinct real runs (the paper
            averages 5 or 100 runs per case).
        arch_affinity:
            The application's true relative speed multiplier per
            architecture name (ground truth; workload models provide it).
        collect_trace:
            Record the full execution trace (needed for profiling runs;
            can be disabled for bulk measurement runs).
        """
        program.validate()
        mapping = dict(mapping)
        if sorted(mapping) != list(range(program.nprocs)):
            raise ValueError("mapping must assign a node to every rank 0..nprocs-1")
        nodes = self._cluster.nodes
        for rank, nid in mapping.items():
            if nid not in nodes:
                raise KeyError(f"mapping assigns rank {rank} to unknown node {nid!r}")

        cfg = self._config
        rng = spawn_rng(seed, "sim", program.name)

        # Per-node static conditions for this run.
        procs_on: dict[str, int] = {}
        for nid in mapping.values():
            procs_on[nid] = procs_on.get(nid, 0) + 1
        share: dict[str, float] = {}
        speed: dict[int, float] = {}
        base_speed: dict[int, float] = {}
        timelines: dict[str, LoadTimeline] = {}
        for rank in range(program.nprocs):
            node = nodes[mapping[rank]]
            s = share.setdefault(
                node.node_id, cpu_share(node.ncpus, procs_on[node.node_id], node.background_load)
            )
            if node.load_schedule and node.node_id not in timelines:
                timelines[node.node_id] = LoadTimeline(
                    node.load_schedule,
                    initial=node.background_load,
                    ncpus=node.ncpus,
                    mapped_procs=procs_on[node.node_id],
                )
            base = node.arch.base_speed * (
                arch_affinity(node.arch.name) if arch_affinity else 1.0
            )
            base_speed[rank] = base
            speed[rank] = base * s

        trace = (
            ExecutionTrace(program.name, program.nprocs, mapping) if collect_trace else None
        )
        tracker = LinkContentionTracker(self._cluster.fabric) if cfg.contention else None

        clock = [0.0] * program.nprocs
        pc = [0] * program.nprocs
        segment = [0] * program.nprocs
        outstanding: dict[int, _Outstanding] = {}
        pending_sends: dict[tuple[int, int], deque[_Half]] = {}
        pending_recvs: dict[tuple[int, int], _Half] = {}
        runnable: deque[int] = deque(range(program.nprocs))
        queued = [True] * program.nprocs
        delivered = 0

        # Jitter draws are batched: one bulk call per 4096 ops instead
        # of a draw per op (the engine's hottest line).
        jitter_buf: list[float] = []

        def jitter() -> float:
            if cfg.jitter == 0.0:
                return 1.0
            if not jitter_buf:
                jitter_buf.extend(abs(x) for x in rng.normal(1.0, cfg.jitter, size=4096))
            return jitter_buf.pop()

        def transfer_latency(src_rank: int, dst_rank: int, size: float, start: float) -> float:
            src, dst = mapping[src_rank], mapping[dst_rank]
            comps = self._exact.components(src, dst)
            # Endpoint processing timeshares with everything on the node;
            # cpu_share already folds in co-mapped processes and
            # background load (instantaneous share when a load schedule
            # is active).
            share_src = timelines[src].share_at(start) if src in timelines else share[src]
            share_dst = timelines[dst].share_at(start) if dst in timelines else share[dst]
            a_src = comps.alpha_src / share_src
            a_dst = comps.alpha_dst / share_dst
            nic = min(max(nodes[src].nic_load, nodes[dst].nic_load), 0.95)
            ser = size * comps.beta / (1.0 - nic)
            if tracker is not None and src != dst:
                base_end = start + a_src + a_dst + comps.alpha_net + ser
                flow_bps = 8.0 / comps.beta  # this flow's solo rate
                infl = tracker.inflation(src, dst, start, base_end, flow_bps)
                ser *= 1.0 + cfg.contention_gamma * (infl - 1.0)
            latency = (a_src + a_dst + comps.alpha_net + ser) * jitter()
            if tracker is not None and src != dst:
                tracker.register(src, dst, start, start + latency)
            return latency

        def inject_time(src_rank: int, size: float) -> float:
            """Eager sender busy time: endpoint cost + first-link wire."""
            src = mapping[src_rank]
            alpha = nodes[src].nic.send_overhead_s / share[src]
            return alpha + size * 8.0 / self._uplink_bps[src]

        def resolve_rendezvous(send: _Half, recv: _Half) -> None:
            nonlocal delivered
            start = max(send.ready, recv.ready)
            done = start + transfer_latency(send.owner, recv.owner, send.size, start)
            send.done = done
            recv.done = done
            delivered += 1
            if trace is not None:
                trace.record_message(
                    send.owner, recv.owner, send.size, start, done, segment[send.owner]
                )
            for rank in (send.owner, recv.owner):
                maybe_complete(rank)

        def resolve_eager_recv(send: _Half, recv: _Half) -> None:
            nonlocal delivered
            recv.done = max(recv.ready, send.arrival)  # type: ignore[arg-type]
            delivered += 1
            if trace is not None:
                trace.record_message(
                    send.owner, recv.owner, send.size, send.ready, recv.done, segment[send.owner]
                )
            maybe_complete(recv.owner)

        def maybe_complete(rank: int) -> None:
            out = outstanding.get(rank)
            if out is not None and out.resolved:
                end = max(out.completion, out.posted_at)
                if trace is not None:
                    trace.record_time(
                        rank, TimeCategory.BLOCKED, out.posted_at, end - out.posted_at, segment[rank]
                    )
                clock[rank] = end
                del outstanding[rank]
                pc[rank] += 1
                if not queued[rank]:
                    queued[rank] = True
                    runnable.append(rank)

        def post_halves(rank: int, halves: list[_Half]) -> None:
            """Charge MPI overhead, post halves, attempt immediate matches."""
            o_cost = cfg.mpi_overhead_s * len(halves) / max(speed[rank], 1e-12)
            if trace is not None and o_cost > 0:
                trace.record_time(
                    rank, TimeCategory.MPI_OVERHEAD, clock[rank], o_cost, segment[rank]
                )
            clock[rank] += o_cost
            for h in halves:
                h.ready = clock[rank]
            out = _Outstanding(halves, clock[rank])
            outstanding[rank] = out
            for h in halves:
                if h.kind == "send":
                    channel = (rank, h.peer)
                    if h.size <= cfg.eager_threshold_bytes:
                        # Eager: the sender is busy only for the
                        # injection; the message travels independently.
                        h.arrival = h.ready + transfer_latency(rank, h.peer, h.size, h.ready)
                        h.done = h.ready + inject_time(rank, h.size)
                        waiting = pending_recvs.get(channel)
                        if waiting is not None:
                            del pending_recvs[channel]
                            resolve_eager_recv(h, waiting)
                        else:
                            pending_sends.setdefault(channel, deque()).append(h)
                    else:
                        waiting = pending_recvs.get(channel)
                        if waiting is not None:
                            del pending_recvs[channel]
                            resolve_rendezvous(h, waiting)
                        else:
                            pending_sends.setdefault(channel, deque()).append(h)
                else:
                    channel = (h.peer, rank)
                    queue = pending_sends.get(channel)
                    if queue:
                        send = queue.popleft()
                        if not queue:
                            del pending_sends[channel]
                        if send.arrival is not None:
                            resolve_eager_recv(send, h)
                        else:
                            resolve_rendezvous(send, h)
                    else:
                        if channel in pending_recvs:
                            raise SimulationDeadlock(
                                f"rank {rank} posted a second unmatched recv from {h.peer}"
                            )
                        pending_recvs[channel] = h
            maybe_complete(rank)

        def advance(rank: int) -> None:
            stream = program.ops[rank]
            while pc[rank] < len(stream) and rank not in outstanding:
                op = stream[pc[rank]]
                if isinstance(op, Compute):
                    if op.work > 0:
                        node_id = mapping[rank]
                        timeline = timelines.get(node_id)
                        if timeline is None:
                            duration = op.work / speed[rank] * jitter()
                        else:
                            # CPU seconds needed, integrated over the
                            # node's time-varying share.
                            cpu_seconds = op.work / base_speed[rank] * jitter()
                            duration = (
                                timeline.finish_time(clock[rank], cpu_seconds) - clock[rank]
                            )
                        if trace is not None:
                            trace.record_time(
                                rank, TimeCategory.OWN_CODE, clock[rank], duration, segment[rank]
                            )
                        clock[rank] += duration
                    pc[rank] += 1
                elif isinstance(op, Marker):
                    segment[rank] += 1
                    if trace is not None:
                        trace.record_marker(rank, clock[rank], segment[rank], op.label)
                    pc[rank] += 1
                elif isinstance(op, Send):
                    post_halves(rank, [_Half("send", rank, op.dst, op.size_bytes, clock[rank])])
                elif isinstance(op, Recv):
                    post_halves(rank, [_Half("recv", rank, op.src, op.size_bytes, clock[rank])])
                elif isinstance(op, Exchange):
                    post_halves(
                        rank,
                        [
                            _Half("send", rank, op.peer, op.send_bytes, clock[rank]),
                            _Half("recv", rank, op.peer, op.recv_bytes, clock[rank]),
                        ],
                    )
                elif isinstance(op, SendRecv):
                    post_halves(
                        rank,
                        [
                            _Half("send", rank, op.dst, op.send_bytes, clock[rank]),
                            _Half("recv", rank, op.src, op.recv_bytes, clock[rank]),
                        ],
                    )
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown op {op!r}")
                # post_halves may have resolved and completed the op
                # synchronously, in which case pc advanced and we continue.

        while runnable:
            rank = runnable.popleft()
            queued[rank] = False
            advance(rank)

        unfinished = [r for r in range(program.nprocs) if pc[r] < len(program.ops[r])]
        if unfinished:
            details = []
            for r in unfinished[:8]:
                op = program.ops[r][pc[r]]
                details.append(f"rank {r} blocked at op {pc[r]}: {op!r}")
            raise SimulationDeadlock(
                f"{program.name}: {len(unfinished)} ranks cannot progress; " + "; ".join(details)
            )

        total = max(clock) if clock else 0.0
        if trace is not None:
            trace.finish(total)
        return SimulationResult(
            total_time=total,
            rank_end_times=list(clock),
            mapping=mapping,
            trace=trace,
            messages_delivered=delivered,
            stats={"total_work": program.total_work},
        )

    # ------------------------------------------------------------------
    def effective_speed(
        self,
        node_id: str,
        *,
        arch_affinity: Callable[[str], float] | None = None,
        mapped_procs: int = 1,
    ) -> float:
        """Ground-truth effective speed of one process on *node_id*."""
        node = self._cluster.node(node_id)
        base = node.arch.base_speed * (arch_affinity(node.arch.name) if arch_affinity else 1.0)
        return base * cpu_share(node.ncpus, mapped_procs, node.background_load)
