"""Network and CPU contention models used by the execution engine.

The CBES *predictor* deliberately ignores contention between the
application's own messages (its latency model is per-pair); the ground
truth must not, or predictions would be unrealistically perfect.  The
engine therefore inflates the serialization component of each transfer
by the instantaneous concurrency it observes on the transfer's
bottleneck link.

The tracker is an interval-overlap model: each resolved transfer
registers its ``[start, end)`` interval on every link of its path; a new
transfer's inflation factor is ``1 + k`` where ``k`` is the largest
number of already-registered overlapping transfers on any *shared* (i.e.
switch-to-switch) link of its path.  Host uplinks carry at most one
process's traffic at a time under blocking semantics, so they are not
inflated.  The model is approximate — resolution order is not globally
time-ordered — but deterministic and conservative.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.cluster.network import NetworkFabric

__all__ = ["LinkContentionTracker", "cpu_share"]


class LinkContentionTracker:
    """Tracks transfer intervals per fabric link and reports concurrency."""

    def __init__(self, fabric: NetworkFabric):
        self._fabric = fabric
        # link key -> (sorted starts, sorted ends) of registered intervals.
        # Overlap counting is then two bisects: |{start < q_end}| minus
        # |{end <= q_start}|, because every interval that ended before
        # the query started also started before the query ends.
        self._starts: dict[tuple[str, str], list[float]] = {}
        self._ends: dict[tuple[str, str], list[float]] = {}
        self._shared_cache: dict[tuple[str, str], list[tuple[tuple[str, str], float]]] = {}

    @staticmethod
    def _key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _shared_links(self, src: str, dst: str) -> list[tuple[tuple[str, str], float]]:
        """(link key, bandwidth) of switch-to-switch links on the path."""
        cache_key = (src, dst)
        links = self._shared_cache.get(cache_key)
        if links is None:
            links = [
                (self._key(a, b), link.bandwidth_bps)
                for a, b, link in self._fabric.path_links(src, dst)
                if self._fabric.is_switch(a) and self._fabric.is_switch(b)
            ]
            self._shared_cache[cache_key] = links
        return links

    def concurrency(self, src: str, dst: str, start: float, end: float) -> int:
        """Max number of registered transfers overlapping [start, end)
        on any shared link of the path (capacity-blind count)."""
        if end < start:
            raise ValueError("end must be >= start")
        worst = 0
        for key, _ in self._shared_links(src, dst):
            worst = max(worst, self._overlaps(key, start, end))
        return worst

    def inflation(
        self, src: str, dst: str, start: float, end: float, flow_bps: float
    ) -> float:
        """Serialization inflation factor for one transfer (>= 1).

        Bandwidth-sharing model: a shared link of capacity ``B`` crossed
        by ``k`` other concurrent transfers of achievable rate
        ``flow_bps`` each grants this flow ``B / (k+1)``; its
        serialization stretches by ``(k+1) * flow_bps / B`` — but only
        once aggregate demand actually exceeds the link (a fat trunk
        absorbs many slow flows without slowdown, which is why the
        paper's Centurion showed benign behaviour while Orange Grove's
        federation link did not).
        """
        if end < start:
            raise ValueError("end must be >= start")
        if flow_bps <= 0:
            raise ValueError("flow_bps must be > 0")
        worst = 1.0
        for key, link_bps in self._shared_links(src, dst):
            k = self._overlaps(key, start, end)
            if k:
                worst = max(worst, (k + 1) * flow_bps / link_bps)
        return worst

    def _overlaps(self, key: tuple[str, str], start: float, end: float) -> int:
        starts = self._starts.get(key)
        if not starts:
            return 0
        began_before_qend = bisect_left(starts, end)
        ended_by_qstart = bisect_right(self._ends[key], start)
        return began_before_qend - ended_by_qstart

    def register(self, src: str, dst: str, start: float, end: float) -> None:
        """Record a resolved transfer on every shared link of its path."""
        if end < start:
            raise ValueError("end must be >= start")
        for key, _ in self._shared_links(src, dst):
            insort(self._starts.setdefault(key, []), start)
            insort(self._ends.setdefault(key, []), end)

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()


def cpu_share(ncpus: int, mapped_procs: int, background_load: float) -> float:
    """Fair-share CPU fraction each mapped process receives on a node.

    ``mapped_procs`` application processes plus ``background_load``
    CPU-equivalents of other work timeshare ``ncpus`` CPUs.  While total
    demand fits, every process gets a full CPU; beyond that, fair
    scheduling grants each the proportional share.
    """
    if ncpus < 1:
        raise ValueError("ncpus must be >= 1")
    if mapped_procs < 1:
        raise ValueError("mapped_procs must be >= 1")
    if background_load < 0:
        raise ValueError("background_load must be >= 0")
    demand = mapped_procs + background_load
    if demand <= ncpus:
        return 1.0
    return ncpus / demand
