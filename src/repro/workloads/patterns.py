"""Communication pattern builders.

Workload models describe applications in terms of MPI collectives and
halo exchanges; the engine only speaks blocking point-to-point.  The
:class:`ProgramBuilder` bridges the two: every collective is decomposed
into the standard point-to-point algorithm (binomial trees, recursive
doubling, shifted rings), which is also exactly what the application
profile must contain — eq. (6) operates on the constituent message
groups, not on opaque collectives.

All group operations take a list of *global* rank ids, so models can run
collectives over sub-communicators (rows/columns of a process grid).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.simulate.program import (
    Compute,
    Exchange,
    Marker,
    Op,
    Program,
    Recv,
    Send,
    SendRecv,
)

__all__ = ["ProgramBuilder", "grid_dims"]


def grid_dims(n: int, ndims: int = 2) -> tuple[int, ...]:
    """Balanced near-square factorization of *n* into *ndims* factors.

    Mirrors ``MPI_Dims_create``: factors are as close to each other as
    possible, in non-increasing order.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if ndims < 1:
        raise ValueError("ndims must be >= 1")
    dims = [1] * ndims
    remaining = n
    # Greedily peel off prime factors onto the currently smallest dim.
    factor = 2
    primes: list[int] = []
    while factor * factor <= remaining:
        while remaining % factor == 0:
            primes.append(factor)
            remaining //= factor
        factor += 1
    if remaining > 1:
        primes.append(remaining)
    for p in sorted(primes, reverse=True):
        smallest = min(range(ndims), key=lambda i: dims[i])
        dims[smallest] *= p
    return tuple(sorted(dims, reverse=True))


class ProgramBuilder:
    """Accumulates per-rank op streams and assembles a Program."""

    def __init__(self, name: str, nprocs: int):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.name = name
        self.nprocs = nprocs
        self._streams: list[list[Op]] = [[] for _ in range(nprocs)]

    # -- elementary ops ---------------------------------------------------
    def compute(self, rank: int, work: float) -> None:
        """Append *work* units of application compute on one rank."""
        if work > 0:
            self._stream(rank).append(Compute(work))

    def compute_all(self, work: float | Callable[[int], float]) -> None:
        """Append compute on every rank (constant or per-rank callable)."""
        for rank in range(self.nprocs):
            self.compute(rank, work(rank) if callable(work) else work)

    def send(self, src: int, dst: int, size: float) -> None:
        self._stream(src).append(Send(dst, size))

    def recv(self, dst: int, src: int, size: float) -> None:
        self._stream(dst).append(Recv(src, size))

    def exchange(self, a: int, b: int, size: float, size_back: float | None = None) -> None:
        """A symmetric pairwise swap: both ranks get a matched Exchange."""
        self._stream(a).append(Exchange(b, size, size if size_back is None else size_back))
        self._stream(b).append(Exchange(a, size if size_back is None else size_back, size))

    def sendrecv(self, rank: int, dst: int, send_size: float, src: int, recv_size: float) -> None:
        self._stream(rank).append(SendRecv(dst, send_size, src, recv_size))

    def marker_all(self, label: str = "") -> None:
        """Begin a new trace segment on every rank (LAM/MPI markers)."""
        for stream in self._streams:
            stream.append(Marker(label))

    # -- collectives -------------------------------------------------------
    def bcast(self, group: Sequence[int], root: int, size: float) -> None:
        """Binomial-tree broadcast of *size* bytes from *root* over *group*."""
        ranks, rootidx = self._group(group, root)
        n = len(ranks)
        if n == 1 or size <= 0:
            return
        stages = max(1, math.ceil(math.log2(n)))
        for stage in range(stages):
            mask = 1 << stage
            for v in range(n):
                g = ranks[(v + rootidx) % n]
                if v < mask:
                    partner = v + mask
                    if partner < n:
                        self.send(g, ranks[(partner + rootidx) % n], size)
                elif v < 2 * mask:
                    self.recv(g, ranks[(v - mask + rootidx) % n], size)

    def reduce(self, group: Sequence[int], root: int, size: float) -> None:
        """Binomial-tree reduction of *size* bytes to *root*."""
        ranks, rootidx = self._group(group, root)
        n = len(ranks)
        if n == 1 or size <= 0:
            return
        stages = max(1, math.ceil(math.log2(n)))
        for stage in reversed(range(stages)):
            mask = 1 << stage
            for v in range(n):
                g = ranks[(v + rootidx) % n]
                if v < mask:
                    partner = v + mask
                    if partner < n:
                        self.recv(g, ranks[(partner + rootidx) % n], size)
                elif v < 2 * mask:
                    self.send(g, ranks[(v - mask + rootidx) % n], size)

    def allreduce(self, group: Sequence[int], size: float) -> None:
        """Recursive-doubling allreduce with non-power-of-two folding."""
        ranks = list(dict.fromkeys(group))
        n = len(ranks)
        if n <= 1 or size <= 0:
            return
        n2 = 1 << (n.bit_length() - 1)
        if n2 == n:
            core = ranks
        else:
            rem = n - n2
            # Fold: odd ranks among the first 2*rem hand their data over
            # and sit out, then get the result back at the end.
            for r in range(2 * rem):
                if r % 2 == 1:
                    self.send(ranks[r], ranks[r - 1], size)
                else:
                    self.recv(ranks[r], ranks[r + 1], size)
            core = [ranks[r] for r in range(2 * rem) if r % 2 == 0] + ranks[2 * rem :]
        stages = int(math.log2(len(core)))
        for stage in range(stages):
            mask = 1 << stage
            for v, g in enumerate(core):
                partner = v ^ mask
                if partner > v:
                    self.exchange(g, core[partner], size)
        if n2 != n:
            rem = n - n2
            for r in range(2 * rem):
                if r % 2 == 1:
                    self.recv(ranks[r], ranks[r - 1], size)
                else:
                    self.send(ranks[r], ranks[r + 1], size)

    def barrier(self, group: Sequence[int]) -> None:
        """Synchronize a group (a 4-byte allreduce, like many MPIs)."""
        self.allreduce(group, 4.0)

    def alltoall(self, group: Sequence[int], size: float) -> None:
        """Personalized all-to-all: n-1 shifted SendRecv rounds."""
        ranks = list(dict.fromkeys(group))
        n = len(ranks)
        if n <= 1 or size <= 0:
            return
        for round_ in range(1, n):
            for v, g in enumerate(ranks):
                dst = ranks[(v + round_) % n]
                src = ranks[(v - round_) % n]
                self.sendrecv(g, dst, size, src, size)

    def gather(self, group: Sequence[int], root: int, size: float) -> None:
        """Binomial gather: message sizes double up the tree."""
        ranks, rootidx = self._group(group, root)
        n = len(ranks)
        if n == 1 or size <= 0:
            return
        stages = max(1, math.ceil(math.log2(n)))
        for stage in range(stages):
            mask = 1 << stage
            for v in range(n):
                g = ranks[(v + rootidx) % n]
                if v % (2 * mask) == 0:
                    partner = v + mask
                    if partner < n:
                        chunk = size * min(mask, n - partner)
                        self.recv(g, ranks[(partner + rootidx) % n], chunk)
                elif v % (2 * mask) == mask:
                    chunk = size * min(mask, n - v)
                    self.send(g, ranks[(v - mask + rootidx) % n], chunk)

    def scatter(self, group: Sequence[int], root: int, size: float) -> None:
        """Binomial scatter: message sizes halve down the tree."""
        ranks, rootidx = self._group(group, root)
        n = len(ranks)
        if n == 1 or size <= 0:
            return
        stages = max(1, math.ceil(math.log2(n)))
        for stage in reversed(range(stages)):
            mask = 1 << stage
            for v in range(n):
                g = ranks[(v + rootidx) % n]
                if v % (2 * mask) == 0:
                    partner = v + mask
                    if partner < n:
                        chunk = size * min(mask, n - partner)
                        self.send(g, ranks[(partner + rootidx) % n], chunk)
                elif v % (2 * mask) == mask:
                    chunk = size * min(mask, n - v)
                    self.recv(g, ranks[(v - mask + rootidx) % n], chunk)

    # -- halo / shift patterns ----------------------------------------------
    def ring_shift(self, group: Sequence[int], size: float) -> None:
        """Periodic ring: everyone SendRecv's to the next rank."""
        ranks = list(dict.fromkeys(group))
        n = len(ranks)
        if n <= 1 or size <= 0:
            return
        for v, g in enumerate(ranks):
            self.sendrecv(g, ranks[(v + 1) % n], size, ranks[(v - 1) % n], size)

    def pairwise_exchange(self, group: Sequence[int], size: float, *, phase: int = 0) -> None:
        """Disjoint-pair exchange along a line of ranks (even-odd halo).

        ``phase=0`` pairs ``(0,1), (2,3), ...``; ``phase=1`` pairs
        ``(1,2), (3,4), ...`` plus the wrap pair when the group size is
        even.  Because the pairs are disjoint, timing skew stays inside
        each pair instead of propagating around a chain — which keeps
        each rank's blocked time proportional to its own pair latencies
        (the property eq. 7 extrapolation relies on).
        """
        ranks = list(dict.fromkeys(group))
        n = len(ranks)
        if n <= 1 or size <= 0:
            return
        start = phase % 2
        for i in range(start, n - 1, 2):
            self.exchange(ranks[i], ranks[i + 1], size)
        if start == 1 and n % 2 == 0:
            self.exchange(ranks[-1], ranks[0], size)

    def shift(self, group: Sequence[int], size: float, *, step: int = 1) -> None:
        """Non-periodic shift along a line of ranks.

        Every rank sends *size* to the rank *step* positions over (if it
        exists) and receives from the rank *step* positions back.
        """
        ranks = list(dict.fromkeys(group))
        n = len(ranks)
        if n <= 1 or size <= 0 or step == 0:
            return
        for v, g in enumerate(ranks):
            dst = v + step
            src = v - step
            has_dst = 0 <= dst < n
            has_src = 0 <= src < n
            if has_dst and has_src:
                self.sendrecv(g, ranks[dst], size, ranks[src], size)
            elif has_dst:
                self.send(g, ranks[dst], size)
            elif has_src:
                self.recv(g, ranks[src], size)

    def halo_exchange_grid(
        self, dims: tuple[int, ...], sizes: Sequence[float]
    ) -> None:
        """Face halo swap on a Cartesian process grid (row-major ranks).

        ``sizes[d]`` is the per-direction message size along dimension
        ``d``.  Each dimension does a +shift then a -shift, the standard
        non-periodic halo idiom.
        """
        total = math.prod(dims)
        if total != self.nprocs:
            raise ValueError(f"grid {dims} has {total} ranks, builder has {self.nprocs}")
        if len(sizes) != len(dims):
            raise ValueError("need one size per dimension")
        for d, size in enumerate(sizes):
            if dims[d] == 1 or size <= 0:
                continue
            for line in self._grid_lines(dims, d):
                self.shift(line, size, step=1)
                self.shift(line, size, step=-1)

    @staticmethod
    def _grid_lines(dims: tuple[int, ...], axis: int) -> list[list[int]]:
        """All 1-D lines of a row-major Cartesian grid along *axis*."""
        strides = [1] * len(dims)
        for i in reversed(range(len(dims) - 1)):
            strides[i] = strides[i + 1] * dims[i + 1]
        lines = []
        others = [d for d in range(len(dims)) if d != axis]
        counters = [0] * len(others)

        def base_offset() -> int:
            return sum(counters[i] * strides[others[i]] for i in range(len(others)))

        while True:
            base = base_offset()
            lines.append([base + k * strides[axis] for k in range(dims[axis])])
            for i in reversed(range(len(others))):
                counters[i] += 1
                if counters[i] < dims[others[i]]:
                    break
                counters[i] = 0
            else:
                break
            continue
        return lines

    # -- assembly -------------------------------------------------------------
    def build(self) -> Program:
        """Assemble (and validate) the final program."""
        program = Program(self.name, self.nprocs, self._streams)
        program.validate()
        return program

    def _stream(self, rank: int) -> list[Op]:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range for {self.nprocs} processes")
        return self._streams[rank]

    @staticmethod
    def _group(group: Sequence[int], root: int) -> tuple[list[int], int]:
        ranks = list(dict.fromkeys(group))
        if root not in ranks:
            raise ValueError(f"root {root} not in group")
        return ranks, ranks.index(root)
