"""Workload models: NPB, HPL, ASCI Purple selection, synthetic benchmark."""

from repro.workloads.asci import SAMRAI, SMG2000, Aztec, Sweep3D, Towhee
from repro.workloads.base import WorkloadModel
from repro.workloads.hpl import HPL, WORK_PER_FLOP
from repro.workloads.irregular import IrregularApplication
from repro.workloads.npb import BT, CG, EP, FT, IS, LU, MG, NPB_CLASSES, SP, NpbClassParams
from repro.workloads.patterns import ProgramBuilder, grid_dims
from repro.workloads.phased import PhasedApplication
from repro.workloads.synthetic import SyntheticBenchmark

__all__ = [
    "BT",
    "CG",
    "EP",
    "FT",
    "HPL",
    "IS",
    "IrregularApplication",
    "LU",
    "MG",
    "NPB_CLASSES",
    "NpbClassParams",
    "PhasedApplication",
    "ProgramBuilder",
    "SAMRAI",
    "SMG2000",
    "SP",
    "Sweep3D",
    "SyntheticBenchmark",
    "Towhee",
    "WORK_PER_FLOP",
    "WorkloadModel",
    "grid_dims",
]
