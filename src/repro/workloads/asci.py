"""Analytic models of the ASCI Purple benchmark selection (section 6.2).

The five programs the paper schedules besides LU and HPL:

* **sweep3d** — 3-D particle transport.  Structurally a wavefront code,
  but the paper's profiles showed a *near all-to-all* aggregate pattern
  (sweeps from all octants touch every neighbour direction), which is
  why its potential speedup was "uncertain".  The model combines corner
  wavefronts from two opposite corners with per-iteration angular-moment
  all-to-alls.
* **smg2000** — semicoarsening multigrid with three paper problem sizes
  (12^3, 50^3, 60^3); heavier setup communication than NPB MG but clear
  neighbour locality, hence a solid scheduling win.
* **SAMRAI** — structured AMR framework; regridding produces near
  all-to-all communication, again "uncertain".
* **Towhee** — Monte Carlo molecular simulation, embarrassingly parallel
  with insignificant communication, "uncertain".
* **Aztec** — iterative sparse solver (Poisson run): 5-point halo plus
  two dot-product allreduces per iteration; the paper's biggest
  communication-only win (10.8 %).
"""

from __future__ import annotations

import math

from repro.simulate.program import Program
from repro.workloads.base import WorkloadModel
from repro.workloads.patterns import ProgramBuilder, grid_dims

__all__ = ["Sweep3D", "SMG2000", "SAMRAI", "Towhee", "Aztec"]


class Sweep3D(WorkloadModel):
    """ASCI sweep3d: corner wavefronts + angular all-to-all moments."""

    name = "sweep3d"
    affinities = {"alpha-533": 1.03}

    #: Angle-block pipelining depth of each corner sweep.
    nblocks = 3

    def __init__(self, *, niter: int = 10, work: float = 3.4, msg_bytes: float = 6.0e4):
        self.niter = niter
        self.work = work
        self.msg_bytes = msg_bytes
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        rows, cols = grid_dims(nprocs, 2)
        b = ProgramBuilder(self.name, nprocs)
        face = self.msg_bytes / math.sqrt(nprocs) / self.nblocks
        block_work = self.work / nprocs / (2 * self.nblocks)

        def rank(i: int, j: int) -> int:
            return i * cols + j

        for _ in range(self.niter):
            # Sweep from the (0,0) corner, pipelined over angle blocks...
            for _ in range(self.nblocks):
                for i in range(rows):
                    for j in range(cols):
                        g = rank(i, j)
                        if i > 0:
                            b.recv(g, rank(i - 1, j), face)
                        if j > 0:
                            b.recv(g, rank(i, j - 1), face)
                        b.compute(g, block_work)
                        if i < rows - 1:
                            b.send(g, rank(i + 1, j), face)
                        if j < cols - 1:
                            b.send(g, rank(i, j + 1), face)
            # ...and from the opposite corner.
            for _ in range(self.nblocks):
                for i in reversed(range(rows)):
                    for j in reversed(range(cols)):
                        g = rank(i, j)
                        if i < rows - 1:
                            b.recv(g, rank(i + 1, j), face)
                        if j < cols - 1:
                            b.recv(g, rank(i, j + 1), face)
                        b.compute(g, block_work)
                        if i > 0:
                            b.send(g, rank(i - 1, j), face)
                        if j > 0:
                            b.send(g, rank(i, j - 1), face)
            # Angular flux moments: the all-to-all component that makes
            # the aggregate pattern mapping-insensitive.
            b.alltoall(range(nprocs), face)
        return b.build()


class SMG2000(WorkloadModel):
    """ASCI smg2000: semicoarsening multigrid, parameterised by size."""

    affinities = {"alpha-533": 1.04, "sparc-500": 0.97}

    def __init__(self, problem_size: int = 50, *, niter: int = 8):
        if problem_size < 4:
            raise ValueError("problem_size must be >= 4")
        self.problem_size = int(problem_size)
        self.niter = niter
        self.name = f"smg2000.{problem_size}"
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        dims = grid_dims(nprocs, 3)
        b = ProgramBuilder(self.name, nprocs)
        s = self.problem_size
        # Compute and face sizes both carry a fixed base term: the
        # paper's 12^3 case takes 17 s, far more than pure s^3 scaling
        # would allow, so per-iteration fixed costs dominate small
        # problems.  Coefficients land the 12/50/60 cases near the
        # paper's 17 s / 72 s / 127 s.
        work_per_iter = 16.0 + 5.5e-4 * s**3
        face = (1.3e5 + 170.0 * s**2) / max(dims[0], 1)
        levels = max(2, min(5, int(math.log2(s)) - 1))
        # Setup phase: box-neighbour discovery, small but chatty.
        b.compute_all(work_per_iter / max(nprocs, 1))
        b.alltoall(range(nprocs), 2048.0)
        for _ in range(self.niter):
            for half in range(2):
                order = range(levels) if half == 0 else reversed(range(levels))
                for level in order:
                    shrink = 2.0**level  # semicoarsening halves one axis
                    b.compute_all(work_per_iter / nprocs / (2 * levels) / (shrink**0.5))
                    b.halo_exchange_grid(dims, [face / shrink] * 3)
            b.allreduce(range(nprocs), 8.0)
        return b.build()


class SAMRAI(WorkloadModel):
    """SAMRAI structured-AMR framework: regridding all-to-all traffic."""

    name = "samrai"
    affinities = {"pii-400": 1.02}

    def __init__(self, *, niter: int = 6, work: float = 58.0, msg_bytes: float = 2.4e4):
        self.niter = niter
        self.work = work
        self.msg_bytes = msg_bytes
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        per_pair = self.msg_bytes / max(nprocs - 1, 1) * 4.0  # regrid fan-out
        for _ in range(self.niter):
            b.compute_all(self.work / self.niter / nprocs)
            # Patch redistribution after regridding touches everyone.
            b.alltoall(range(nprocs), per_pair)
            b.allreduce(range(nprocs), 64.0)
        return b.build()


class Towhee(WorkloadModel):
    """MCCCS Towhee: embarrassingly parallel Monte Carlo."""

    name = "towhee"

    def __init__(self, *, work: float = 420.0):
        self.work = work
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        b.bcast(range(nprocs), 0, 4096.0)  # input force field
        b.compute_all(self.work / nprocs)
        b.reduce(range(nprocs), 0, 1024.0)  # ensemble averages
        return b.build()


class Aztec(WorkloadModel):
    """Aztec iterative solver (Poisson problem): 5-point halo CG."""

    affinities = {"alpha-533": 1.05, "sparc-500": 0.94}

    def __init__(self, problem_size: int = 500, *, niter: int = 30):
        if problem_size < 8:
            raise ValueError("problem_size must be >= 8")
        self.problem_size = int(problem_size)
        self.niter = niter
        self.name = f"aztec.{problem_size}"
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        dims = grid_dims(nprocs, 2)
        b = ProgramBuilder(self.name, nprocs)
        s = self.problem_size
        # Unknowns ~ s^2 (2-D Poisson grid); halo ~ s / sqrt(n) doubles.
        work_per_iter = 0.92e-4 * s**2
        halo = 2100.0 * s / math.sqrt(nprocs)
        for _ in range(self.niter):
            b.compute_all(work_per_iter / nprocs)
            b.halo_exchange_grid(dims, [halo, halo])
            b.allreduce(range(nprocs), 8.0)
            b.allreduce(range(nprocs), 8.0)
        return b.build()
