"""A multi-phase application with marker-delimited segments.

Exercises the per-segment machinery (LAM/MPI markers -> per-segment
profiles -> per-segment scheduling): a communication-heavy setup phase,
a compute-dominated solve phase, and a halo-based core segment that a
production run would repeat many times — each behaving differently
enough that one mapping cannot fit all.
"""

from __future__ import annotations

from repro._util import check_positive
from repro.simulate.program import Program
from repro.workloads.base import WorkloadModel
from repro.workloads.patterns import ProgramBuilder, grid_dims

__all__ = ["PhasedApplication"]


class PhasedApplication(WorkloadModel):
    """Three marker-delimited phases with contrasting behaviour.

    Segment 0: setup — all-to-all data distribution, little compute.
    Segment 1: solve — embarrassingly parallel compute.
    Segment 2: core — 2-D halo iteration (the repeatable segment).
    """

    name = "phased"
    affinities = {"alpha-533": 1.03}

    def __init__(
        self,
        *,
        setup_bytes: float = 4.0e5,
        solve_work: float = 40.0,
        core_iters: int = 8,
        core_work: float = 10.0,
        core_bytes: float = 6.0e5,
    ) -> None:
        check_positive(setup_bytes, "setup_bytes")
        check_positive(solve_work, "solve_work")
        if core_iters < 1:
            raise ValueError("core_iters must be >= 1")
        check_positive(core_work, "core_work")
        check_positive(core_bytes, "core_bytes")
        self.setup_bytes = setup_bytes
        self.solve_work = solve_work
        self.core_iters = core_iters
        self.core_work = core_work
        self.core_bytes = core_bytes
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        everyone = range(nprocs)
        # Segment 0: setup (starts at segment index 0 implicitly).
        b.compute_all(0.4 / max(nprocs, 1))
        b.alltoall(everyone, self.setup_bytes / max(nprocs - 1, 1))
        b.barrier(everyone)
        # Segment 1: solve.
        b.marker_all("solve")
        b.compute_all(self.solve_work / nprocs)
        b.allreduce(everyone, 64.0)
        # Segment 2: the repeatable core.
        b.marker_all("core")
        dims = grid_dims(nprocs, 2)
        face = self.core_bytes / max(dims[0], 1)
        for _ in range(self.core_iters):
            b.compute_all(self.core_work / self.core_iters / nprocs)
            b.halo_exchange_grid(dims, [face, face])
            b.allreduce(everyone, 8.0)
        return b.build()
