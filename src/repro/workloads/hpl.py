"""Analytic model of High Performance Linpack (HPL).

Right-looking LU factorization with a 2-D block-cyclic layout: for each
column panel, the owning process column factors it, broadcasts it along
the process rows, the owning row broadcasts the U block along process
columns, and everyone updates their share of the shrinking trailing
matrix.  Compute is the textbook ``2/3 N^3`` flops, converted to work
units at ``WORK_PER_FLOP`` (1 work unit = 1 second on the PII-400).

The paper's three cases are N = 500 ("HPL(1)", too short to schedule
meaningfully), 5 000 and 10 000.
"""

from __future__ import annotations

import math

from repro.simulate.program import Program
from repro.workloads.base import WorkloadModel
from repro.workloads.patterns import ProgramBuilder, grid_dims

__all__ = ["HPL", "WORK_PER_FLOP"]

#: Abstract work units per floating-point operation.  Calibrated so
#: HPL N=10000 on 8 nodes lands in the several-hundred-second range of
#: table 3 with a ~80/20 computation-to-communication split.
WORK_PER_FLOP = 4.8e-9


class HPL(WorkloadModel):
    """HPL dense LU solver model.

    Parameters
    ----------
    n:
        Problem size (matrix dimension).
    nb:
        Block (panel) width.  Panels are aggregated so no run emits
        more than ``max_steps`` factorization steps, keeping the event
        count bounded for very large ``n/nb``.
    """

    affinities = {"alpha-533": 0.97, "pii-400": 1.03}

    def __init__(self, n: int = 10000, nb: int = 250, *, max_steps: int = 40):
        if n < 1 or nb < 1:
            raise ValueError("n and nb must be >= 1")
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self.n = int(n)
        self.nb = int(nb)
        self.max_steps = int(max_steps)
        self.name = f"hpl.{n}"
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        prows, pcols = grid_dims(nprocs, 2)
        b = ProgramBuilder(self.name, nprocs)
        npanels = max(1, self.n // self.nb)
        # Aggregate panels into at most max_steps factorization steps.
        agg = max(1, math.ceil(npanels / self.max_steps))
        steps = math.ceil(npanels / agg)
        nb_eff = self.nb * agg

        def grid_rank(i: int, j: int) -> int:
            return i * pcols + j

        for k in range(steps):
            trailing = max(self.n - k * nb_eff, nb_eff)
            owner_col = k % pcols
            owner_row = k % prows
            # Panel factorization on the owning process column.
            panel_flops = trailing * nb_eff * nb_eff
            for i in range(prows):
                b.compute(grid_rank(i, owner_col), panel_flops * WORK_PER_FLOP / prows)
            # Broadcast the panel along each process row.
            # Only the lower-triangular half of the panel travels.
            panel_bytes = 6.5 * trailing * nb_eff / prows
            if pcols > 1:
                for i in range(prows):
                    row_group = [grid_rank(i, j) for j in range(pcols)]
                    b.bcast(row_group, grid_rank(i, owner_col), panel_bytes)
            # Broadcast the U block along each process column.
            u_bytes = 6.5 * trailing * nb_eff / pcols
            if prows > 1:
                for j in range(pcols):
                    col_group = [grid_rank(i, j) for i in range(prows)]
                    b.bcast(col_group, grid_rank(owner_row, j), u_bytes)
            # Trailing matrix update, spread over the whole grid.
            update_flops = 2.0 * trailing * trailing * nb_eff
            b.compute_all(update_flops * WORK_PER_FLOP / nprocs)
        # Back-substitution: a ring of partial solutions.
        b.ring_shift(range(nprocs), 8.0 * self.n / max(nprocs, 1))
        b.allreduce(range(nprocs), 8.0)
        return b.build()
