"""Irregular applications (paper section 8, last future-work item).

*"Finally, we will conduct further testing using a larger variety of
parallel applications, including applications with irregular computation
and/or communication patterns."*

:class:`IrregularApplication` models the adversarial case for profile-
driven scheduling: per-rank compute volumes drawn from a heavy-tailed
distribution and a sparse random communication graph, both optionally
*drifting* between marker-delimited epochs (so a profile of epoch 0
misrepresents epoch k — the situation the internal remap trigger
exists for).  The generator is fully seeded: the "irregularity" is in
the structure, not in nondeterminism.
"""

from __future__ import annotations

from repro._util import check_positive, spawn_rng
from repro.simulate.program import Program
from repro.workloads.base import WorkloadModel
from repro.workloads.patterns import ProgramBuilder

__all__ = ["IrregularApplication"]


class IrregularApplication(WorkloadModel):
    """Heavy-tailed compute + sparse random communication, with drift.

    Parameters
    ----------
    epochs:
        Marker-delimited phases; each re-draws imbalance and graph.
    steps_per_epoch:
        Compute/communicate supersteps per epoch.
    work:
        Mean total compute work across all ranks per epoch.
    imbalance:
        Sigma of the log-normal per-rank work multiplier (0 = regular).
    degree:
        Average out-degree of the random communication graph.
    msg_bytes:
        Mean message size (also log-normal per edge).
    drift:
        0..1 — how much each epoch's structure departs from epoch 0
        (0 reuses the same draw every epoch; 1 redraws independently).
    structure_seed:
        Seed of the structural draws (a *model parameter*: the same
        seed is the same application).
    """

    name = "irregular"

    def __init__(
        self,
        *,
        epochs: int = 3,
        steps_per_epoch: int = 6,
        work: float = 40.0,
        imbalance: float = 0.6,
        degree: float = 2.0,
        msg_bytes: float = 4.0e5,
        drift: float = 0.5,
        structure_seed: int = 0,
    ) -> None:
        if epochs < 1 or steps_per_epoch < 1:
            raise ValueError("epochs and steps_per_epoch must be >= 1")
        check_positive(work, "work")
        if imbalance < 0:
            raise ValueError("imbalance must be >= 0")
        check_positive(degree, "degree")
        check_positive(msg_bytes, "msg_bytes")
        if not 0.0 <= drift <= 1.0:
            raise ValueError("drift must be in [0, 1]")
        self.epochs = epochs
        self.steps_per_epoch = steps_per_epoch
        self.work = work
        self.imbalance = imbalance
        self.degree = degree
        self.msg_bytes = msg_bytes
        self.drift = drift
        self.structure_seed = structure_seed
        self.name = f"irregular.s{structure_seed}"
        super().__init__()

    # -- structure draws -------------------------------------------------
    def _epoch_structure(self, epoch: int, nprocs: int):
        """(per-rank work weights, communication edges) for one epoch."""
        base = spawn_rng(self.structure_seed, "irr-structure", self.name, nprocs, 0)
        weights = base.lognormal(0.0, self.imbalance, size=nprocs)
        edges = self._draw_edges(base, nprocs)
        if epoch > 0 and self.drift > 0:
            per_epoch = spawn_rng(self.structure_seed, "irr-structure", self.name, nprocs, epoch)
            new_weights = per_epoch.lognormal(0.0, self.imbalance, size=nprocs)
            weights = [
                (1.0 - self.drift) * w + self.drift * nw for w, nw in zip(weights, new_weights)
            ]
            if per_epoch.random() < self.drift:
                edges = self._draw_edges(per_epoch, nprocs)
        mean = sum(weights) / len(weights)
        weights = [w / mean for w in weights]
        return weights, edges

    def _draw_edges(self, rng, nprocs: int):
        edges = []
        if nprocs < 2:
            return edges
        for src in range(nprocs):
            fanout = max(1, int(round(rng.poisson(self.degree))))
            peers = rng.choice(nprocs - 1, size=min(fanout, nprocs - 1), replace=False)
            for p in peers:
                dst = int(p) + (1 if int(p) >= src else 0)
                size = float(rng.lognormal(0.0, 0.5) * self.msg_bytes)
                edges.append((src, dst, size))
        return edges

    # -- program -----------------------------------------------------------
    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        for epoch in range(self.epochs):
            if epoch > 0:
                b.marker_all(f"epoch{epoch}")
            weights, edges = self._epoch_structure(epoch, nprocs)
            step_work = self.work / self.steps_per_epoch / nprocs
            for _ in range(self.steps_per_epoch):
                b.compute_all(lambda r, w=weights: step_work * float(w[r]))
                # Sparse graph exchange.  Send and receive ops are laid
                # out in one global edge order, so every rank handles
                # its incident edges in the same sequence — the standard
                # argument that makes blocking exchanges on an arbitrary
                # graph deadlock-free (edge k's endpoints only wait on
                # edges < k, which complete by induction).
                for src, dst, size in edges:
                    b.send(src, dst, size)
                    b.recv(dst, src, size)
                b.allreduce(range(nprocs), 16.0)  # convergence check
        return b.build()
