"""Analytic models of the NAS Parallel Benchmarks (NPB 2.4).

Each model reproduces the benchmark's *communication structure* (who
talks to whom, how often, with what relative sizes) and its compute
volume, scaled so that a run takes seconds-to-minutes of simulated time
— the same regime as the paper's measurements.  Work is expressed in
abstract units where 1 unit = 1 second on the reference PII-400
architecture (base speed 1.0).

Supported benchmarks and paper usage:

========  ==============================  =========================
model     pattern                          figure 5 cases
========  ==============================  =========================
``IS``    all-to-all bucket exchange       IS-A
``EP``    embarrassingly parallel          EP-B
``CG``    row-group reductions+transpose   CG-A
``MG``    3-D V-cycle halos                MG-A, MG-B
``LU``    2-D SSOR wavefront               LU-A, LU-B (+ section 6)
``BT``    3-sweep ADI on a square grid     BT-S, BT-A, BT-B
``SP``    3-sweep ADI, finer messages      SP-A, SP-B
========  ==============================  =========================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulate.program import Program
from repro.workloads.base import WorkloadModel
from repro.workloads.patterns import ProgramBuilder, grid_dims

__all__ = ["NpbClassParams", "NPB_CLASSES", "IS", "EP", "CG", "MG", "LU", "BT", "SP", "FT"]


@dataclass(frozen=True)
class NpbClassParams:
    """Scaling knobs of one NPB problem class."""

    letter: str
    #: Total compute work across all ranks, per iteration (unit = PII-second).
    work: float
    #: Base neighbour message size in bytes (before decomposition scaling).
    msg_bytes: float
    #: Iteration count (scaled down from the real codes to keep the
    #: event count laptop-friendly; relative shape is preserved).
    niter: int


#: Class S is the tiny sample size, A and B the paper's two main classes.
NPB_CLASSES: dict[str, dict[str, NpbClassParams]] = {
    "LU": {
        "S": NpbClassParams("S", work=1.2, msg_bytes=1.0e5, niter=12),
        "A": NpbClassParams("A", work=36.0, msg_bytes=4.8e6, niter=40),
        "B": NpbClassParams("B", work=90.0, msg_bytes=7.5e6, niter=48),
    },
    "BT": {
        "S": NpbClassParams("S", work=1.2, msg_bytes=8.0e4, niter=10),
        "A": NpbClassParams("A", work=48.0, msg_bytes=1.2e6, niter=30),
        "B": NpbClassParams("B", work=120.0, msg_bytes=2.0e6, niter=36),
    },
    "SP": {
        "S": NpbClassParams("S", work=1.0, msg_bytes=6.0e4, niter=12),
        "A": NpbClassParams("A", work=32.0, msg_bytes=1.0e6, niter=36),
        "B": NpbClassParams("B", work=84.0, msg_bytes=1.8e6, niter=42),
    },
    "MG": {
        "A": NpbClassParams("A", work=22.0, msg_bytes=6.0e5, niter=16),
        "B": NpbClassParams("B", work=52.0, msg_bytes=1.1e6, niter=20),
    },
    "CG": {
        "A": NpbClassParams("A", work=16.0, msg_bytes=8.0e5, niter=30),
        "B": NpbClassParams("B", work=40.0, msg_bytes=1.5e6, niter=36),
    },
    "IS": {
        "A": NpbClassParams("A", work=6.0, msg_bytes=4.0e6, niter=8),
        "B": NpbClassParams("B", work=14.0, msg_bytes=9.0e6, niter=8),
    },
    "EP": {
        "A": NpbClassParams("A", work=220.0, msg_bytes=16.0, niter=1),
        "B": NpbClassParams("B", work=500.0, msg_bytes=16.0, niter=1),
    },
    "FT": {
        "A": NpbClassParams("A", work=20.0, msg_bytes=8.0e6, niter=6),
        "B": NpbClassParams("B", work=52.0, msg_bytes=1.8e7, niter=10),
    },
}


class _NpbBase(WorkloadModel):
    """Shared plumbing: class lookup and naming."""

    benchmark: str = ""

    def __init__(self, npb_class: str = "A"):
        params = NPB_CLASSES.get(self.benchmark, {}).get(npb_class)
        if params is None:
            valid = sorted(NPB_CLASSES.get(self.benchmark, {}))
            raise ValueError(
                f"{self.benchmark} has no class {npb_class!r}; valid classes: {valid}"
            )
        self.npb_class = npb_class
        self.params = params
        self.name = f"{self.benchmark.lower()}.{npb_class}"
        super().__init__()


class LU(_NpbBase):
    """NPB LU: SSOR solver, 2-D pipelined wavefront sweeps.

    Per iteration: a lower-triangular wavefront (receive from north and
    west, compute, send south and east) and the mirrored upper sweep,
    with a residual-norm allreduce every five iterations.  LU's fine
    communication granularity is what makes it mapping-sensitive — the
    paper's section 6 workhorse.
    """

    benchmark = "LU"
    #: LU's SSOR kernel is cache-sensitive: it runs relatively well on
    #: the large-cache Alpha and poorly on the small-cache PII, which is
    #: what separates the figure-6 medium zone from the high zone.
    affinities = {"alpha-533": 1.04, "pii-400": 0.92, "sparc-500": 0.96}

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        rows, cols = grid_dims(nprocs, 2)
        dims = (rows, cols)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        face = p.msg_bytes / math.sqrt(nprocs)
        half_work = p.work / nprocs / 2

        def sweep(step: int) -> None:
            """One SSOR sweep: aggregated face flows along both grid
            dimensions in the sweep direction.  The per-k-plane pencil
            messages of the real code are modelled at sweep granularity
            (periodic in the aggregate, so every rank carries the same
            message count — which keeps per-rank blocked time
            proportional to the per-pair latencies of its mapping, the
            property eq. 7 relies on)."""
            for axis in range(2):
                if dims[axis] > 1:
                    for line in ProgramBuilder._grid_lines(dims, axis):
                        ring = line if step > 0 else list(reversed(line))
                        b.ring_shift(ring, face)

        for it in range(p.niter):
            sweep(+1)  # lower-triangular solve, flowing from (0, 0)
            b.compute_all(half_work)
            sweep(-1)  # upper-triangular solve, flowing back
            b.compute_all(half_work)
            if it % 5 == 4:
                b.allreduce(range(nprocs), 40.0)  # residual norms
        return b.build()


class BT(_NpbBase):
    """NPB BT: block-tridiagonal ADI, three directional sweep phases.

    Runs on a square process count; each iteration exchanges faces in
    the x, y and z sweep directions on the 2-D process grid, with BT's
    characteristically large messages.
    """

    benchmark = "BT"
    affinities = {"alpha-533": 1.02}

    def valid_nprocs(self, nprocs: int) -> bool:
        root = math.isqrt(nprocs)
        return root * root == nprocs and nprocs >= 1

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        side = math.isqrt(nprocs)
        dims = (side, side)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        face = p.msg_bytes / max(side, 1)
        work_per_rank = p.work / nprocs
        for _ in range(p.niter):
            # x, y sweeps exchange along the two grid dimensions; the z
            # sweep is rank-local for a 2-D decomposition but still
            # contributes compute.
            for sweep in range(3):
                b.compute_all(work_per_rank / 3)
                if sweep < 2 and side > 1:
                    b.halo_exchange_grid(dims, [face if d == sweep else 0.0 for d in range(2)])
        return b.build()


class SP(_NpbBase):
    """NPB SP: scalar-pentadiagonal ADI — BT's pattern, finer messages."""

    benchmark = "SP"
    affinities = {"alpha-533": 1.02}

    def valid_nprocs(self, nprocs: int) -> bool:
        root = math.isqrt(nprocs)
        return root * root == nprocs and nprocs >= 1

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        side = math.isqrt(nprocs)
        dims = (side, side)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        # SP sends twice as many messages at half the size as BT.
        face = p.msg_bytes / max(side, 1) / 2.0
        work_per_rank = p.work / nprocs
        for _ in range(p.niter):
            for sweep in range(3):
                b.compute_all(work_per_rank / 3)
                if sweep < 2 and side > 1:
                    sizes = [face if d == sweep else 0.0 for d in range(2)]
                    b.halo_exchange_grid(dims, sizes)
                    b.halo_exchange_grid(dims, sizes)
        return b.build()


class MG(_NpbBase):
    """NPB MG: 3-D multigrid V-cycle.

    Halo sizes shrink by 4x per level down the cycle (surface area of a
    halved grid); the coarsest level ends in a small allreduce.
    """

    benchmark = "MG"
    affinities = {"alpha-533": 1.05, "sparc-500": 0.97}

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        dims = grid_dims(nprocs, 3)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        levels = 4
        work_per_rank = p.work / nprocs
        for _ in range(p.niter):
            # Down the V: restrict; up the V: prolongate.
            for half in range(2):
                level_order = range(levels) if half == 0 else reversed(range(levels))
                for level in level_order:
                    shrink = 4.0**level
                    face = p.msg_bytes / shrink / max(dims[0], 1)
                    b.compute_all(work_per_rank / (2 * levels) / (8.0**level * 0.4 + 0.6))
                    b.halo_exchange_grid(dims, [face] * 3)
            b.allreduce(range(nprocs), 8.0)
        return b.build()


class CG(_NpbBase):
    """NPB CG: conjugate gradient on a 2-D process grid.

    Per iteration: a row-group reduction of the matrix-vector product, a
    transpose exchange with the mirror rank, and two scalar dot-product
    allreduces.
    """

    benchmark = "CG"
    affinities = {"alpha-533": 1.06, "sparc-500": 0.95}

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        rows, cols = grid_dims(nprocs, 2)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        vec = p.msg_bytes / max(cols, 1)
        work_per_rank = p.work / nprocs
        for _ in range(p.niter):
            b.compute_all(work_per_rank)
            for r in range(rows):
                row_group = [r * cols + c for c in range(cols)]
                b.allreduce(row_group, vec)
            if rows == cols:
                # Transpose exchange with the mirror rank.
                for i in range(rows):
                    for j in range(i + 1, cols):
                        b.exchange(i * cols + j, j * cols + i, vec)
            b.allreduce(range(nprocs), 8.0)
            b.allreduce(range(nprocs), 8.0)
        return b.build()


class IS(_NpbBase):
    """NPB IS: integer bucket sort — the all-to-all benchmark.

    Per iteration: local bucket counting, a small all-to-all of bucket
    sizes, the large all-to-all of the keys themselves, and a
    verification allreduce.
    """

    benchmark = "IS"
    affinities = {"pii-400": 1.03}

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        keys_per_pair = p.msg_bytes / max(nprocs - 1, 1)
        for _ in range(p.niter):
            b.compute_all(p.work / nprocs)
            b.alltoall(range(nprocs), 4.0 * nprocs)
            b.alltoall(range(nprocs), keys_per_pair)
            b.allreduce(range(nprocs), 8.0)
        return b.build()


class EP(_NpbBase):
    """NPB EP: embarrassingly parallel random-number kernel.

    Pure compute followed by three tiny sum reductions — the benchmark
    the paper expects to be mapping-insensitive.
    """

    benchmark = "EP"

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        b.compute_all(p.work / nprocs)
        for _ in range(3):
            b.allreduce(range(nprocs), p.msg_bytes)
        return b.build()


class FT(_NpbBase):
    """NPB FT: 3-D FFT — the transpose (all-to-all) benchmark.

    Each iteration performs local FFT compute plus a full transpose of
    the distributed array, which is a personalised all-to-all of
    ``volume / nprocs^2`` bytes per pair; a checksum allreduce closes
    the iteration.  FT is the most network-bisection-hungry NPB kernel.
    """

    benchmark = "FT"
    affinities = {"alpha-533": 1.05}

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        p = self.params
        per_pair = p.msg_bytes / max(nprocs * nprocs, 1)
        b.compute_all(p.work / nprocs / 2)  # forward FFT of the input
        for _ in range(p.niter):
            b.compute_all(p.work / nprocs / max(p.niter, 1))
            b.alltoall(range(nprocs), per_pair)
            b.allreduce(range(nprocs), 32.0)
        return b.build()
