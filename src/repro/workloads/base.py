"""Workload model base class.

A workload model is an analytic stand-in for a real application: given a
process count it emits the :class:`~repro.simulate.program.Program` the
application would execute — compute bursts plus the communication
pattern — and declares the application's true relative speed on each
architecture (``arch_affinity``, the quantity the profiling subsystem
*measures* into the profile).

Models satisfy :class:`repro.core.service.ApplicationModel`, so they can
be profiled and scheduled through the CBES facade directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.simulate.program import Program

__all__ = ["WorkloadModel"]


class WorkloadModel(ABC):
    """Base class for analytic application models."""

    #: Application name (profile database key).  Subclasses must set it.
    name: str = ""

    #: Relative speed multipliers per architecture name.  The default is
    #: architecture-neutral; memory- or cache-sensitive codes override.
    affinities: dict[str, float] = {}

    def __init__(self) -> None:
        if not self.name:
            raise ValueError(f"{type(self).__name__} must define a name")

    @abstractmethod
    def program(self, nprocs: int) -> Program:
        """The application's op streams for *nprocs* processes."""

    def arch_affinity(self, arch_name: str) -> float:
        """Application-specific speed multiplier on one architecture."""
        return self.affinities.get(arch_name, 1.0)

    def valid_nprocs(self, nprocs: int) -> bool:
        """Whether the model supports this process count (default: any >= 1)."""
        return nprocs >= 1

    def _check_nprocs(self, nprocs: int) -> int:
        if not self.valid_nprocs(nprocs):
            raise ValueError(f"{self.name} does not support nprocs={nprocs}")
        return nprocs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
