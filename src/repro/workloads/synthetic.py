"""The configurable synthetic benchmark of the paper's phase-1 validation.

Section 5: *"The program used in this phase was configurable in terms of
computation and communication overlap, communication granularity, and
execution duration."*  This model exposes exactly those three knobs:

* ``comm_fraction`` — target share of time spent communicating
  (communication granularity in the CPU-bound vs communication-bound
  sense);
* ``overlap`` — fraction of the communication volume carried by
  overlapped (full-duplex pairwise exchange) transfers vs strictly
  serialized send-then-receive pairs, which drives ``lambda_i`` below
  or towards/above 1;
* ``duration_s`` — nominal execution time at unit speed, controlling
  how far small per-event errors can accumulate;

plus message granularity (``messages_per_step``) and the exchange
pattern:

* ``pairs`` (default) — fixed disjoint partners every step; timing skew
  stays inside each pair, so per-rank blocked time is proportional to
  the pair's latency and the eq. 5–8 predictor is accurate across the
  whole mapping space (the phase-1 regime);
* ``ring`` / ``halo`` — even-odd neighbour exchanges along a ring or a
  2-D grid; iterative coupling lets delays propagate between pairs,
  which degrades predictability the way tightly-coupled codes do;
* ``alltoall`` — shifted personalised exchange rounds.
"""

from __future__ import annotations

from repro._util import check_fraction, check_positive
from repro.simulate.program import Program
from repro.workloads.base import WorkloadModel
from repro.workloads.patterns import ProgramBuilder, grid_dims

__all__ = ["SyntheticBenchmark"]

#: Reference one-way bandwidth used to size messages for a target
#: communication fraction (fast ethernet line rate).
_REF_BYTES_PER_S = 100e6 / 8.0


class SyntheticBenchmark(WorkloadModel):
    """Parameterised compute/communicate loop for predictor validation."""

    def __init__(
        self,
        *,
        comm_fraction: float = 0.2,
        overlap: float = 0.5,
        duration_s: float = 60.0,
        steps: int = 20,
        messages_per_step: int = 1,
        pattern: str = "pairs",
        name: str | None = None,
    ) -> None:
        check_fraction(comm_fraction, "comm_fraction")
        if comm_fraction >= 1.0:
            raise ValueError("comm_fraction must be < 1 (some compute must remain)")
        check_fraction(overlap, "overlap")
        check_positive(duration_s, "duration_s")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if messages_per_step < 1:
            raise ValueError("messages_per_step must be >= 1")
        if pattern not in ("pairs", "ring", "halo", "alltoall"):
            raise ValueError(f"unknown pattern {pattern!r}")
        self.comm_fraction = comm_fraction
        self.overlap = overlap
        self.duration_s = duration_s
        self.steps = steps
        self.messages_per_step = messages_per_step
        self.pattern = pattern
        self.name = name or (
            f"synthetic.{pattern}.c{comm_fraction:.2f}.o{overlap:.2f}.d{duration_s:.0f}"
        )
        super().__init__()

    def program(self, nprocs: int) -> Program:
        self._check_nprocs(nprocs)
        b = ProgramBuilder(self.name, nprocs)
        per_step = self.duration_s / self.steps
        compute_s = per_step * (1.0 - self.comm_fraction)
        comm_s = per_step * self.comm_fraction
        # Size messages so the step's transfers take about comm_s on the
        # reference network.
        exchanges = self._exchanges_per_step(nprocs)
        bytes_per_step = comm_s * _REF_BYTES_PER_S
        msg = bytes_per_step / max(exchanges * self.messages_per_step, 1)
        ov_msg = msg * self.overlap
        ser_msg = msg * (1.0 - self.overlap)
        for step in range(self.steps):
            b.compute_all(compute_s)
            for _ in range(self.messages_per_step):
                self._emit_comm(b, nprocs, ov_msg, ser_msg, step)
        b.allreduce(range(nprocs), 8.0)
        return b.build()

    # -- helpers ----------------------------------------------------------
    def _exchanges_per_step(self, nprocs: int) -> int:
        if nprocs == 1:
            return 1
        if self.pattern in ("pairs", "ring"):
            return 1
        if self.pattern == "halo":
            return 2
        return max(nprocs - 1, 1)  # alltoall rounds

    def _emit_comm(
        self, b: ProgramBuilder, nprocs: int, ov_msg: float, ser_msg: float, step: int
    ) -> None:
        if nprocs == 1:
            return
        group = list(range(nprocs))
        if self.pattern == "pairs":
            # Fixed disjoint partners: rank 2k <-> 2k+1 every step.  No
            # inter-pair coupling, so each rank's blocked time stays
            # proportional to its own pair's latency — the cleanest
            # instrument for validating the eq. 5-8 predictor across
            # the mapping space (phase 1).
            if ov_msg > 0:
                b.pairwise_exchange(group, ov_msg, phase=0)
            if ser_msg > 0:
                self._serial_pairs(b, nprocs, ser_msg, 0)
        elif self.pattern == "ring":
            if ov_msg > 0:
                b.pairwise_exchange(group, ov_msg, phase=step)
            if ser_msg > 0:
                self._serial_pairs(b, nprocs, ser_msg, step)
        elif self.pattern == "halo":
            rows, cols = grid_dims(nprocs, 2)
            if ov_msg > 0:
                for axis in range(2):
                    for line in ProgramBuilder._grid_lines((rows, cols), axis):
                        b.pairwise_exchange(line, ov_msg, phase=step)
            if ser_msg > 0:
                self._serial_pairs(b, nprocs, ser_msg, step)
                self._serial_pairs(b, nprocs, ser_msg, step + 1)
        else:  # alltoall
            if ov_msg > 0:
                b.alltoall(group, ov_msg)
            if ser_msg > 0:
                for round_ in range(1, nprocs):
                    for rank in range(nprocs):
                        dst = (rank + round_) % nprocs
                        src = (rank - round_) % nprocs
                        b.sendrecv(rank, dst, ser_msg, src, ser_msg)

    @staticmethod
    def _serial_pairs(b: ProgramBuilder, nprocs: int, size: float, phase: int) -> None:
        """Disjoint pairs whose two transfers happen strictly in turn.

        The lower-ranked member sends then receives; the higher-ranked
        one receives then sends — no overlap within the pair, which is
        what pushes lambda towards (and past) 1.
        """
        start = phase % 2
        pairs = [(i, i + 1) for i in range(start, nprocs - 1, 2)]
        if start == 1 and nprocs % 2 == 0 and nprocs > 2:
            pairs.append((nprocs - 1, 0))
        for a, bb in pairs:
            b.send(a, bb, size)
            b.recv(bb, a, size)
            b.send(bb, a, size)
            b.recv(a, bb, size)