"""repro.telemetry — stdlib-only metrics and tracing for the CBES stack.

The package answers "what is the estimator doing right now?" with three
pieces:

* :mod:`~repro.telemetry.registry` — `Counter`/`Gauge`/`Histogram`
  primitives behind a thread-safe :class:`MetricsRegistry`, plus the
  picklable :class:`MetricsDelta` that carries worker-process samples
  back to the master.
* :mod:`~repro.telemetry.spans` — a `trace()` context manager producing
  nested timed :class:`Span` trees, with a bounded ring buffer of
  completed traces.
* :mod:`~repro.telemetry.export` — Prometheus text exposition and JSON.

Instrumented code never holds a registry reference of its own; it asks
for the *ambient* one via :func:`get_registry` / :func:`get_tracer`.
By default that is a no-op (:class:`NullRegistry` / :class:`NullTracer`)
so the hot path pays near-zero cost; the daemon (or a test, via
:func:`use_registry`) installs a live registry to turn collection on.

Resolution order: the context-local value (set by :func:`use_registry`
/ :func:`use_tracer`, scoped to the current thread or asyncio task)
wins; otherwise the process-global default (set by :func:`set_registry`
/ :func:`set_tracer`, which is what the daemon uses so its worker
threads all feed one registry); otherwise the null implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from repro.telemetry.export import to_json, to_prometheus
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsDelta,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.spans import NullTracer, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsDelta",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "enabled",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "to_json",
    "to_prometheus",
    "use_registry",
    "use_tracer",
]

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()

_global_registry: MetricsRegistry | NullRegistry = _NULL_REGISTRY
_global_tracer: Tracer | NullTracer = _NULL_TRACER

_ctx_registry: ContextVar[MetricsRegistry | NullRegistry | None] = ContextVar(
    "repro_telemetry_registry", default=None
)
_ctx_tracer: ContextVar[Tracer | NullTracer | None] = ContextVar(
    "repro_telemetry_tracer", default=None
)


def get_registry() -> MetricsRegistry | NullRegistry:
    """The ambient metrics registry (context-local, else global, else null)."""
    ctx = _ctx_registry.get()
    if ctx is not None:
        return ctx
    return _global_registry


def set_registry(registry: MetricsRegistry | NullRegistry | None) -> None:
    """Install *registry* as the process-global default (None resets to null)."""
    global _global_registry
    _global_registry = registry if registry is not None else _NULL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Make *registry* ambient for the current context (thread/task)."""
    token = _ctx_registry.set(registry)
    try:
        yield registry
    finally:
        _ctx_registry.reset(token)


def get_tracer() -> Tracer | NullTracer:
    """The ambient tracer (context-local, else global, else null)."""
    ctx = _ctx_tracer.get()
    if ctx is not None:
        return ctx
    return _global_tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install *tracer* as the process-global default (None resets to null)."""
    global _global_tracer
    _global_tracer = tracer if tracer is not None else _NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Make *tracer* ambient for the current context (thread/task)."""
    token = _ctx_tracer.set(tracer)
    try:
        yield tracer
    finally:
        _ctx_tracer.reset(token)


def enabled() -> bool:
    """Whether the ambient registry actually records (is not the null one)."""
    return not isinstance(get_registry(), NullRegistry)
