"""Metric primitives: counters, gauges, histograms, and their registry.

Design constraints (why this is not just a dict of floats):

* **Thread-safe, cheap updates.**  The daemon's event loop, its job
  worker threads, and in-process schedulers all record concurrently.
  Updates go through a small pool of *striped* locks — a child metric is
  pinned to one stripe by the hash of its identity, so unrelated metrics
  rarely contend while one metric's read-modify-write stays atomic.
* **Deterministic output.**  :meth:`MetricsRegistry.snapshot` sorts
  metrics by name and samples by label values, so exports (and the tests
  that diff parallel-vs-serial aggregates) are byte-stable.
* **Cross-process aggregation.**  Search worker processes cannot share
  the master's registry; they record into a private registry and ship a
  picklable :class:`MetricsDelta` back with each task result.  Deltas
  carry counters and histograms only (gauges are instantaneous readings
  and do not sum), and merging them is associative, so the aggregate is
  independent of the worker count.
* **Zero cost when disabled.**  :class:`NullRegistry` mirrors the whole
  API with shared no-op children; instrumented code never branches on
  "is telemetry on" — it just records into whatever registry is ambient.

Stdlib only; no numpy in this package.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsDelta",
    "MetricsRegistry",
    "NullRegistry",
]


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


#: Default histogram bucket upper bounds (seconds): spans sub-millisecond
#: evaluation work through minute-long scheduling searches.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_STRIPES = 16


def _validate_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise MetricError(
            f"metric/label name {name!r} must be snake_case ([a-z][a-z0-9_]*)"
        )


class _Family:
    """One named metric: a set of children keyed by label values."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], object] = {}
        self._family_lock = threading.Lock()

    # -- label resolution ----------------------------------------------
    def _labelvalues(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[ln]) for ln in self.labelnames)

    def labels(self, **labels: object):
        """The child metric for one concrete label-value assignment."""
        values = self._labelvalues(labels)
        child = self._children.get(values)
        if child is None:
            with self._family_lock:
                child = self._children.get(values)
                if child is None:
                    lock = self._registry._stripe_for(self.name, values)
                    child = self._make_child(lock)
                    self._children[values] = child
        return child

    def _make_child(self, lock: threading.Lock):
        raise NotImplementedError

    def _sorted_children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._family_lock:
            return sorted(self._children.items())

    def _label_dict(self, values: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, values, strict=True))


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Counter(_Family):
    """A monotonically increasing count (name convention: ``*_total``)."""

    kind = "counter"

    def _make_child(self, lock: threading.Lock) -> _CounterChild:
        return _CounterChild(lock)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Increment the child selected by **labels** by *amount*."""
        self.labels(**labels).inc(amount)

    def samples(self) -> list[dict]:
        """JSON-ready samples, sorted by label values."""
        return [
            {"labels": self._label_dict(values), "value": child.value}
            for values, child in self._sorted_children()
        ]


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge reading."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by *amount* (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by *amount*."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Family):
    """An instantaneous reading that can go up and down.

    A gauge may instead be declared with a *callback*: the registry
    evaluates it at snapshot time, so readings like "queue depth" or
    "snapshot age" are always current without an updater loop.
    """

    kind = "gauge"

    def __init__(self, registry, name, help, labelnames, callback=None):
        if callback is not None and labelnames:
            raise MetricError(f"{name}: callback gauges cannot have labels")
        super().__init__(registry, name, help, labelnames)
        self.callback = callback

    def _make_child(self, lock: threading.Lock) -> _GaugeChild:
        return _GaugeChild(lock)

    def set(self, value: float, **labels: object) -> None:
        """Set the child selected by **labels** to *value*."""
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Increment the child selected by **labels**."""
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Decrement the child selected by **labels**."""
        self.labels(**labels).dec(amount)

    def samples(self) -> list[dict]:
        """JSON-ready samples (evaluating the callback if there is one)."""
        if self.callback is not None:
            try:
                value = float(self.callback())
            except Exception:  # noqa: BLE001 - a broken callback must not kill a scrape
                value = float("nan")
            return [{"labels": {}, "value": value}]
        return [
            {"labels": self._label_dict(values), "value": child.value}
            for values, child in self._sorted_children()
        ]


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]):
        self._lock = lock
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its (non-cumulative) bucket."""
        i = bisect_left(self._bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1


class Histogram(_Family):
    """Fixed-bucket distribution (name convention: a unit suffix).

    Buckets are upper bounds, ascending; observations land in the first
    bucket whose bound is >= the value (an implicit ``+Inf`` bucket
    catches the rest).  Exposition is cumulative, Prometheus-style.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames, buckets=DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise MetricError(f"{name}: buckets must be strictly ascending")
        self.buckets = bounds

    def _make_child(self, lock: threading.Lock) -> _HistogramChild:
        return _HistogramChild(lock, self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the child selected by **labels**."""
        self.labels(**labels).observe(value)

    def samples(self) -> list[dict]:
        """JSON-ready samples with *cumulative* bucket counts."""
        out = []
        for values, child in self._sorted_children():
            with child._lock:
                counts = list(child.counts)
                total, running = child.sum, child.count
            cumulative: list[list[float]] = []
            acc = 0
            for bound, n in zip(self.buckets, counts, strict=False):
                acc += n
                cumulative.append([bound, acc])
            out.append(
                {
                    "labels": self._label_dict(values),
                    "buckets": cumulative,
                    "sum": total,
                    "count": running,
                }
            )
        return out


@dataclass
class MetricsDelta:
    """A picklable additive summary of one registry's counters/histograms.

    Produced by :meth:`MetricsRegistry.collect_delta` in a worker
    process, merged into the master registry by
    :meth:`MetricsRegistry.apply_delta`.  Merging is associative and
    label-keyed, so the final aggregate does not depend on how tasks
    were distributed over workers.  Gauges are deliberately absent: an
    instantaneous reading from a finished worker has no meaningful sum.
    """

    #: (name, labelnames) -> {labelvalues: value}
    counters: dict[tuple[str, tuple[str, ...]], dict[tuple[str, ...], float]] = field(
        default_factory=dict
    )
    #: (name, labelnames, bounds) -> {labelvalues: [counts..., sum, count]}
    histograms: dict[
        tuple[str, tuple[str, ...], tuple[float, ...]],
        dict[tuple[str, ...], tuple[tuple[int, ...], float, int]],
    ] = field(default_factory=dict)
    #: name -> help string (so a merge can declare missing metrics).
    helps: dict[str, str] = field(default_factory=dict)

    def merge(self, other: "MetricsDelta") -> "MetricsDelta":
        """Fold *other* into this delta in place; returns ``self``."""
        for key, children in other.counters.items():
            mine = self.counters.setdefault(key, {})
            for values, amount in children.items():
                mine[values] = mine.get(values, 0.0) + amount
        for key, children in other.histograms.items():
            mine_h = self.histograms.setdefault(key, {})
            for values, (counts, total, n) in children.items():
                if values in mine_h:
                    old_counts, old_total, old_n = mine_h[values]
                    counts = tuple(a + b for a, b in zip(old_counts, counts, strict=True))
                    total += old_total
                    n += old_n
                mine_h[values] = (counts, total, n)
        self.helps.update(other.helps)
        return self

    @property
    def empty(self) -> bool:
        """Whether this delta carries no samples at all."""
        return not self.counters and not self.histograms


class MetricsRegistry:
    """A process-local collection of named metrics.

    Declaring a metric is idempotent: asking for an existing name
    returns the existing family (and validates that the kind and label
    names agree), so call sites can declare-and-use without coordination.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Family] = {}
        self._meta_lock = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(_STRIPES))

    def _stripe_for(self, name: str, labelvalues: tuple[str, ...]) -> threading.Lock:
        return self._stripes[hash((name, labelvalues)) % _STRIPES]

    # -- declaration ----------------------------------------------------
    def _declare(self, cls: type, name: str, help: str, labelnames, **extra):
        _validate_name(name)
        labelnames = tuple(labelnames)
        for ln in labelnames:
            _validate_name(ln)
        with self._meta_lock:
            family = self._metrics.get(name)
            if family is not None:
                if not isinstance(family, cls) or type(family) is not cls:
                    raise MetricError(
                        f"{name} is already declared as a {family.kind}, not a {cls.kind}"
                    )
                if family.labelnames != labelnames:
                    raise MetricError(
                        f"{name} is already declared with labels {family.labelnames}"
                    )
                return family
            family = cls(self, name, help, labelnames, **extra)
            self._metrics[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        """Declare (or fetch) a counter family."""
        return self._declare(Counter, name, help, labelnames)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        """Declare (or fetch) a gauge family, optionally callback-backed."""
        return self._declare(Gauge, name, help, labelnames, callback=callback)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Declare (or fetch) a fixed-bucket histogram family."""
        return self._declare(Histogram, name, help, labelnames, buckets=tuple(buckets))

    # -- output ---------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Deterministic JSON-ready dump: ``{name: {type, help, samples}}``."""
        with self._meta_lock:
            families = sorted(self._metrics.items())
        return {
            name: {
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
            for name, family in families
        }

    # -- cross-process aggregation --------------------------------------
    def collect_delta(self) -> MetricsDelta:
        """This registry's counters and histograms as an additive delta."""
        delta = MetricsDelta()
        with self._meta_lock:
            families = sorted(self._metrics.items())
        for name, family in families:
            if isinstance(family, Counter):
                children = {
                    values: child.value for values, child in family._sorted_children()
                }
                if children:
                    delta.counters[(name, family.labelnames)] = children
                    delta.helps[name] = family.help
            elif isinstance(family, Histogram):
                children = {}
                for values, child in family._sorted_children():
                    with child._lock:
                        children[values] = (tuple(child.counts), child.sum, child.count)
                if children:
                    delta.histograms[(name, family.labelnames, family.buckets)] = children
                    delta.helps[name] = family.help
        return delta

    def apply_delta(self, delta: MetricsDelta) -> None:
        """Add a worker's :class:`MetricsDelta` into this registry."""
        for (name, labelnames), children in sorted(delta.counters.items()):
            family = self.counter(name, delta.helps.get(name, ""), labelnames)
            for values, amount in sorted(children.items()):
                child = family.labels(**dict(zip(labelnames, values, strict=True)))
                with child._lock:
                    child._value += amount
        for (name, labelnames, bounds), children in sorted(delta.histograms.items()):
            family = self.histogram(name, delta.helps.get(name, ""), labelnames, bounds)
            for values, (counts, total, n) in sorted(children.items()):
                child = family.labels(**dict(zip(labelnames, values, strict=True)))
                with child._lock:
                    for i, c in enumerate(counts):
                        child.counts[i] += c
                    child.sum += total
                    child.count += n


# -- the disabled path ---------------------------------------------------
class _NullChild:
    """Answers the whole child API with no-ops; shared singleton."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """No-op."""

    def set(self, value: float, **labels: object) -> None:
        """No-op."""

    def observe(self, value: float, **labels: object) -> None:
        """No-op."""

    def labels(self, **labels: object) -> "_NullChild":
        """No-op; returns itself so chained calls stay cheap."""
        return self


_NULL_CHILD = _NullChild()


class NullRegistry:
    """API-compatible no-op registry: the default when telemetry is off.

    Every declaration returns one shared no-op child, so instrumented
    code pays a dictionary-free method call at declaration sites and
    nothing at all in loops that batch their updates.
    """

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> _NullChild:
        """No-op counter."""
        return _NULL_CHILD

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> _NullChild:
        """No-op gauge."""
        return _NULL_CHILD

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> _NullChild:
        """No-op histogram."""
        return _NULL_CHILD

    def snapshot(self) -> dict[str, dict]:
        """Always empty."""
        return {}

    def collect_delta(self) -> MetricsDelta:
        """Always empty."""
        return MetricsDelta()

    def apply_delta(self, delta: MetricsDelta) -> None:
        """Dropped."""
